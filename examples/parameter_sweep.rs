//! Parameter sweep: how the optimal expected relative revenue changes with the
//! adversarial resource `p` and the switching probability `γ` — a scaled-down,
//! quickly-running version of the paper's Figure 2.
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use selfish_mining::experiments::Figure2Sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweep = Figure2Sweep {
        attack_grid: vec![(1, 1), (2, 1)],
        epsilon: 1e-3,
        ..Figure2Sweep::default()
    };
    let ps = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];
    for gamma in [0.0, 0.5, 1.0] {
        println!("gamma = {gamma}");
        println!(
            "{:>6} {:>9} {:>12} {:>11} {:>11}",
            "p", "honest", "single-tree", "d=1,f=1", "d=2,f=1"
        );
        for point in sweep.curve(gamma, &ps)? {
            println!(
                "{:>6.2} {:>9.4} {:>12.4} {:>11.4} {:>11.4}",
                point.p,
                point.honest_revenue,
                point.single_tree_revenue,
                point.attack_revenue[0],
                point.attack_revenue[1]
            );
        }
        println!();
    }
    println!("(use `cargo run -p sm-bench --bin figure2` for the full figure reproduction)");
    Ok(())
}
