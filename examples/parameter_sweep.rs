//! Parameter sweep: how the optimal expected relative revenue changes with the
//! adversarial resource `p` and the switching probability `γ` — a scaled-down,
//! quickly-running version of the paper's Figure 2, driven by the parallel
//! sweep engine (`sm-sweep`): one parametric arena per `(d, f)` configuration,
//! curve jobs fanned out over a worker pool, and warm-started solves along
//! each `p` curve. CI runs this example on every push to exercise the
//! parallel path end to end.
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! cargo run --release --example parameter_sweep -- --threads 4
//! ```
//!
//! `--threads N` pins the engine's global thread budget (outer curve jobs +
//! intra-solve threads); the default auto-detects the machine. The output
//! is identical for any budget.

use selfish_mining::experiments::coarse_p_grid;
use selfish_mining_repro::cli::thread_budget;
use selfish_mining_repro::sweep::SweepConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = thread_budget(std::env::args().skip(1))?.unwrap_or(0);
    let config = SweepConfig {
        attack_grid: vec![(1, 1), (2, 1)],
        epsilon: 1e-3,
        workers,
        ..SweepConfig::default()
    };
    let ps = coarse_p_grid();
    // γ = 0 and γ = 1 exercise the masked (structurally kept,
    // numerically zero) branches of the parametric arena.
    let gammas = [0.0, 0.5, 1.0];
    let points = config.run(&gammas, &ps)?;

    for (gamma_index, gamma) in gammas.iter().enumerate() {
        println!("gamma = {gamma}");
        println!(
            "{:>6} {:>9} {:>12} {:>11} {:>11}",
            "p", "honest", "single-tree", "d=1,f=1", "d=2,f=1"
        );
        for point in &points[gamma_index * ps.len()..(gamma_index + 1) * ps.len()] {
            println!(
                "{:>6.2} {:>9.4} {:>12.4} {:>11.4} {:>11.4}",
                point.p,
                point.honest_revenue,
                point.single_tree_revenue,
                point.attack_revenue[0],
                point.attack_revenue[1]
            );
        }
        println!();
    }
    println!("(use `cargo run -p sm-bench --bin figure2` for the full figure reproduction)");
    Ok(())
}
