//! Arena memory report: resident bytes of the compact CSR skeleton and the
//! interned symbolic term tables per `(d, f, scenario)` topology, next to
//! what the same tables would occupy in the pre-compaction representation
//! (`usize` indices, un-interned per-transition terms).
//!
//! ```text
//! cargo run --release --example arena_stats
//! ```
//!
//! With `SM_BENCH_JSON=<path>` set, each footprint is also recorded into the
//! `mem_footprint` array of the `sm-bench/v2` report, so the CI gate
//! (`bench_check`) tracks memory next to wall-clock time. The expensive
//! `d=4, f=3` topology is included when `SM_BENCH_EXPENSIVE=1`.

use criterion::record_memory;
use selfish_mining::{AttackScenario, ParametricModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut configs = vec![
        (AttackScenario::Optimal, 2, 1, 4),
        (AttackScenario::Optimal, 2, 2, 4),
        (AttackScenario::LeadStubborn, 2, 2, 4),
        (AttackScenario::Optimal, 3, 2, 4),
    ];
    if std::env::var("SM_BENCH_EXPENSIVE").as_deref() == Ok("1") {
        // The `d = 4, f = 3` scale target runs at level budget l = 2: the
        // l ≥ 3 reachable sets blow past the solver's default 12M-state
        // limit, while l = 2 lands at ~3.0M states / 22.9M transitions.
        configs.push((AttackScenario::Optimal, 4, 3, 2));
    }

    println!(
        "{:<28} {:>9} {:>10} {:>12} {:>14} {:>14} {:>9}",
        "topology", "states", "pairs", "transitions", "compact (B)", "before (B)", "saved"
    );
    for (scenario, d, f, l) in configs {
        let family = ParametricModel::build_scenario(scenario, d, f, l)?;
        let name = format!("{}-d{d}-f{f}-l{l}", scenario.label());

        let layout = family.layout_bytes();
        let terms = family.term_table_bytes();
        let compact = layout + terms;
        // The pre-compaction footprint of the same data: the CSR offset and
        // column tables at 8 bytes per index, the term tables un-interned.
        let states = family.num_states();
        let pairs = family.num_pairs();
        let transitions = family.num_transitions();
        let layout_before = 8 * (states + 1 + pairs + 1 + transitions);
        let before = layout_before + family.term_table_bytes_uncompressed();
        let saved = 100.0 * (1.0 - compact as f64 / before as f64);

        println!(
            "{name:<28} {states:>9} {pairs:>10} {transitions:>12} {compact:>14} {before:>14} \
             {saved:>8.1}%"
        );
        println!(
            "  distinct terms: {}, distinct outcomes: {}",
            family.distinct_terms(),
            family.distinct_outcomes()
        );

        record_memory(format!("arena/{name}/layout_bytes"), layout as u64);
        record_memory(format!("arena/{name}/term_table_bytes"), terms as u64);
    }
    Ok(())
}
