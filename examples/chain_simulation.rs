//! Monte-Carlo cross-validation: run the discrete-time blockchain simulator
//! with the honest and single-fork selfish-mining strategies and compare the
//! measured relative revenue against the analytic values.
//!
//! ```text
//! cargo run --release --example chain_simulation
//! ```

use selfish_mining::baselines::{eyal_sirer_relative_revenue, honest_relative_revenue};
use sm_chain::{HonestStrategy, SimulationConfig, Simulator, Sm1Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = 0.35;
    let gamma = 0.5;
    let config = SimulationConfig {
        p,
        gamma,
        steps: 300_000,
        seed: 2024,
        ..SimulationConfig::default()
    };
    let simulator = Simulator::new(config);

    println!(
        "simulating {} steps of (p, k)-mining with p = {p}, gamma = {gamma} ...",
        config.steps
    );

    let honest_report = simulator.run(&mut HonestStrategy);
    println!(
        "honest strategy   : empirical relative revenue {:.4} (analytic {:.4}), chain quality {:.4}",
        honest_report.relative_revenue(),
        honest_relative_revenue(p)?,
        honest_report.chain_quality()
    );

    let sm1_report = simulator.run(&mut Sm1Strategy);
    println!(
        "single-fork SM1   : empirical relative revenue {:.4} (PoW closed form {:.4}), chain quality {:.4}",
        sm1_report.relative_revenue(),
        eyal_sirer_relative_revenue(p, gamma)?,
        sm1_report.chain_quality()
    );

    println!(
        "blocks on the stable chain: honest run {} vs selfish run {}",
        honest_report.total_blocks(),
        sm1_report.total_blocks()
    );
    println!(
        "note: the PoW closed form is an anchor, not an exact prediction — the simulator runs the \
         efficient-proof-system model in which the adversary may mine on several blocks."
    );
    Ok(())
}
