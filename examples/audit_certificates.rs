//! CI driver for the `sm-audit` static-analysis layer: arena invariant
//! audits on the pinned bench topologies, scenario action-subset proofs,
//! and independent certificate re-validation over the reduced conformance
//! grid — every artifact serialized through JSON and checked by the
//! solver-free auditor. Exits non-zero on any violation so CI can gate.
//!
//! ```text
//! cargo run --release --example audit_certificates              # full audit set
//! cargo run --release --example audit_certificates -- --timing  # + d3f2 cost ratio
//! ```
//!
//! `--timing` additionally certifies one `d = 3, f = 2` point and measures
//! the audit against the solve it re-validates: the audit is three
//! O(transitions) residual passes and must stay under 5% of the solve's
//! wall-clock time (the acceptance bound; ~3.6% measured, dominated by the
//! arena fingerprint and the expected-reward precomputation).

use selfish_mining::experiments::attack_curve_certified;
use selfish_mining::{AttackScenario, ParametricModel};
use sm_audit::{
    audit_certificate, audit_model, audit_parametric, audit_scenario_restriction, AuditConfig,
    CertificateArtifact,
};
use std::process::ExitCode;
use std::time::Instant;

const EPSILON: f64 = 1e-3;

fn main() -> ExitCode {
    let timing = std::env::args().any(|arg| arg == "--timing");
    let mut failures = 0usize;

    // 1. Arena invariants on the pinned topologies (the bench set: d2f1 is
    //    the conformance grid's, d2f2/d3f2 are the perf-gate rows).
    for &(depth, forks, levels) in &[(2usize, 1usize, 4usize), (2, 2, 4), (3, 2, 4)] {
        let label = format!("d{depth}f{forks}l{levels}");
        let family = match ParametricModel::build(depth, forks, levels) {
            Ok(family) => family,
            Err(err) => {
                eprintln!("audit: {label}: build failed: {err}");
                failures += 1;
                continue;
            }
        };
        let mut violations = audit_parametric(&family);
        match family.instantiate(0.3, 0.5) {
            Ok(model) => violations.extend(audit_model(&model)),
            Err(err) => violations.push(format!("instantiation failed: {err}")),
        }
        if violations.is_empty() {
            println!(
                "audit   {label}: arena + term tables clean ({} states, {} transitions)",
                family.num_states(),
                family.num_transitions()
            );
        } else {
            failures += 1;
            eprintln!("audit   {label}: {} violation(s)", violations.len());
            for violation in violations.iter().take(10) {
                eprintln!("        {violation}");
            }
        }
    }

    // 2. Scenario sub-arenas are action subsets of the Optimal arena — the
    //    restriction-dominance precondition, proven exhaustively.
    match scenario_restrictions() {
        Ok(checked) => println!("audit   scenario restrictions: {checked} scenario(s) clean"),
        Err(message) => {
            failures += 1;
            eprintln!("audit   scenario restrictions: {message}");
        }
    }

    // 3. Certificate audits over the reduced conformance grid, through the
    //    serialized artifact form.
    match reduced_grid_certificates() {
        Ok(points) => println!("audit   certificates: {points} grid point(s) re-validated"),
        Err(message) => {
            failures += 1;
            eprintln!("audit   certificates: {message}");
        }
    }

    // 4. Optional: audit-vs-solve cost on the d3f2 row.
    if timing {
        match d3f2_cost_ratio() {
            Ok(ratio) => println!(
                "audit   d3f2 cost: audit/solve = {:.4}% (< 5% required)",
                ratio * 100.0
            ),
            Err(message) => {
                failures += 1;
                eprintln!("audit   d3f2 cost: {message}");
            }
        }
    }

    if failures == 0 {
        println!("audit   PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("audit   FAIL: {failures} section(s) reported violations");
        ExitCode::FAILURE
    }
}

fn scenario_restrictions() -> Result<usize, String> {
    let optimal = ParametricModel::build(2, 1, 4)
        .and_then(|family| family.instantiate(0.3, 0.5))
        .map_err(|err| format!("optimal model failed: {err}"))?;
    let mut checked = 0usize;
    for scenario in AttackScenario::default_family() {
        if !scenario.is_action_restriction() {
            continue;
        }
        let restricted = ParametricModel::build_scenario(scenario, 2, 1, 4)
            .and_then(|family| family.instantiate(0.3, 0.5))
            .map_err(|err| format!("{} failed to build: {err}", scenario.label()))?;
        let violations = audit_scenario_restriction(&optimal, &restricted);
        if !violations.is_empty() {
            return Err(format!(
                "{}: {} violation(s), first: {}",
                scenario.label(),
                violations.len(),
                violations.first().map(String::as_str).unwrap_or("?")
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

fn reduced_grid_certificates() -> Result<usize, String> {
    let family =
        ParametricModel::build(2, 1, 4).map_err(|err| format!("family failed to build: {err}"))?;
    let mut points = 0usize;
    for &gamma in &[0.0, 0.5, 1.0] {
        let solves = attack_curve_certified(&family, gamma, &[0.1, 0.2, 0.3], EPSILON, true)
            .map_err(|err| format!("gamma {gamma}: solve failed: {err}"))?;
        for solve in solves {
            let model = family
                .instantiate(solve.p, solve.gamma)
                .map_err(|err| format!("instantiation failed: {err}"))?;
            let artifact = CertificateArtifact::from_certified(&solve, &model)
                .map_err(|err| format!("artifact packaging failed: {err}"))?;
            // Round-trip through the serialized form CI would archive.
            let artifact = CertificateArtifact::from_json(&artifact.to_json())
                .map_err(|err| format!("artifact round trip failed: {err}"))?;
            let report = audit_certificate(&artifact, &model, &AuditConfig::default());
            if !report.passed() {
                return Err(format!(
                    "(p = {}, gamma = {}): certificate rejected\n{report}",
                    solve.p, solve.gamma
                ));
            }
            points += 1;
        }
    }
    Ok(points)
}

fn d3f2_cost_ratio() -> Result<f64, String> {
    let family =
        ParametricModel::build(3, 2, 4).map_err(|err| format!("family failed to build: {err}"))?;
    let solve_start = Instant::now();
    let solves = attack_curve_certified(&family, 0.5, &[0.3], EPSILON, false)
        .map_err(|err| format!("solve failed: {err}"))?;
    let solve_time = solve_start.elapsed();
    let solve = solves.into_iter().next().ok_or("no solve returned")?;
    let model = family
        .instantiate(solve.p, solve.gamma)
        .map_err(|err| format!("instantiation failed: {err}"))?;
    let artifact = CertificateArtifact::from_certified(&solve, &model)
        .map_err(|err| format!("artifact packaging failed: {err}"))?;
    let audit_start = Instant::now();
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    let audit_time = audit_start.elapsed();
    if !report.passed() {
        return Err(format!("d3f2 certificate rejected\n{report}"));
    }
    let ratio = audit_time.as_secs_f64() / solve_time.as_secs_f64();
    println!(
        "audit   d3f2: solve {:.1?}, audit {:.1?} ({} states)",
        solve_time,
        audit_time,
        model.num_states()
    );
    if ratio >= 0.05 {
        return Err(format!(
            "audit took {:.2}% of solve time (must stay under 5%)",
            ratio * 100.0
        ));
    }
    Ok(ratio)
}
