//! Statistical conformance of the exact analysis and the simulator, run
//! end to end over the coarse Figure-2 grid: every `(p, γ)` point is solved
//! with an ε-certificate, its ε-optimal strategy is exported into the
//! block-level simulator, and a batched Monte-Carlo estimate — once per
//! configured consensus backend, from the ideal Bernoulli lottery to the
//! proof-backed `(p, k)`-mining lotteries — must overlap the certified
//! `[β_low, β_up]` revenue bracket.
//!
//! ```text
//! cargo run --release --example conformance             # coarse Figure-2 grid
//! cargo run --release --example conformance -- reduced  # CI-sized sub-grid
//! ```
//!
//! `--threads N` pins the sweep engine's global thread budget (outer curve
//! jobs + intra-solve threads); the report is identical for any budget.
//! `--backends LIST|all` picks the consensus backends each point is
//! witnessed under (default: Bernoulli + PoW lottery).
//!
//! The process exits non-zero if any point fails to conform or any two
//! backends' estimates disagree, so CI can gate on it.

use selfish_mining::experiments::coarse_p_grid;
use selfish_mining_repro::cli::{backend_matrix, thread_budget};
use selfish_mining_repro::sweep::{ConformanceSettings, SweepConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let reduced = std::env::args().any(|arg| arg == "reduced");
    let workers = match thread_budget(std::env::args().skip(1)) {
        Ok(workers) => workers.unwrap_or(0),
        Err(message) => {
            eprintln!("conformance: {message}");
            return ExitCode::FAILURE;
        }
    };
    let backends = match backend_matrix(std::env::args().skip(1)) {
        Ok(backends) => backends,
        Err(message) => {
            eprintln!("conformance: {message}");
            return ExitCode::FAILURE;
        }
    };
    let (attack_grid, gammas, ps) = if reduced {
        (vec![(2, 1)], vec![0.0, 0.5, 1.0], vec![0.1, 0.2, 0.3])
    } else {
        (vec![(1, 1), (2, 1)], vec![0.0, 0.5, 1.0], coarse_p_grid())
    };
    let config = SweepConfig {
        attack_grid,
        epsilon: 1e-3,
        workers,
        ..SweepConfig::default()
    };
    // Defaults: 60k steps per replica, up to 64 replicas stopping at a
    // 3σ half-width of 4e-3, Bernoulli + PoW-lottery backends,
    // deterministic seeds.
    let mut settings = ConformanceSettings::default();
    if let Some(backends) = backends {
        settings.backends = backends;
    }

    println!(
        "conformance sweep: {} gamma panels x {} p values x {} backends, grid {:?}, epsilon {}, {} steps/replica",
        gammas.len(),
        ps.len(),
        settings.backends.len(),
        config.attack_grid,
        config.epsilon,
        settings.steps,
    );
    let report = match config.run_conformance(&gammas, &ps, &settings) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("conformance sweep failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("{}", report.render());
    println!(
        "points: {}   worst CI-to-certificate gap: {:.6}   unknown views: {}",
        report.len(),
        report.worst_gap(),
        report.unknown_views(),
    );

    let mut failed = false;
    if !report.all_conform() {
        failed = true;
        eprintln!(
            "CONFORMANCE FAILURE: {} of {} points have a simulated CI outside the certificate",
            report.violations().len(),
            report.len()
        );
    }
    if !report.sources_agree() {
        failed = true;
        eprintln!("BACKEND DISAGREEMENT: two consensus backends' estimates diverge");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("all points conform; all backends agree");
        ExitCode::SUCCESS
    }
}
