//! Quickstart: build the selfish-mining MDP for one configuration, run the
//! formal analysis (Algorithm 1) and print the ε-tight lower bound on the
//! optimal expected relative revenue together with the strategy's exact value.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use selfish_mining::baselines::{honest_relative_revenue, SingleTreeAttack};
use selfish_mining::{AnalysisProcedure, AttackParams, SelfishMiningModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The smallest configuration in which the paper's attack beats both
    // baselines: depth d = 2, forking number f = 1, maximal fork length l = 4.
    let p = 0.3;
    let gamma = 0.5;
    let params = AttackParams::new(p, gamma, 2, 1, 4)?;

    println!("building the selfish-mining MDP for p={p}, gamma={gamma}, d=2, f=1, l=4 ...");
    let model = SelfishMiningModel::build(&params)?;
    println!(
        "  {} reachable states, {} state-action pairs",
        model.num_states(),
        model.mdp().num_state_action_pairs()
    );

    println!("running Algorithm 1 (binary search over beta, epsilon = 1e-3) ...");
    let analysis = AnalysisProcedure::with_epsilon(1e-3);
    let result = analysis.solve(&model)?;
    println!(
        "  epsilon-tight lower bound on ERRev*: {:.4} (bracket [{:.4}, {:.4}], {} inner solves)",
        result.expected_relative_revenue,
        result.beta_low,
        result.beta_up,
        result.steps.len()
    );
    println!(
        "  exact ERRev of the returned strategy: {:.4}",
        result.strategy_revenue
    );

    // Compare against the two baselines of the paper's evaluation.
    let honest = honest_relative_revenue(p)?;
    let single_tree = SingleTreeAttack::paper_configuration(p, gamma).analyse()?;
    println!("comparison at p = {p}, gamma = {gamma}:");
    println!("  honest mining        : {honest:.4}");
    println!(
        "  single-tree attack   : {:.4}",
        single_tree.relative_revenue
    );
    println!("  our attack (d=2,f=1) : {:.4}", result.strategy_revenue);

    // A short, human-readable view of the withholding behaviour the optimal
    // strategy uses (states in which it releases a fork).
    let releases = model.describe_strategy(&result.strategy)?;
    println!(
        "the optimal strategy publishes a private fork in {} of the {} states; first examples:",
        releases.len(),
        model.num_states()
    );
    for (state, action) in releases.iter().take(5) {
        println!("  {state}  ->  {action}");
    }
    Ok(())
}
