//! The certified-analysis query daemon: a thin stdin/stdout wrapper around
//! `sm_service` speaking line-delimited JSON.
//!
//! ```text
//! cargo run --release --example service                 # serve stdin until EOF/shutdown
//! echo '{"p": 0.33}' | cargo run --release --example service
//! cargo run --release --example service < queries.jsonl > answers.jsonl
//! ```
//!
//! One request object per line, one response per line, in order; see
//! `sm_service::jsonl` for the request schema. `--threads N` pins the
//! global thread budget (it accelerates the solves, never changes a bit of
//! the answers); the transcript for a fixed input script is deterministic,
//! which is what the CI smoke step diffs against its golden file.

use selfish_mining_repro::cli::thread_budget;
use selfish_mining_repro::service::{jsonl, Service, ServiceConfig};
use std::io::{BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let workers = match thread_budget(std::env::args().skip(1)) {
        Ok(workers) => workers.unwrap_or(0),
        Err(message) => {
            eprintln!("service: {message}");
            return ExitCode::FAILURE;
        }
    };
    let service = match Service::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    }) {
        Ok(service) => service,
        Err(err) => {
            eprintln!("service: {}", jsonl::render_error(&err));
            return ExitCode::FAILURE;
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut output = BufWriter::new(stdout.lock());
    if let Err(err) = jsonl::serve(&service, stdin.lock(), &mut output) {
        eprintln!("service: i/o error: {err}");
        return ExitCode::FAILURE;
    }
    let _ = output.flush();
    ExitCode::SUCCESS
}
