//! Fault-tolerant sharded grid orchestration of the conformance and
//! scenario matrices — the resumable counterpart of `examples/conformance.rs`
//! and `examples/scenarios.rs`. Every grid point is certified as an
//! idempotent job with a durable, fingerprinted `sm-grid/v1` artifact; a run
//! pointed at an existing artifact directory schedules only the missing or
//! corrupt points and merges a report byte-identical to the uninterrupted
//! single-process pass.
//!
//! ```text
//! cargo run --release --example grid                         # conformance, full grid
//! cargo run --release --example grid -- reduced              # CI-sized sub-grid
//! cargo run --release --example grid -- scenarios            # scenario matrix
//! cargo run --release --example grid -- --dir DIR            # artifact directory
//! cargo run --release --example grid -- --resume DIR         # DIR must already exist
//! ```
//!
//! Orchestration knobs: `--threads N` (global thread budget), `--backends
//! LIST|all`, `--shard N` (points per shard, 0 = whole curve), `--retries N`
//! (attempts per shard), `--rounds N` (scan/execute rounds). Fault
//! injection, for smoke-testing the resume machinery only: `--fault-kill S`
//! / `--fault-poison S` fault every `S`-th point-job on its first attempt.
//!
//! The process exits non-zero on any conformance violation, backend
//! disagreement, (in scenarios mode) dominance or honest-anchor violation,
//! or when the run leaves points unfinished.

use selfish_mining::AttackScenario;
use selfish_mining_repro::cli::{backend_matrix, thread_budget};
use selfish_mining_repro::conformance::ConformancePoint;
use selfish_mining_repro::grid::FaultKind;
use selfish_mining_repro::grid::{run_grid, GridFault, GridFaultPlan, GridOptions, GridSpec};
use selfish_mining_repro::sweep::{ConformanceSettings, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

/// Certified-bracket slack absorbing solver float noise in the dominance
/// comparison (same value as `examples/scenarios.rs`).
const DOMINANCE_SLACK: f64 = 1e-9;

/// Extracts `--name VALUE` / `--name=VALUE` (last occurrence wins).
fn flag_value(name: &str, args: &[String]) -> Result<Option<String>, String> {
    let mut value = None;
    let mut iter = args.iter();
    let long = format!("{name}=");
    while let Some(arg) = iter.next() {
        if arg == name {
            value = Some(
                iter.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .clone(),
            );
        } else if let Some(rest) = arg.strip_prefix(&long) {
            value = Some(rest.to_string());
        }
    }
    Ok(value)
}

/// Extracts a non-negative integer flag.
fn usize_flag(name: &str, args: &[String]) -> Result<Option<usize>, String> {
    flag_value(name, args)?
        .map(|value| {
            value
                .parse::<usize>()
                .map_err(|_| format!("{name} expects a non-negative integer, got {value:?}"))
        })
        .transpose()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenarios_mode = args.iter().any(|arg| arg == "scenarios");
    let reduced = args.iter().any(|arg| arg == "reduced");
    let mode = if scenarios_mode {
        "scenarios"
    } else {
        "conformance"
    };

    macro_rules! parse {
        ($expr:expr) => {
            match $expr {
                Ok(value) => value,
                Err(message) => {
                    eprintln!("grid: {message}");
                    return ExitCode::FAILURE;
                }
            }
        };
    }
    let workers = parse!(thread_budget(args.iter().cloned())).unwrap_or(0);
    let backends = parse!(backend_matrix(args.iter().cloned()));
    let shard_points = parse!(usize_flag("--shard", &args)).unwrap_or(0);
    let retries = parse!(usize_flag("--retries", &args));
    let rounds = parse!(usize_flag("--rounds", &args));
    let fault_kill = parse!(usize_flag("--fault-kill", &args));
    let fault_poison = parse!(usize_flag("--fault-poison", &args));
    let dir_flag = parse!(flag_value("--dir", &args));
    let resume_flag = parse!(flag_value("--resume", &args));

    let dir = match (resume_flag, dir_flag) {
        (Some(resume), _) => {
            let dir = PathBuf::from(resume);
            if !dir.is_dir() {
                eprintln!(
                    "grid: --resume {} does not exist (use --dir to start a fresh run)",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
            dir
        }
        (None, Some(dir)) => PathBuf::from(dir),
        (None, None) => PathBuf::from("target/sm-grid").join(mode),
    };

    // The grid definitions mirror examples/conformance.rs and
    // examples/scenarios.rs exactly — same sweep config, same estimator
    // settings — so the merged reports are comparable byte for byte.
    let epsilon = 1e-3;
    let (attack_grid, gammas, ps) = if reduced {
        (vec![(2, 1)], vec![0.0, 0.5, 1.0], vec![0.1, 0.2, 0.3])
    } else if scenarios_mode {
        (
            vec![(1, 1), (2, 1)],
            vec![0.0, 0.5, 1.0],
            vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
        )
    } else {
        (
            vec![(1, 1), (2, 1)],
            vec![0.0, 0.5, 1.0],
            selfish_mining::experiments::coarse_p_grid(),
        )
    };
    let scenarios = if scenarios_mode {
        AttackScenario::default_family()
    } else {
        vec![AttackScenario::Optimal]
    };
    let mut settings = if scenarios_mode {
        ConformanceSettings {
            min_replicas: 12,
            batch: 12,
            ..ConformanceSettings::default()
        }
    } else {
        ConformanceSettings::default()
    };
    if let Some(backends) = backends {
        settings.backends = backends;
    }
    let spec = GridSpec {
        sweep: SweepConfig {
            attack_grid,
            scenarios: scenarios.clone(),
            epsilon,
            workers,
            ..SweepConfig::default()
        },
        gammas,
        ps,
        settings,
    };

    let mut fault_plan = GridFaultPlan::default();
    if let Some(stride) = fault_kill {
        fault_plan.faults.push(GridFault {
            kind: FaultKind::Kill,
            stride,
            offset: 0,
            attempts: 1,
        });
    }
    if let Some(stride) = fault_poison {
        fault_plan.faults.push(GridFault {
            kind: FaultKind::Poison,
            stride,
            offset: 1,
            attempts: 1,
        });
    }
    let mut options = GridOptions::new(&dir);
    options.workers = workers;
    options.shard_points = shard_points;
    if let Some(retries) = retries {
        options.retry.max_attempts = retries.max(1);
    }
    if let Some(rounds) = rounds {
        options.max_rounds = rounds.max(1);
    }
    if !fault_plan.faults.is_empty() {
        println!(
            "fault injection armed: {:.0}% of first attempts faulted",
            fault_plan.first_attempt_coverage(spec.num_points()) * 100.0
        );
        options.fault_plan = Some(fault_plan);
    }

    println!(
        "grid orchestrator [{mode}]: {} scenarios x {} gamma panels x {} p values x {} backends = {} points, grid {:?}, epsilon {epsilon}",
        scenarios.len(),
        spec.gammas.len(),
        spec.ps.len(),
        spec.settings.backends.len(),
        spec.num_points(),
        spec.sweep.attack_grid,
    );
    println!("artifact directory: {}", dir.display());
    let outcome = match run_grid(&spec, &options) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("grid run failed: {err}");
            eprintln!("resume with: --resume {}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "orchestration: {} reused, {} produced, {} retried shard attempt(s), {} round(s)",
        outcome.reused, outcome.produced, outcome.retries, outcome.rounds
    );
    let report = outcome.report;

    println!("{}", report.render());
    println!(
        "points: {}   worst CI-to-certificate gap: {:.6}   unknown views: {}",
        report.len(),
        report.worst_gap(),
        report.unknown_views(),
    );

    let mut failed = false;
    if !report.all_conform() {
        failed = true;
        eprintln!(
            "CONFORMANCE FAILURE: {} of {} points have a simulated CI outside the certificate",
            report.violations().len(),
            report.len()
        );
    }
    if !report.sources_agree() {
        failed = true;
        eprintln!("BACKEND DISAGREEMENT: two consensus backends' estimates diverge");
    }

    if scenarios_mode {
        // Structural property 1: restriction dominance (see
        // examples/scenarios.rs).
        let optimal_label = AttackScenario::Optimal.label();
        let coordinates = |point: &ConformancePoint| {
            (
                point.depth,
                point.forks,
                point.p.to_bits(),
                point.gamma.to_bits(),
            )
        };
        for point in &report.points {
            let scenario = &point.scenario;
            if *scenario == optimal_label || *scenario == AttackScenario::HonestMining.label() {
                continue;
            }
            let Some(optimal) = report
                .points
                .iter()
                .find(|o| o.scenario == optimal_label && coordinates(o) == coordinates(point))
            else {
                failed = true;
                eprintln!(
                    "MISSING OPTIMAL REFERENCE for {scenario} at p={} gamma={}",
                    point.p, point.gamma
                );
                continue;
            };
            if point.certified_lower > optimal.certified_upper + DOMINANCE_SLACK {
                failed = true;
                eprintln!(
                    "DOMINANCE VIOLATION: {scenario} certifies {} > optimal {} at (d={}, f={}, p={}, gamma={})",
                    point.certified_lower, optimal.certified_upper,
                    point.depth, point.forks, point.p, point.gamma
                );
            }
        }
        // Structural property 2: the honest anchor certifies revenue p.
        for point in &report.points {
            if point.scenario != AttackScenario::HonestMining.label() {
                continue;
            }
            if (point.strategy_revenue - point.p).abs() > epsilon {
                failed = true;
                eprintln!(
                    "HONEST ANCHOR VIOLATION: honest-mining certifies {} instead of p = {} at gamma={}",
                    point.strategy_revenue, point.p, point.gamma
                );
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "all points conform; all backends agree{}",
            if scenarios_mode {
                "; dominance and the honest anchor hold"
            } else {
                ""
            }
        );
        ExitCode::SUCCESS
    }
}
