//! The scenario matrix, certified end to end: every shipped attack scenario
//! (optimal, the three stubborn-mining variants, honest mining) is solved
//! with an ε-certificate on its own sub-arena, its ε-optimal strategy is
//! exported into the block-level simulator, and a Monte-Carlo estimate —
//! once per configured consensus backend — must overlap the certified
//! `[β_low, β_up]` revenue bracket.
//!
//! On top of per-point conformance, the run checks the two structural
//! properties of the scenario family:
//!
//! * **dominance** — a restricted (stubborn) scenario never certifies a gain
//!   above the optimal scenario's at the same grid point, and
//! * **the honest anchor** — the degenerate honest-mining scenario certifies
//!   the proportional share `p` at every point.
//!
//! ```text
//! cargo run --release --example scenarios             # coarse scenario matrix
//! cargo run --release --example scenarios -- reduced  # CI-sized sub-grid
//! ```
//!
//! `--threads N` pins the sweep engine's global thread budget (outer curve
//! jobs + intra-solve threads); the report is identical for any budget.
//! `--backends LIST|all` picks the consensus backends each point is
//! witnessed under (default: Bernoulli + PoW lottery).
//!
//! The process exits non-zero if any point fails to conform, any two
//! backends disagree, or either structural property is violated, so CI can
//! gate on it.

use selfish_mining::AttackScenario;
use selfish_mining_repro::cli::{backend_matrix, thread_budget};
use selfish_mining_repro::conformance::ConformancePoint;
use selfish_mining_repro::sweep::{ConformanceSettings, SweepConfig};
use std::process::ExitCode;

/// Certified-bracket slack absorbing solver float noise in the dominance
/// comparison (the brackets themselves are only certified up to the inner
/// precision).
const DOMINANCE_SLACK: f64 = 1e-9;

fn main() -> ExitCode {
    let reduced = std::env::args().any(|arg| arg == "reduced");
    let epsilon = 1e-3;
    let (attack_grid, gammas, ps) = if reduced {
        (vec![(2, 1)], vec![0.0, 0.5, 1.0], vec![0.1, 0.2, 0.3])
    } else {
        (
            vec![(1, 1), (2, 1)],
            vec![0.0, 0.5, 1.0],
            vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
        )
    };
    let workers = match thread_budget(std::env::args().skip(1)) {
        Ok(workers) => workers.unwrap_or(0),
        Err(message) => {
            eprintln!("scenarios: {message}");
            return ExitCode::FAILURE;
        }
    };
    let backends = match backend_matrix(std::env::args().skip(1)) {
        Ok(backends) => backends,
        Err(message) => {
            eprintln!("scenarios: {message}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = AttackScenario::default_family();
    let config = SweepConfig {
        attack_grid,
        scenarios: scenarios.clone(),
        epsilon,
        workers,
        ..SweepConfig::default()
    };
    // A 12-replica floor keeps the variance estimate of the one-sided
    // CI-vs-certificate test well conditioned (t₁₁ instead of t₃ tails): the
    // certified β_low is the witnessed strategy's exact revenue, so every
    // point is an edge case by construction.
    let mut settings = ConformanceSettings {
        min_replicas: 12,
        batch: 12,
        ..ConformanceSettings::default()
    };
    if let Some(backends) = backends {
        settings.backends = backends;
    }

    println!(
        "scenario matrix: {} scenarios x {} gamma panels x {} p values x {} backends, grid {:?}, epsilon {epsilon}",
        scenarios.len(),
        gammas.len(),
        ps.len(),
        settings.backends.len(),
        config.attack_grid,
    );
    let report = match config.run_conformance(&gammas, &ps, &settings) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("scenario sweep failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("{}", report.render());
    println!(
        "points: {}   worst CI-to-certificate gap: {:.6}   unknown views: {}",
        report.len(),
        report.worst_gap(),
        report.unknown_views(),
    );

    let mut failed = false;
    if !report.all_conform() {
        failed = true;
        eprintln!(
            "CONFORMANCE FAILURE: {} of {} points have a simulated CI outside the certificate",
            report.violations().len(),
            report.len()
        );
    }
    if !report.sources_agree() {
        failed = true;
        eprintln!("BACKEND DISAGREEMENT: two consensus backends' estimates diverge");
    }

    // Structural property 1: restriction dominance. Every stubborn scenario
    // is a sub-MDP of the optimal one, so its certified lower bound can
    // never clear the optimal scenario's certified upper bound.
    let optimal_label = AttackScenario::Optimal.label();
    let coordinates = |point: &ConformancePoint| {
        (
            point.depth,
            point.forks,
            point.p.to_bits(),
            point.gamma.to_bits(),
        )
    };
    for point in &report.points {
        let scenario = &point.scenario;
        if *scenario == optimal_label || *scenario == AttackScenario::HonestMining.label() {
            continue;
        }
        let Some(optimal) = report
            .points
            .iter()
            .find(|o| o.scenario == optimal_label && coordinates(o) == coordinates(point))
        else {
            failed = true;
            eprintln!(
                "MISSING OPTIMAL REFERENCE for {scenario} at p={} gamma={}",
                point.p, point.gamma
            );
            continue;
        };
        if point.certified_lower > optimal.certified_upper + DOMINANCE_SLACK {
            failed = true;
            eprintln!(
                "DOMINANCE VIOLATION: {scenario} certifies {} > optimal {} at (d={}, f={}, p={}, gamma={})",
                point.certified_lower, optimal.certified_upper,
                point.depth, point.forks, point.p, point.gamma
            );
        }
    }

    // Structural property 2: the honest anchor certifies revenue p.
    for point in &report.points {
        if point.scenario != AttackScenario::HonestMining.label() {
            continue;
        }
        if (point.strategy_revenue - point.p).abs() > epsilon {
            failed = true;
            eprintln!(
                "HONEST ANCHOR VIOLATION: honest-mining certifies {} instead of p = {} at gamma={}",
                point.strategy_revenue, point.p, point.gamma
            );
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("all scenario points conform; dominance and the honest anchor hold");
        ExitCode::SUCCESS
    }
}
