//! End-to-end certification at the compact-arena scale target: build the
//! `d = 4, f = 3` topology (level budget `l = 2`, ~3.0M states / 22.9M
//! transitions — the only level budget whose reachable set fits the solver's
//! default 12M-state limit), instantiate one `(p, γ)` point and certify its
//! expected relative revenue with the Dinkelbach analysis.
//!
//! ```text
//! cargo run --release --example certify_d4f3
//! ```
//!
//! Runs in the nightly CI job as the scale proof of the compact CSR arena:
//! it must build, instantiate and certify without exhausting memory or the
//! nightly wall-clock budget. Environment knobs:
//!
//! * `SM_KERNEL` — `jacobi` (default), `gauss_seidel` or `prioritized`;
//!   β bounds and strategies are bit-identical across all three, so the
//!   kernel only changes the wall-clock time.
//! * `SM_EPSILON` — certification precision (default `1e-3`).

use selfish_mining::experiments::CertifiedSolve;
use selfish_mining::{
    AnalysisConfig, AnalysisProcedure, ParametricModel, SolverParallelism, SweepKernel,
};
use sm_audit::{audit_certificate, AuditConfig, CertificateArtifact};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = match std::env::var("SM_KERNEL").as_deref() {
        Ok("gauss_seidel") => SweepKernel::GaussSeidel,
        Ok("prioritized") => SweepKernel::Prioritized { threshold: 1e-9 },
        _ => SweepKernel::Jacobi,
    };
    let epsilon: f64 = std::env::var("SM_EPSILON")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1e-3);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let start = Instant::now();
    let family = ParametricModel::build(4, 3, 2)?;
    println!(
        "build   d=4 f=3 l=2: {} states, {} pairs, {} transitions in {:.1?}",
        family.num_states(),
        family.num_pairs(),
        family.num_transitions(),
        start.elapsed()
    );
    println!(
        "arena   layout {} B + term tables {} B",
        family.layout_bytes(),
        family.term_table_bytes()
    );

    let (p, gamma) = (0.35, 0.5);
    let stage = Instant::now();
    let model = family.instantiate(p, gamma)?;
    println!("instantiate p={p} gamma={gamma}: {:.1?}", stage.elapsed());

    let stage = Instant::now();
    let procedure = AnalysisProcedure::new(
        AnalysisConfig::with_epsilon(epsilon)
            .with_parallelism(SolverParallelism::threads(threads))
            .with_kernel(kernel),
    );
    let result = procedure.solve_dinkelbach(&model)?;
    println!(
        "certify ({kernel:?}, {threads} threads): beta in [{:.6}, {:.6}] after {} solves, {:.1?}",
        result.beta_low,
        result.beta_up,
        result.steps.len(),
        stage.elapsed()
    );
    assert!(result.beta_up - result.beta_low <= epsilon + 1e-12);

    // Package the solve as a certificate artifact, round-trip it through the
    // JSON form nightly CI archives, and re-validate it with the independent
    // auditor — three solver-free residual passes over the 22.9M-transition
    // arena, a few percent of one solve's wall-clock time.
    let stage = Instant::now();
    let solve = CertifiedSolve {
        scenario: family.scenario(),
        p,
        gamma,
        beta_low: result.beta_low,
        beta_up: result.beta_up,
        strategy_revenue: result.strategy_revenue,
        strategy: result.strategy,
        epsilon,
        bias: result.bias,
    };
    let artifact = CertificateArtifact::from_certified(&solve, &model)?;
    let artifact = CertificateArtifact::from_json(&artifact.to_json())?;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    println!(
        "audit   digest {:016x}: {} in {:.1?}",
        artifact.fingerprint,
        if report.passed() { "PASS" } else { "FAIL" },
        stage.elapsed()
    );
    if !report.passed() {
        eprintln!("{report}");
        return Err("certificate audit failed".into());
    }
    println!("total   {:.1?}", start.elapsed());
    Ok(())
}
