//! Full comparison at a single operating point: our attack for several
//! configurations versus the honest baseline, the single-tree baseline and the
//! classic proof-of-work closed form.
//!
//! ```text
//! cargo run --release --example compare_baselines            # p = 0.3, gamma = 0.5
//! cargo run --release --example compare_baselines -- 0.25 1  # custom p and gamma
//! ```

use selfish_mining::baselines::{
    eyal_sirer_relative_revenue, honest_relative_revenue, SingleTreeAttack,
};
use selfish_mining::{AnalysisProcedure, AttackParams, SelfishMiningModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(0.3);
    let gamma: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(0.5);

    println!("expected relative revenue at p = {p}, gamma = {gamma}\n");
    println!("{:<32} {:>10}", "strategy", "ERRev");
    println!(
        "{:<32} {:>10.4}",
        "honest mining",
        honest_relative_revenue(p)?
    );
    println!(
        "{:<32} {:>10.4}",
        "PoW selfish mining (closed form)",
        eyal_sirer_relative_revenue(p, gamma)?
    );
    let single_tree = SingleTreeAttack::paper_configuration(p, gamma).analyse()?;
    println!(
        "{:<32} {:>10.4}",
        "single-tree attack (l=4, f=5)", single_tree.relative_revenue
    );

    for (depth, forks) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let params = AttackParams::new(p, gamma, depth, forks, 4)?;
        let model = SelfishMiningModel::build(&params)?;
        let result = AnalysisProcedure::with_epsilon(1e-3).solve_dinkelbach(&model)?;
        println!(
            "{:<32} {:>10.4}",
            format!("our attack (d={depth}, f={forks}, l=4)"),
            result.strategy_revenue
        );
    }
    println!("\nchain quality is 1 - ERRev for each row (Section 2.2 of the paper).");
    Ok(())
}
