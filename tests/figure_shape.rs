//! Integration tests asserting the *shape* of the paper's experimental
//! findings (Section 4 / Figure 2), computed end-to-end through the public
//! API: model construction, Algorithm 1, and both baselines.

use selfish_mining::baselines::{honest_relative_revenue, SingleTreeAttack};
use selfish_mining::{AnalysisProcedure, AttackParams, SelfishMiningModel};

fn attack_revenue(p: f64, gamma: f64, depth: usize, forks: usize) -> f64 {
    let params = AttackParams::new(p, gamma, depth, forks, 4).unwrap();
    let model = SelfishMiningModel::build(&params).unwrap();
    AnalysisProcedure::with_epsilon(1e-3)
        .solve_dinkelbach(&model)
        .unwrap()
        .strategy_revenue
}

/// Key takeaway 1 of the paper: the attack achieves at least the honest share
/// and clearly exceeds it for d >= 2 at p = 0.3.
#[test]
fn attack_dominates_honest_baseline() {
    let p = 0.3;
    for gamma in [0.0, 0.5, 1.0] {
        let honest = honest_relative_revenue(p).unwrap();
        let ours = attack_revenue(p, gamma, 2, 1);
        assert!(
            ours >= honest - 1e-3,
            "gamma={gamma}: attack {ours} below honest {honest}"
        );
    }
    // For gamma = 0.5 and d = 2 the advantage is strict and substantial.
    assert!(attack_revenue(0.3, 0.5, 2, 1) > 0.32);
}

/// The attack revenue grows with the attack depth / forking number:
/// (2,1) >= (1,1) and (2,2) >= (2,1).
#[test]
fn attack_revenue_grows_with_depth_and_forks() {
    let p = 0.3;
    let gamma = 0.5;
    let r11 = attack_revenue(p, gamma, 1, 1);
    let r21 = attack_revenue(p, gamma, 2, 1);
    let r22 = attack_revenue(p, gamma, 2, 2);
    assert!(r21 >= r11 - 2e-3, "(2,1) {r21} should dominate (1,1) {r11}");
    assert!(r22 >= r21 - 2e-3, "(2,2) {r22} should dominate (2,1) {r21}");
    // And the growth from (1,1) to (2,2) is substantial at p = 0.3.
    assert!(r22 > r11 + 0.02, "expected a clear gap, got {r11} vs {r22}");
}

/// Figure 2's panels are ordered by gamma: larger switching probability means
/// larger revenue.
#[test]
fn attack_revenue_grows_with_gamma() {
    let p = 0.25;
    let r0 = attack_revenue(p, 0.0, 2, 1);
    let r50 = attack_revenue(p, 0.5, 2, 1);
    let r100 = attack_revenue(p, 1.0, 2, 1);
    assert!(
        r0 <= r50 + 2e-3,
        "gamma 0 ({r0}) should not beat gamma 0.5 ({r50})"
    );
    assert!(
        r50 <= r100 + 2e-3,
        "gamma 0.5 ({r50}) should not beat gamma 1 ({r100})"
    );
}

/// Already at d = 2, f = 1 the attack achieves a higher ERRev than the
/// single-tree baseline (the paper's justification for growing disjoint forks
/// instead of trees).
#[test]
fn two_depth_attack_beats_single_tree_baseline() {
    let p = 0.3;
    for gamma in [0.25, 0.5, 0.75] {
        let ours = attack_revenue(p, gamma, 2, 1);
        let tree = SingleTreeAttack::paper_configuration(p, gamma)
            .analyse()
            .unwrap()
            .relative_revenue;
        assert!(
            ours >= tree - 2e-3,
            "gamma={gamma}: our attack {ours} should be at least the single-tree baseline {tree}"
        );
    }
}

/// The d = f = 1 configuration only pays off for large switching
/// probabilities and large p (the paper observes the threshold around
/// gamma > 0.5, p > 0.25); at gamma = 0 it coincides with honest mining.
#[test]
fn minimal_configuration_needs_high_gamma_to_pay_off() {
    let honest = honest_relative_revenue(0.3).unwrap();
    let at_gamma_zero = attack_revenue(0.3, 0.0, 1, 1);
    assert!(
        (at_gamma_zero - honest).abs() < 5e-3,
        "at gamma=0 the d=f=1 attack ({at_gamma_zero}) should match honest mining ({honest})"
    );
    let at_gamma_one = attack_revenue(0.3, 1.0, 1, 1);
    assert!(
        at_gamma_one > honest + 5e-3,
        "at gamma=1, p=0.3 the d=f=1 attack ({at_gamma_one}) should beat honest mining ({honest})"
    );
}

/// Revenue is monotone in the adversarial resource share.
#[test]
fn attack_revenue_is_monotone_in_p() {
    let gamma = 0.5;
    let mut previous = 0.0;
    for p in [0.0, 0.1, 0.2, 0.3] {
        let revenue = attack_revenue(p, gamma, 2, 1);
        assert!(
            revenue >= previous - 2e-3,
            "revenue should not decrease with p (p={p}: {revenue} < {previous})"
        );
        previous = revenue;
    }
}

/// Golden shape of the batched `figure2_panels` driver: each panel's curves
/// are monotone in `p`, the `(d, f)` refinements are ordered panel-wide, the
/// honest column is exactly `p`, and the γ panels are ordered against each
/// other — the qualitative content of the paper's Figure 2, asserted on the
/// full sweep output rather than on hand-picked points.
#[test]
fn figure2_panels_have_golden_shape() {
    let epsilon = 5e-3;
    let tolerance = 2.0 * epsilon;
    let gammas = [0.0, 0.5];
    let panels = sm_bench::figure2_panels(&gammas, epsilon).unwrap();
    assert_eq!(panels.len(), gammas.len());
    let configs = sm_bench::attack_grid().len();
    for (panel, &gamma) in panels.iter().zip(&gammas) {
        assert_eq!(panel.gamma, gamma);
        assert!(!panel.points.is_empty());
        // Rendered text: one header plus one row per p, all columns present.
        assert_eq!(panel.rendered.lines().count(), panel.points.len() + 1);
        assert!(panel.rendered.contains("single-tree"));
        assert!(panel.rendered.contains("d=2,f=2"));
        for (i, point) in panel.points.iter().enumerate() {
            assert_eq!(point.gamma, gamma);
            assert_eq!(point.attack_revenue.len(), configs);
            // The honest baseline is exactly p.
            assert!((point.honest_revenue - point.p).abs() < 1e-12);
            assert!((0.0..1.0).contains(&point.single_tree_revenue));
            for (config, &revenue) in point.attack_revenue.iter().enumerate() {
                // Every attack weakly dominates honest mining.
                assert!(
                    revenue >= point.honest_revenue - tolerance,
                    "gamma={gamma} p={} config {config}: {revenue} below honest {}",
                    point.p,
                    point.honest_revenue
                );
                // Ordering across (d, f) refinements within the point.
                if config > 0 {
                    assert!(
                        revenue >= point.attack_revenue[config - 1] - tolerance,
                        "gamma={gamma} p={}: config {config} ({revenue}) below config {}",
                        point.p,
                        config - 1
                    );
                }
                // Monotonicity in p along the curve.
                if i > 0 {
                    let previous = panel.points[i - 1].attack_revenue[config];
                    assert!(
                        revenue >= previous - tolerance,
                        "gamma={gamma} config {config}: revenue drops from {previous} to {revenue} at p={}",
                        point.p
                    );
                }
            }
        }
    }
    // Panels are ordered by γ: larger switching probability cannot hurt.
    for (low, high) in panels[0].points.iter().zip(&panels[1].points) {
        assert_eq!(low.p, high.p);
        for (a, b) in low.attack_revenue.iter().zip(&high.attack_revenue) {
            assert!(
                b >= &(a - tolerance),
                "p={}: gamma=0.5 ({b}) below gamma=0 ({a})",
                low.p
            );
        }
    }
}

/// Chain quality (1 - ERRev) degrades below the fair value 1 - p once the
/// adversary uses the attack with d >= 2 — the security message of the paper.
#[test]
fn chain_quality_degrades_under_attack() {
    let p = 0.3;
    let gamma = 0.5;
    let revenue = attack_revenue(p, gamma, 2, 2);
    let chain_quality = 1.0 - revenue;
    assert!(
        chain_quality < 1.0 - p - 0.01,
        "chain quality {chain_quality} should fall below the fair value {}",
        1.0 - p
    );
}
