//! Equivalence of the parameterized transition arena and the direct model
//! builder: `ParametricModel::instantiate(p, γ)` must reproduce
//! `SelfishMiningModel::build` **bit for bit** (states, CSR arrays,
//! probabilities, rewards, VI/PI gains and strategies) for interior
//! parameters, and must agree on every solver-level result for the masked
//! edge cases `γ ∈ {0, 1}` and `p ∈ {0, 1}`, where the direct builder prunes
//! zero-probability branches while the parametric arena keeps them
//! structurally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfish_mining::{AnalysisProcedure, AttackParams, ParametricModel, SelfishMiningModel};
use sm_mdp::{PolicyIteration, RelativeValueIteration};

/// The `(d, f, l)` topologies swept by the equivalence properties.
const TOPOLOGIES: [(usize, usize, usize); 4] = [(1, 1, 2), (2, 1, 3), (2, 2, 3), (1, 2, 4)];

fn fresh(p: f64, gamma: f64, d: usize, f: usize, l: usize) -> SelfishMiningModel {
    let params = AttackParams::new(p, gamma, d, f, l).unwrap();
    SelfishMiningModel::build(&params).unwrap()
}

/// Full structural comparison: states, action lists, the entire CSR arena
/// (index arrays, probabilities, interned names) and both reward buffers.
fn assert_bit_identical(instantiated: &SelfishMiningModel, built: &SelfishMiningModel) {
    assert_eq!(instantiated.num_states(), built.num_states());
    for s in 0..built.num_states() {
        assert_eq!(instantiated.state(s), built.state(s));
        assert_eq!(instantiated.actions_of(s), built.actions_of(s));
    }
    assert_eq!(instantiated.mdp(), built.mdp());
    assert_eq!(
        instantiated.adversary_rewards().values(),
        built.adversary_rewards().values()
    );
    assert_eq!(
        instantiated.honest_rewards().values(),
        built.honest_rewards().values()
    );
    assert_eq!(instantiated.params(), built.params());
}

/// Identical inputs make the deterministic solvers produce identical outputs;
/// assert exactly that (no tolerances) for VI and PI at a non-trivial β.
fn assert_identical_solver_results(a: &SelfishMiningModel, b: &SelfishMiningModel) {
    let beta = 0.35;
    let ra = a.beta_rewards(beta).unwrap();
    let rb = b.beta_rewards(beta).unwrap();
    let vi = RelativeValueIteration::with_epsilon(1e-7);
    let va = vi.solve(a.mdp(), &ra).unwrap();
    let vb = vi.solve(b.mdp(), &rb).unwrap();
    assert_eq!(va.gain, vb.gain, "VI gains must be bit-identical");
    assert_eq!(va.strategy, vb.strategy, "VI strategies must be identical");
    assert_eq!(va.iterations, vb.iterations);
    let (pa, sa) = PolicyIteration::default().solve(a.mdp(), &ra).unwrap();
    let (pb, sb) = PolicyIteration::default().solve(b.mdp(), &rb).unwrap();
    assert_eq!(pa, pb, "PI gains must be bit-identical");
    assert_eq!(sa, sb, "PI strategies must be identical");
}

#[test]
fn interior_instantiation_is_bit_for_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x9A7A_11E1);
    for &(d, f, l) in &TOPOLOGIES {
        let family = ParametricModel::build(d, f, l).unwrap();
        for case in 0..4 {
            // Strictly interior (p, γ): the direct builder prunes nothing.
            let p = 0.05 + rng.gen_range(0.0..0.85);
            let gamma = 0.05 + rng.gen_range(0.0..0.9);
            let instantiated = family.instantiate(p, gamma).unwrap();
            let built = fresh(p, gamma, d, f, l);
            assert_bit_identical(&instantiated, &built);
            if case == 0 {
                assert_identical_solver_results(&instantiated, &built);
            }
        }
    }
}

#[test]
fn masked_edges_agree_with_the_pruned_builder_on_gains() {
    // At the parameter-square edges the direct builder prunes masked
    // branches (smaller state space), so structural equality is impossible;
    // the certified solver results must still coincide.
    let edge_cases = [
        (0.0, 0.5),
        (0.0, 0.0),
        (0.0, 1.0),
        (0.3, 0.0),
        (0.3, 1.0),
        (1.0, 0.5),
    ];
    let vi_epsilon = 1e-8;
    for &(d, f, l) in &[(1, 1, 2), (2, 1, 3)] {
        let family = ParametricModel::build(d, f, l).unwrap();
        for &(p, gamma) in &edge_cases {
            let instantiated = family.instantiate(p, gamma).unwrap();
            instantiated.mdp().validate().unwrap();
            let built = fresh(p, gamma, d, f, l);
            assert!(instantiated.num_states() >= built.num_states());
            for beta in [0.0, 0.35] {
                let vi = RelativeValueIteration::with_epsilon(vi_epsilon);
                let ga = vi
                    .solve(
                        instantiated.mdp(),
                        &instantiated.beta_rewards(beta).unwrap(),
                    )
                    .unwrap()
                    .gain;
                let gb = vi
                    .solve(built.mdp(), &built.beta_rewards(beta).unwrap())
                    .unwrap()
                    .gain;
                assert!(
                    (ga - gb).abs() <= 2.0 * vi_epsilon,
                    "(d={d},f={f},l={l}) (p={p},γ={gamma}) β={beta}: \
                     masked gain {ga} vs pruned gain {gb}"
                );
            }
        }
    }
}

#[test]
fn masked_edges_agree_on_the_full_analysis() {
    // End-to-end check through Algorithm 1's Dinkelbach variant, exercising
    // the induced chains (with structurally-kept zero-probability entries)
    // and the revenue evaluation on both representations.
    let epsilon = 2e-3;
    let family = ParametricModel::build(2, 1, 3).unwrap();
    for &(p, gamma) in &[(0.0, 0.5), (0.3, 0.0), (0.3, 1.0)] {
        let instantiated = family.instantiate(p, gamma).unwrap();
        let built = fresh(p, gamma, 2, 1, 3);
        let procedure = AnalysisProcedure::with_epsilon(epsilon);
        let a = procedure.solve_dinkelbach(&instantiated).unwrap();
        let b = procedure.solve_dinkelbach(&built).unwrap();
        assert!(
            (a.strategy_revenue - b.strategy_revenue).abs() < 2.0 * epsilon,
            "(p={p},γ={gamma}): masked revenue {} vs pruned revenue {}",
            a.strategy_revenue,
            b.strategy_revenue
        );
    }
}

#[test]
fn in_place_reinstantiation_follows_a_seeded_parameter_walk() {
    // One reused model walked across a seeded (p, γ) sequence — including
    // repeated visits to masked edges — must stay bit-identical to a fresh
    // instantiation at every step (guards against stale-buffer bugs).
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE11);
    for &(d, f, l) in &TOPOLOGIES {
        let family = ParametricModel::build(d, f, l).unwrap();
        let mut reused = family.instantiate(0.5, 0.5).unwrap();
        for step in 0..8 {
            let (p, gamma) = match step {
                0 => (0.0, 0.5),
                1 => (rng.gen_range(0.0..1.0), 0.0),
                2 => (rng.gen_range(0.0..1.0), 1.0),
                _ => (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
            };
            family.instantiate_into(&mut reused, p, gamma).unwrap();
            let direct = family.instantiate(p, gamma).unwrap();
            assert_eq!(reused.mdp(), direct.mdp(), "step {step} (p={p},γ={gamma})");
            assert_eq!(
                reused.adversary_rewards().values(),
                direct.adversary_rewards().values()
            );
            assert_eq!(
                reused.honest_rewards().values(),
                direct.honest_rewards().values()
            );
        }
    }
}

#[test]
fn warm_started_vi_agrees_with_cold_and_reconverges_fast() {
    let family = ParametricModel::build(2, 1, 4).unwrap();
    let gamma = 0.5;
    let beta = 0.35;
    let vi = RelativeValueIteration::with_epsilon(1e-7);

    let near = family.instantiate(0.25, gamma).unwrap();
    let near_rewards = near.beta_rewards(beta).unwrap();
    let seed = vi.solve(near.mdp(), &near_rewards).unwrap();

    let target = family.instantiate(0.30, gamma).unwrap();
    let target_rewards = target.beta_rewards(beta).unwrap();
    let cold = vi.solve(target.mdp(), &target_rewards).unwrap();
    let warm = vi
        .solve_from(target.mdp(), &target_rewards, &seed.bias)
        .unwrap();
    assert!(
        (warm.gain - cold.gain).abs() <= 2e-7,
        "warm gain {} vs cold gain {}",
        warm.gain,
        cold.gain
    );
    assert_eq!(warm.strategy, cold.strategy);
    // A foreign bias is a valid seed but not guaranteed to save sweeps on a
    // *single* solve (the measured win comes from chaining bias across the
    // Dinkelbach β iterations, where consecutive problems are nearly
    // identical); it must at least stay in the same ballpark.
    assert!(
        warm.iterations <= 2 * cold.iterations,
        "warm start degraded convergence ({} vs {})",
        warm.iterations,
        cold.iterations
    );

    // Re-solving the *same* problem from its own converged bias is nearly
    // instantaneous — the degenerate best case of the warm start.
    let resolved = vi
        .solve_from(target.mdp(), &target_rewards, &cold.bias)
        .unwrap();
    assert!(
        resolved.iterations <= 3,
        "re-solve from converged bias took {} sweeps",
        resolved.iterations
    );
}
