//! Integration tests of the statistical-conformance subsystem: the parallel
//! Monte-Carlo estimator, the strategy export, and the solver-vs-simulator
//! certification driven through the sweep engine.

use selfish_mining::baselines::honest_relative_revenue;
use selfish_mining::experiments::attack_curve_certified;
use selfish_mining::ConsensusBackend;
use selfish_mining::{ParametricModel, StrategyExport};
use sm_chain::{HonestStrategy, SimulationConfig, UnknownViewPolicy};
use sm_conformance::{certify_point, estimate_revenue, ConformanceSettings, EstimatorConfig};
use sm_sweep::SweepConfig;

fn estimator_config(p: f64, gamma: f64, steps: usize, seed: u64) -> EstimatorConfig {
    EstimatorConfig {
        simulation: SimulationConfig {
            p,
            gamma,
            steps,
            seed,
            ..SimulationConfig::default()
        },
        ..EstimatorConfig::default()
    }
}

/// Property: the simulator running the honest strategy reproduces the
/// analytic honest baseline `ERRev = p` within the estimator's own CLT
/// confidence half-width, across a seeded `(p, γ)` grid and under both
/// historical consensus backends.
#[test]
fn honest_simulation_matches_analytic_baseline_within_ci() {
    for (i, &p) in [0.0, 0.1, 0.35].iter().enumerate() {
        for (j, &gamma) in [0.0, 1.0].iter().enumerate() {
            for backend in [ConsensusBackend::Bernoulli, ConsensusBackend::PowLottery] {
                let seed = 0xBEEF + (i * 3 + j) as u64;
                let config = EstimatorConfig {
                    // One 12-replica round: a 4-replica variance estimate is
                    // too noisy to serve as the comparison yardstick.
                    min_replicas: 12,
                    batch: 12,
                    ..estimator_config(p, gamma, 16_000, seed)
                };
                let estimate = estimate_revenue(&config, &HonestStrategy, backend).unwrap();
                let analytic = honest_relative_revenue(p).unwrap();
                // The floor covers the O(1/n) ratio-estimator bias of a
                // finite run, which the CLT interval does not model.
                assert!(
                    (estimate.mean - analytic).abs() <= estimate.half_width.max(2e-3),
                    "p={p} gamma={gamma} {}: mean {} vs analytic {analytic} (hw {})",
                    backend.label(),
                    estimate.mean,
                    estimate.half_width
                );
                assert_eq!(estimate.unknown_views, 0);
            }
        }
    }
}

/// Determinism: the conformance estimator produces bit-identical estimates
/// for 1, 2 and 8 workers on the same seed, for both historical backends —
/// including the unconverged path where the full replica budget runs.
#[test]
fn estimator_reports_are_bit_identical_for_1_2_and_8_workers() {
    let base = EstimatorConfig {
        // A tolerance no run can meet pins the replica count to the budget,
        // so every worker count does identical work.
        tolerance: 1e-12,
        max_replicas: 12,
        batch: 5,
        ..estimator_config(0.3, 0.5, 4_000, 0xD15EA5E)
    };
    for backend in [ConsensusBackend::Bernoulli, ConsensusBackend::PowLottery] {
        let reference = estimate_revenue(
            &EstimatorConfig {
                workers: 1,
                ..base.clone()
            },
            &HonestStrategy,
            backend,
        )
        .unwrap();
        for workers in [2, 8] {
            let estimate = estimate_revenue(
                &EstimatorConfig {
                    workers,
                    ..base.clone()
                },
                &HonestStrategy,
                backend,
            )
            .unwrap();
            assert_eq!(
                reference,
                estimate,
                "{}: workers = {workers} must be bit-identical",
                backend.label()
            );
        }
        assert_eq!(reference.replicas, 12);
    }
}

/// The full certification path — certified solve, strategy export,
/// Monte-Carlo witness under every configured backend — agrees with the solver's
/// ε-certificate, and the report is bit-identical for any worker count of
/// both pools (sweep jobs and estimator replicas).
#[test]
fn certified_point_conforms_and_certification_is_deterministic() {
    let family = ParametricModel::build(2, 1, 4).unwrap();
    let solves = attack_curve_certified(&family, 0.5, &[0.3], 5e-3, true).unwrap();
    // The family-skeleton export and the instantiated-model export are the
    // same translation; certify through the former, assert against the
    // latter.
    let export = StrategyExport::from_family(&family);
    let model = family.instantiate(0.3, 0.5).unwrap();
    let table_via_model = StrategyExport::new(&model)
        .table(&solves[0].strategy, UnknownViewPolicy::Wait)
        .unwrap();
    let settings = ConformanceSettings {
        steps: 20_000,
        max_replicas: 16,
        tolerance: 5e-3,
        ..ConformanceSettings::default()
    };
    let point = certify_point(&export, &solves[0], &settings).unwrap();
    assert_eq!(point.table_entries, table_via_model.len());
    assert!(
        point.conforms(),
        "simulation CI misses the certificate: {point:?}"
    );
    assert!(point.sources_agree(), "arrival sources disagree: {point:?}");
    assert!(point.strategy_revenue >= point.certified_lower - 1e-12);
    assert!(point.strategy_revenue <= point.certified_upper + 1e-12);

    // One sweep-driven certification, twice with different pool shapes.
    let run = |sweep_workers: usize, estimator_workers: usize| {
        SweepConfig {
            attack_grid: vec![(2, 1)],
            epsilon: 1e-2,
            workers: sweep_workers,
            ..SweepConfig::default()
        }
        .run_conformance(
            &[0.5],
            &[0.2, 0.3],
            &ConformanceSettings {
                steps: 10_000,
                max_replicas: 12,
                tolerance: 8e-3,
                workers: estimator_workers,
                ..ConformanceSettings::default()
            },
        )
        .unwrap()
    };
    let a = run(1, 1);
    let b = run(3, 8);
    assert_eq!(a, b, "conformance reports must not depend on worker counts");
    assert_eq!(a.len(), 2);
    assert!(a.all_conform(), "violations: {:?}", a.violations());
}
