//! Crash/resume determinism of the sharded grid orchestrator: a run killed
//! or poisoned mid-shard and resumed — across worker counts and shard sizes
//! — must merge a report `f64::to_bits`-identical to the uninterrupted
//! single-process pass, and a corrupted artifact must be detected by
//! fingerprint and re-scheduled, never merged.

use selfish_mining::AttackScenario;
use selfish_mining_repro::conformance::ConformanceReport;
use selfish_mining_repro::grid::{
    merge_grid, run_grid, scan_grid, FaultKind, GridError, GridFault, GridFaultPlan, GridOptions,
    GridSpec,
};
use selfish_mining_repro::scheduler::RetryPolicy;
use selfish_mining_repro::sweep::{ConformanceSettings, SweepConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Cheap but non-trivial grid: 2 families (optimal + honest-mining on
/// (2, 1)) × 2 γ × 3 p = 12 points, full replica budget per point.
fn spec() -> GridSpec {
    GridSpec {
        sweep: SweepConfig {
            attack_grid: vec![(2, 1)],
            scenarios: vec![AttackScenario::Optimal, AttackScenario::HonestMining],
            epsilon: 1e-2,
            workers: 1,
            ..SweepConfig::default()
        },
        gammas: vec![0.0, 0.5],
        ps: vec![0.1, 0.2, 0.3],
        settings: ConformanceSettings {
            steps: 2_000,
            max_replicas: 4,
            tolerance: 1e-2,
            ..ConformanceSettings::default()
        },
    }
}

/// The uninterrupted single-process reference for [`spec`].
fn reference(spec: &GridSpec) -> ConformanceReport {
    spec.sweep
        .run_conformance(&spec.gammas, &spec.ps, &spec.settings)
        .expect("reference conformance pass")
}

/// A fresh artifact directory under the system temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sm-grid-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Zero-backoff retry so fault-heavy tests stay fast.
fn fast_retry(max_attempts: usize) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

/// `f64::to_bits` equality over every float in both reports (PartialEq
/// would accept `0.0 == -0.0` and reject equal NaNs — the contract here is
/// bit identity, nothing weaker).
fn assert_bitwise_equal(merged: &ConformanceReport, reference: &ConformanceReport) {
    assert_eq!(merged.len(), reference.len(), "point counts differ");
    for (index, (a, b)) in merged.points.iter().zip(&reference.points).enumerate() {
        assert_eq!(a.scenario, b.scenario, "scenario at #{index}");
        assert_eq!(
            (a.depth, a.forks, a.max_fork_length, a.table_entries),
            (b.depth, b.forks, b.max_fork_length, b.table_entries),
            "structure at #{index}"
        );
        for (name, x, y) in [
            ("p", a.p, b.p),
            ("gamma", a.gamma, b.gamma),
            ("certified_lower", a.certified_lower, b.certified_lower),
            ("certified_upper", a.certified_upper, b.certified_upper),
            ("slack", a.slack, b.slack),
            ("strategy_revenue", a.strategy_revenue, b.strategy_revenue),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{name} at #{index}");
        }
        assert_eq!(
            a.estimates.len(),
            b.estimates.len(),
            "estimates at #{index}"
        );
        for (e, f) in a.estimates.iter().zip(&b.estimates) {
            assert_eq!(e.backend, f.backend, "backend at #{index}");
            for (name, x, y) in [
                ("mean", e.mean, f.mean),
                ("variance", e.variance, f.variance),
                ("half_width", e.half_width, f.half_width),
            ] {
                assert_eq!(x.to_bits(), y.to_bits(), "estimate {name} at #{index}");
            }
            assert_eq!(
                (
                    e.replicas,
                    e.steps_per_replica,
                    e.converged,
                    e.unknown_views
                ),
                (
                    f.replicas,
                    f.steps_per_replica,
                    f.converged,
                    f.unknown_views
                ),
                "estimate shape at #{index}"
            );
        }
    }
}

#[test]
fn heavily_faulted_run_heals_and_matches_the_reference_bitwise() {
    let spec = spec();
    let reference = reference(&spec);
    let dir = fresh_dir("faulted");
    // Kill every 3rd job and poison every 3rd-offset-2 job on their first
    // attempts: 8 of 12 points (67 %) fault — well past the 20 % the
    // acceptance criterion demands. With 2-point shards the kills land in
    // the two-point shards (healed by in-place retry) and the poisons in
    // the singleton shards (only healable by the next round's rescan).
    let plan = GridFaultPlan {
        faults: vec![
            GridFault {
                kind: FaultKind::Kill,
                stride: 3,
                offset: 0,
                attempts: 1,
            },
            GridFault {
                kind: FaultKind::Poison,
                stride: 3,
                offset: 2,
                attempts: 1,
            },
        ],
    };
    assert!(plan.first_attempt_coverage(spec.num_points()) >= 0.2);
    let mut options = GridOptions::new(&dir);
    options.workers = 4;
    options.shard_points = 2;
    options.retry = fast_retry(3);
    options.fault_plan = Some(plan);
    let outcome = run_grid(&spec, &options).expect("faulted run must heal");
    assert!(outcome.retries > 0, "kill faults must have forced retries");
    assert!(
        outcome.rounds > 1,
        "poison faults are only visible to the next scan"
    );
    assert_bitwise_equal(&outcome.report, &reference);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn kill_mid_shard_then_resume_is_bitwise_identical_across_schedules() {
    let spec = spec();
    let reference = reference(&spec);
    // An unretryable kill (attempt budget 1, rounds budget 1) leaves the
    // run dead with partial progress — the crash-mid-shard scenario.
    let dir = fresh_dir("resume");
    let mut crashed = GridOptions::new(&dir);
    crashed.workers = 1;
    crashed.shard_points = 0; // whole-curve shards: the kill hits mid-shard
    crashed.retry = fast_retry(1);
    crashed.max_rounds = 1;
    crashed.fault_plan = Some(GridFaultPlan::kill_every(4, usize::MAX));
    let error = run_grid(&spec, &crashed).expect_err("the kill must be fatal");
    assert!(
        matches!(error, GridError::Incomplete { pending, .. } if pending > 0),
        "unexpected failure: {error}"
    );
    // The crash left earlier shard points durable...
    let scan = scan_grid(&spec, &dir).expect("scan");
    assert!(scan.complete() > 0, "mid-shard progress must be durable");
    assert!(scan.missing() > 0);
    // ...and a merge refuses the incomplete directory.
    assert!(matches!(
        merge_grid(&spec, &dir),
        Err(GridError::Incomplete { .. })
    ));
    // Resume with a *different* schedule (more workers, smaller shards, no
    // faults): only the missing points run, and the merge is bit-identical
    // to the uninterrupted single-process reference.
    let mut resumed = GridOptions::new(&dir);
    resumed.workers = 4;
    resumed.shard_points = 1;
    resumed.retry = fast_retry(2);
    let outcome = run_grid(&spec, &resumed).expect("resume must complete");
    assert_eq!(outcome.reused, scan.complete(), "durable points are reused");
    assert_eq!(
        outcome.reused + outcome.produced,
        spec.num_points(),
        "resume computes exactly the missing points"
    );
    assert_bitwise_equal(&outcome.report, &reference);
    // A third pass over the completed directory is a verified no-op, and a
    // standalone merge agrees.
    let noop = run_grid(&spec, &resumed).expect("no-op rerun");
    assert_eq!((noop.produced, noop.reused), (0, spec.num_points()));
    assert_bitwise_equal(&noop.report, &reference);
    assert_bitwise_equal(&merge_grid(&spec, &dir).expect("merge"), &reference);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupted_artifacts_are_fingerprint_detected_and_rescheduled() {
    let spec = spec();
    let dir = fresh_dir("corrupt");
    let mut options = GridOptions::new(&dir);
    options.retry = fast_retry(2);
    let first = run_grid(&spec, &options).expect("initial run");
    assert_eq!(first.produced, spec.num_points());

    // Corrupt two artifacts two different ways: truncate one (breaks the
    // parse) and flip a digit inside another (breaks the fingerprint).
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|entry| entry.expect("entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert_eq!(files.len(), spec.num_points());
    let truncated = &files[0];
    let original = std::fs::read_to_string(truncated).expect("read artifact");
    std::fs::write(truncated, &original[..original.len() / 2]).expect("truncate");
    let flipped = &files[7];
    let contents = std::fs::read_to_string(flipped).expect("read artifact");
    let tampered = contents.replacen("\"p\":0.", "\"p\":1.", 1);
    assert_ne!(contents, tampered, "the tamper must hit a payload digit");
    std::fs::write(flipped, tampered).expect("tamper");

    let scan = scan_grid(&spec, &dir).expect("scan");
    assert_eq!(scan.corrupt(), 2, "both corruptions must be detected");
    assert_eq!(scan.complete(), spec.num_points() - 2);
    // merge_grid never folds a corrupt file into a report.
    assert!(matches!(
        merge_grid(&spec, &dir),
        Err(GridError::Incomplete { pending: 2, .. })
    ));
    // A resume re-schedules exactly the corrupt points and heals the
    // directory back to the reference bits.
    let healed = run_grid(&spec, &options).expect("healing run");
    assert_eq!(healed.reused, spec.num_points() - 2);
    assert_eq!(healed.produced, 2);
    assert_bitwise_equal(&healed.report, &reference(&spec));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn artifacts_of_a_different_spec_are_invisible_to_resume() {
    // Same directory, two specs differing only in the master seed: the
    // content-addressed names keep their artifact sets disjoint, so neither
    // resume ever reuses (or trips over) the other's files.
    let spec_a = spec();
    let mut spec_b = spec();
    spec_b.settings.master_seed ^= 0xFFFF;
    // Shrink to one curve to keep the double run cheap.
    let shrink = |mut s: GridSpec| {
        s.sweep.scenarios = vec![AttackScenario::HonestMining];
        s.gammas = vec![0.5];
        s.ps = vec![0.1, 0.2];
        s
    };
    let spec_a = shrink(spec_a);
    let spec_b = shrink(spec_b);
    assert_ne!(spec_a.digest(), spec_b.digest());
    let dir = fresh_dir("disjoint");
    let options = GridOptions::new(&dir);
    let a = run_grid(&spec_a, &options).expect("run a");
    let b = run_grid(&spec_b, &options).expect("run b");
    assert_eq!(a.report.len(), b.report.len());
    assert_eq!(
        (b.reused, b.produced),
        (0, spec_b.num_points()),
        "b must not reuse a's artifacts"
    );
    // Both directories stay independently resumable.
    assert_eq!(run_grid(&spec_a, &options).expect("re-merge a").produced, 0);
    assert_eq!(run_grid(&spec_b, &options).expect("re-merge b").produced, 0);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
