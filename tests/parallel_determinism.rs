//! Determinism of the intra-solve parallel sweeps: every solver must return
//! **bit-identical** results — gains, certified bounds, strategies, bias
//! vectors and iteration counts — for any thread count. The row-block
//! parallelism only partitions Jacobi sweeps over disjoint state blocks and
//! folds the per-block statistics in block order, so nothing about the
//! arithmetic may depend on the pool shape; these tests enforce that with
//! exact `f64::to_bits` comparisons across 1/2/8 intra-solve threads over a
//! seeded `(p, γ)` grid, plus a pinned large-instance (`d = 3, f = 2`)
//! smoke test.
//!
//! The same bar applies to the sweep *kernels*: Gauss-Seidel and prioritized
//! evaluation sweeps only accelerate convergence between the full Jacobi
//! Bellman sweeps that certificates come from, so the certified curve — β
//! bounds, strategies, revenues — must be bit-identical across every
//! kernel × thread-count combination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfish_mining::experiments::{attack_curve_certified_config, attack_curve_certified_with};
use selfish_mining::{AnalysisConfig, ParametricModel, SolverParallelism, SweepKernel};
use sm_mdp::{DiscountedValueIteration, RelativeValueIteration};

/// The seeded `(p, γ)` grid shared by the per-solver properties.
fn seeded_grid(points: usize) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(0x5ee9_b10c);
    (0..points)
        .map(|_| (rng.gen_range(0.05..0.45), rng.gen_range(0.0..1.0)))
        .collect()
}

fn assert_bits_eq(label: &str, reference: &[f64], candidate: &[f64]) {
    assert_eq!(reference.len(), candidate.len(), "{label}: length mismatch");
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: entry {i} differs ({a} vs {b})"
        );
    }
}

#[test]
fn relative_value_iteration_is_bit_identical_across_thread_counts() {
    // d = 2, f = 2 (2895 states, ~22k transitions) comfortably clears the
    // minimum block mass, so 2 and 8 threads genuinely exercise the pool.
    let family = ParametricModel::build(2, 2, 4).unwrap();
    for &(p, gamma) in &seeded_grid(3) {
        let model = family.instantiate(p, gamma).unwrap();
        let rewards = model.beta_rewards(0.35).unwrap();
        let reference = RelativeValueIteration::with_epsilon(1e-6)
            .solve(model.mdp(), &rewards)
            .unwrap();
        for threads in [2usize, 8] {
            let parallel = RelativeValueIteration::with_epsilon(1e-6)
                .with_parallelism(SolverParallelism::threads(threads))
                .solve(model.mdp(), &rewards)
                .unwrap();
            let label = format!("rvi p={p} gamma={gamma} threads={threads}");
            assert_eq!(reference.gain.to_bits(), parallel.gain.to_bits(), "{label}");
            assert_eq!(
                reference.gain_lower.to_bits(),
                parallel.gain_lower.to_bits(),
                "{label}"
            );
            assert_eq!(
                reference.gain_upper.to_bits(),
                parallel.gain_upper.to_bits(),
                "{label}"
            );
            assert_eq!(reference.strategy, parallel.strategy, "{label}");
            assert_eq!(reference.iterations, parallel.iterations, "{label}");
            assert_bits_eq(&label, &reference.bias, &parallel.bias);
        }
    }
}

#[test]
fn warm_started_rvi_is_bit_identical_across_thread_counts() {
    let family = ParametricModel::build(2, 2, 4).unwrap();
    let model = family.instantiate(0.3, 0.5).unwrap();
    let rewards = model.beta_rewards(0.3).unwrap();
    let cold = RelativeValueIteration::with_epsilon(1e-5)
        .solve(model.mdp(), &rewards)
        .unwrap();
    // Warm-start from the cold bias under a shifted reward, serial vs pool.
    let shifted = model.beta_rewards(0.32).unwrap();
    let reference = RelativeValueIteration::with_epsilon(1e-6)
        .solve_from(model.mdp(), &shifted, &cold.bias)
        .unwrap();
    for threads in [2usize, 8] {
        let parallel = RelativeValueIteration::with_epsilon(1e-6)
            .with_parallelism(SolverParallelism::threads(threads))
            .solve_from(model.mdp(), &shifted, &cold.bias)
            .unwrap();
        assert_eq!(reference.gain.to_bits(), parallel.gain.to_bits());
        assert_eq!(reference.strategy, parallel.strategy);
        assert_eq!(reference.iterations, parallel.iterations);
        assert_bits_eq("warm rvi bias", &reference.bias, &parallel.bias);
    }
}

#[test]
fn discounted_value_iteration_is_bit_identical_across_thread_counts() {
    let family = ParametricModel::build(2, 2, 4).unwrap();
    for &(p, gamma) in &seeded_grid(2) {
        let model = family.instantiate(p, gamma).unwrap();
        let rewards = model.beta_rewards(0.4).unwrap();
        let reference = DiscountedValueIteration::new(0.95)
            .solve(model.mdp(), &rewards)
            .unwrap();
        for threads in [2usize, 8] {
            let parallel = DiscountedValueIteration::new(0.95)
                .with_parallelism(SolverParallelism::threads(threads))
                .solve(model.mdp(), &rewards)
                .unwrap();
            let label = format!("dvi p={p} gamma={gamma} threads={threads}");
            assert_eq!(reference.iterations, parallel.iterations, "{label}");
            assert_eq!(reference.strategy, parallel.strategy, "{label}");
            assert_bits_eq(&label, &reference.values, &parallel.values);
        }
    }
}

#[test]
fn fused_chain_gains_are_bit_identical_across_thread_counts() {
    // Evaluate a fixed strategy's revenue — the `iterative_gains` hot path —
    // on the chain induced by an actual ε-optimal strategy.
    let family = ParametricModel::build(2, 2, 4).unwrap();
    for &(p, gamma) in &seeded_grid(2) {
        let model = family.instantiate(p, gamma).unwrap();
        let rewards = model.beta_rewards(0.35).unwrap();
        let strategy = RelativeValueIteration::with_epsilon(1e-5)
            .solve(model.mdp(), &rewards)
            .unwrap()
            .strategy;
        let (reference_revenue, reference_bias) = model
            .expected_relative_revenue_seeded_with(&strategy, None, SolverParallelism::serial())
            .unwrap();
        for threads in [2usize, 8] {
            let (revenue, bias) = model
                .expected_relative_revenue_seeded_with(
                    &strategy,
                    None,
                    SolverParallelism::threads(threads),
                )
                .unwrap();
            let label = format!("gains p={p} gamma={gamma} threads={threads}");
            assert_eq!(
                reference_revenue.to_bits(),
                revenue.to_bits(),
                "{label}: revenue {reference_revenue} vs {revenue}"
            );
            assert_eq!(reference_bias.len(), bias.len(), "{label}");
            for (r, (a, b)) in reference_bias.iter().zip(&bias).enumerate() {
                assert_bits_eq(&format!("{label} reward {r}"), a, b);
            }
        }
    }
}

#[test]
fn certified_attack_curves_are_bit_identical_across_thread_counts() {
    // End to end through the Dinkelbach analysis with warm starts along the
    // curve: certificates, strategies and revenues must not see the pool.
    let family = ParametricModel::build(2, 2, 4).unwrap();
    let ps = [0.15, 0.25, 0.35];
    let reference =
        attack_curve_certified_with(&family, 0.5, &ps, 1e-3, true, SolverParallelism::serial())
            .unwrap();
    for threads in [2usize, 8] {
        let parallel = attack_curve_certified_with(
            &family,
            0.5,
            &ps,
            1e-3,
            true,
            SolverParallelism::threads(threads),
        )
        .unwrap();
        // CertifiedSolve's PartialEq compares every f64 exactly.
        assert_eq!(reference, parallel, "threads = {threads}");
    }
}

#[test]
fn certified_attack_curves_are_bit_identical_across_sweep_kernels() {
    // The certified curve may not see the kernel: Gauss-Seidel / prioritized
    // sweeps only run between the certifying Jacobi sweeps, and β bounds are
    // evaluated by pure-Jacobi revenue solves on the per-step strategies.
    // The bias vector is the one field outside the guarantee — the
    // interleaved evaluation sweeps shape it per kernel; it is a certificate
    // witness (any finite bias sandwiches the gain), not a certified output.
    let family = ParametricModel::build(2, 2, 4).unwrap();
    let ps = [0.15, 0.25, 0.35];
    let reference =
        attack_curve_certified_config(&family, 0.5, &ps, true, AnalysisConfig::with_epsilon(1e-3))
            .unwrap();
    for kernel in [
        SweepKernel::GaussSeidel,
        SweepKernel::Prioritized { threshold: 1e-7 },
    ] {
        for threads in [1usize, 2, 8] {
            let candidate = attack_curve_certified_config(
                &family,
                0.5,
                &ps,
                true,
                AnalysisConfig::with_epsilon(1e-3)
                    .with_parallelism(SolverParallelism::threads(threads))
                    .with_kernel(kernel),
            )
            .unwrap();
            assert_eq!(reference.len(), candidate.len());
            for (expected, got) in reference.iter().zip(&candidate) {
                // Every f64 compared exactly; only `bias` is kernel-local.
                let context = format!(
                    "kernel = {kernel:?}, threads = {threads}, p = {}",
                    expected.p
                );
                assert_eq!(expected.scenario, got.scenario, "{context}");
                assert_eq!(expected.p, got.p, "{context}");
                assert_eq!(expected.gamma, got.gamma, "{context}");
                assert_eq!(expected.beta_low, got.beta_low, "{context}");
                assert_eq!(expected.beta_up, got.beta_up, "{context}");
                assert_eq!(expected.strategy_revenue, got.strategy_revenue, "{context}");
                assert_eq!(expected.strategy, got.strategy, "{context}");
                assert_eq!(expected.epsilon, got.epsilon, "{context}");
            }
        }
    }
}

#[test]
fn large_instance_smoke_d3_f2_is_pinned_and_deterministic() {
    // The `d = 3, f = 2` arena is the instance class this layer exists for:
    // two orders of magnitude beyond the default grid. Pin its size so a
    // construction change cannot silently alter the workload, then check a
    // full sweep-based solve bit for bit across pool shapes.
    let family = ParametricModel::build(3, 2, 4).unwrap();
    assert_eq!(family.num_states(), 133_299, "d=3,f=2,l=4 state count");
    let model = family.instantiate(0.3, 0.5).unwrap();
    assert_eq!(model.num_states(), 133_299);
    let rewards = model.beta_rewards(0.45).unwrap();
    // A coarser precision keeps the smoke affordable in debug builds; the
    // 1.25M-transition sweeps still hammer the pool for ~90 rounds.
    let solver = DiscountedValueIteration {
        epsilon: 1e-4,
        ..DiscountedValueIteration::new(0.9)
    };
    let reference = solver
        .clone()
        .with_parallelism(SolverParallelism::serial())
        .solve(model.mdp(), &rewards)
        .unwrap();
    let parallel = solver
        .with_parallelism(SolverParallelism::threads(4))
        .solve(model.mdp(), &rewards)
        .unwrap();
    assert_eq!(reference.iterations, parallel.iterations);
    assert_eq!(reference.strategy, parallel.strategy);
    assert_bits_eq("d3f2 values", &reference.values, &parallel.values);
}
