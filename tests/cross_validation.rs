//! Cross-validation between the formal MDP analysis (`selfish-mining`) and the
//! Monte-Carlo blockchain simulator (`sm-chain`): the two implementations are
//! fully independent (exact solver vs. explicit block tree with an RNG), so
//! agreement on the measured relative revenue is strong evidence that both
//! encode the same system model.

use selfish_mining::baselines::honest_relative_revenue;
use selfish_mining::{
    available_actions, AnalysisProcedure, AttackParams, Phase, SelfishMiningModel, SmAction,
};
use sm_chain::{
    AdversaryAction, AdversaryView, HonestStrategy, SimulationConfig, Simulator, TableStrategy,
};

/// Replays the ε-optimal MDP strategy inside the simulator by translating
/// every MDP state in which it releases a fork into a [`TableStrategy`] entry.
fn table_from_mdp(model: &SelfishMiningModel, strategy: &sm_mdp::PositionalStrategy) -> TableStrategy {
    let params = model.params();
    let mut table = TableStrategy::new("mdp-optimal");
    for state_index in 0..model.num_states() {
        let state = model.state(state_index);
        if state.phase == Phase::Mining {
            continue;
        }
        let action = model.action(state_index, strategy.action(state_index));
        let view = AdversaryView {
            fork_lengths: (1..=params.depth)
                .map(|depth| {
                    (1..=params.forks_per_block)
                        .map(|fork| state.fork_length(params, depth, fork) as usize)
                        .collect()
                })
                .collect(),
            owners: (1..params.depth)
                .map(|depth| match state.owner(depth) {
                    selfish_mining::Owner::Honest => sm_chain::MinerClass::Honest,
                    selfish_mining::Owner::Adversary => sm_chain::MinerClass::Adversary,
                })
                .collect(),
            pending_honest_block: state.phase == Phase::HonestFound,
            just_mined: state.phase == Phase::AdversaryFound,
        };
        let table_action = match action {
            SmAction::Mine => AdversaryAction::Wait,
            SmAction::Release { depth, fork, length } => AdversaryAction::Release {
                depth: *depth,
                fork: *fork,
                length: *length,
            },
        };
        table.insert(view, table_action);
    }
    table
}

/// The honest strategy's empirical relative revenue matches its analytic value
/// `p` in the simulator.
#[test]
fn simulator_reproduces_honest_share() {
    for p in [0.2, 0.35] {
        let config = SimulationConfig {
            p,
            gamma: 0.5,
            depth: 2,
            forks_per_block: 1,
            max_fork_length: 4,
            steps: 150_000,
            seed: 7,
        };
        let report = Simulator::new(config).run(&mut HonestStrategy);
        let analytic = honest_relative_revenue(p).unwrap();
        assert!(
            (report.relative_revenue() - analytic).abs() < 0.02,
            "p={p}: simulated {} vs analytic {analytic}",
            report.relative_revenue()
        );
    }
}

/// Replaying the MDP-optimal strategy in the simulator yields an empirical
/// relative revenue close to the exact value computed by the analysis.
#[test]
fn simulator_matches_mdp_value_for_optimal_strategy() {
    let p = 0.3;
    let gamma = 0.5;
    let params = AttackParams::new(p, gamma, 2, 1, 4).unwrap();
    let model = SelfishMiningModel::build(&params).unwrap();
    let result = AnalysisProcedure::with_epsilon(1e-3)
        .solve_dinkelbach(&model)
        .unwrap();

    let mut strategy = table_from_mdp(&model, &result.strategy);
    assert!(!strategy.is_empty(), "the optimal strategy must act somewhere");

    // Average a few independent runs to keep the Monte-Carlo error well below
    // the comparison tolerance.
    let mut revenues = Vec::new();
    for seed in [99, 7_315, 2_024_061_5] {
        let config = SimulationConfig {
            p,
            gamma,
            depth: 2,
            forks_per_block: 1,
            max_fork_length: 4,
            steps: 400_000,
            seed,
        };
        let report = Simulator::new(config).run(&mut strategy);
        revenues.push(report.relative_revenue());
    }
    let mean = revenues.iter().sum::<f64>() / revenues.len() as f64;
    assert!(
        (mean - result.strategy_revenue).abs() < 0.03,
        "simulated {revenues:?} (mean {mean}) vs exact {}",
        result.strategy_revenue
    );
    // And the replayed optimal strategy clearly beats the honest share in the
    // simulator as well.
    assert!(mean > p + 0.01);
}

/// The structured transition function and the model builder agree on which
/// actions exist: every action of every MDP state corresponds to one entry of
/// `available_actions`.
#[test]
fn model_action_lists_match_transition_function() {
    let params = AttackParams::new(0.25, 0.75, 2, 2, 3).unwrap();
    let model = SelfishMiningModel::build(&params).unwrap();
    for state_index in 0..model.num_states() {
        let expected = available_actions(&params, model.state(state_index));
        assert_eq!(model.actions_of(state_index), expected.as_slice());
        assert_eq!(model.mdp().num_actions(state_index), expected.len());
    }
}
