//! Cross-validation between the formal MDP analysis (`selfish-mining`) and the
//! Monte-Carlo blockchain simulator (`sm-chain`): the two implementations are
//! fully independent (exact solver vs. explicit block tree with an RNG), so
//! agreement on the measured relative revenue is strong evidence that both
//! encode the same system model.

use selfish_mining::baselines::honest_relative_revenue;
use selfish_mining::{
    available_actions, AnalysisProcedure, AttackParams, SelfishMiningModel, StrategyExport,
};
use sm_chain::{HonestStrategy, SimulationConfig, Simulator, UnknownViewPolicy};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The honest strategy's empirical relative revenue matches its analytic value
/// `p` in the simulator.
#[test]
fn simulator_reproduces_honest_share() {
    for p in [0.2, 0.35] {
        let config = SimulationConfig {
            p,
            steps: 150_000,
            seed: 7,
            ..SimulationConfig::default()
        };
        let report = Simulator::new(config).run(&mut HonestStrategy);
        let analytic = honest_relative_revenue(p).unwrap();
        assert!(
            (report.relative_revenue() - analytic).abs() < 0.02,
            "p={p}: simulated {} vs analytic {analytic}",
            report.relative_revenue()
        );
    }
}

/// Replaying the MDP-optimal strategy in the simulator yields an empirical
/// relative revenue close to the exact value computed by the analysis.
#[test]
fn simulator_matches_mdp_value_for_optimal_strategy() {
    let p = 0.3;
    let gamma = 0.5;
    let params = AttackParams::new(p, gamma, 2, 1, 4).unwrap();
    let model = SelfishMiningModel::build(&params).unwrap();
    let result = AnalysisProcedure::with_epsilon(1e-3)
        .solve_dinkelbach(&model)
        .unwrap();

    // The export is the production API the conformance subsystem uses; the
    // strict policy certifies that the MDP covers every view the simulator
    // reaches in these runs.
    let mut strategy = StrategyExport::new(&model)
        .table(&result.strategy, UnknownViewPolicy::Panic)
        .expect("strategy export succeeds");
    assert!(
        !strategy.is_empty(),
        "the optimal strategy must act somewhere"
    );

    // Average a few independent runs to keep the Monte-Carlo error well below
    // the comparison tolerance.
    let mut revenues = Vec::new();
    for seed in [99, 7_315, 20_240_615] {
        let config = SimulationConfig {
            p,
            gamma,
            steps: 400_000,
            seed,
            ..SimulationConfig::default()
        };
        let report = Simulator::new(config).run(&mut strategy);
        revenues.push(report.relative_revenue());
    }
    let mean = revenues.iter().sum::<f64>() / revenues.len() as f64;
    assert!(
        (mean - result.strategy_revenue).abs() < 0.03,
        "simulated {revenues:?} (mean {mean}) vs exact {}",
        result.strategy_revenue
    );
    // And the replayed optimal strategy clearly beats the honest share in the
    // simulator as well.
    assert!(mean > p + 0.01);
}

/// The structured transition function and the model builder agree on which
/// actions exist: every action of every MDP state corresponds to one entry of
/// `available_actions`.
#[test]
fn model_action_lists_match_transition_function() {
    let params = AttackParams::new(0.25, 0.75, 2, 2, 3).unwrap();
    let model = SelfishMiningModel::build(&params).unwrap();
    for state_index in 0..model.num_states() {
        let expected = available_actions(&params, model.state(state_index));
        assert_eq!(model.actions_of(state_index), expected.as_slice());
        assert_eq!(model.mdp().num_actions(state_index), expected.len());
    }
}

// ---------------------------------------------------------------------------
// Representation equivalence: legacy nested builder path vs. the CSR arena.
// ---------------------------------------------------------------------------

/// Raw per-state action lists describing a small MDP: `(name, transitions)`.
type ModelDescription = Vec<Vec<(String, Vec<(usize, f64)>)>>;

/// One random small MDP described as raw per-state action lists.
/// Every action carries a guaranteed transition back to state 0, which makes
/// every induced chain unichain — the precondition of the LP solver.
fn random_model_description(rng: &mut StdRng) -> ModelDescription {
    let num_states = rng.gen_range(2usize..6); // 2..=5
    let mut states = Vec::with_capacity(num_states);
    for _ in 0..num_states {
        let num_actions = rng.gen_range(1usize..4); // 1..=3
        let mut actions = Vec::with_capacity(num_actions);
        for a in 0..num_actions {
            // 1..=3 targets; random weights, normalised so that a fixed 0.3
            // share always flows back to state 0.
            let num_targets = rng.gen_range(1usize..1 + 3.min(num_states));
            let mut weights: Vec<(usize, f64)> = (0..num_targets)
                .map(|_| (rng.gen_range(0..num_states), 0.1 + rng.gen_range(0.0..1.0)))
                .collect();
            let total: f64 = weights.iter().map(|&(_, w)| w).sum();
            for entry in &mut weights {
                entry.1 = entry.1 / total * 0.7;
            }
            weights.push((0, 0.3));
            actions.push((format!("a{a}"), weights));
        }
        states.push(actions);
    }
    states
}

/// Builds the description through the legacy random-access `MdpBuilder`.
fn build_nested(description: &ModelDescription) -> sm_mdp::Mdp {
    let mut builder = sm_mdp::MdpBuilder::new(description.len());
    for (state, actions) in description.iter().enumerate() {
        for (name, transitions) in actions {
            builder
                .add_action(state, name.clone(), transitions.clone())
                .unwrap();
        }
    }
    builder.build(0).unwrap()
}

/// Builds the same description by streaming it into the CSR arena builder.
fn build_arena(description: &ModelDescription) -> sm_mdp::Mdp {
    let mut builder = sm_mdp::CsrMdpBuilder::new();
    for actions in description {
        builder.begin_state();
        for (name, transitions) in actions {
            builder.add_action(name, transitions).unwrap();
        }
    }
    builder.finish(0).unwrap()
}

/// Property: on random small MDPs, the legacy nested builder path and the
/// streaming CSR arena path produce *identical* models (same arena layout,
/// probabilities and interned names), and VI, PI and LP each report the same
/// optimal gain and the same strategy on both.
#[test]
fn nested_and_csr_arena_builders_are_equivalent() {
    use sm_mdp::{MeanPayoffMethod, MeanPayoffSolver, TransitionRewards};

    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    for case in 0..25 {
        let description = random_model_description(&mut rng);
        let nested = build_nested(&description);
        let arena = build_arena(&description);
        assert_eq!(
            nested, arena,
            "case {case}: builders disagree on the arena for {description:?}"
        );

        // A deterministic reward function of the indices is identical across
        // both models by construction.
        let reward_seed = rng.next_u64() % 97;
        let reward_fn = |s: usize, a: usize, t: usize| {
            ((s * 31 + a * 17 + t * 7 + reward_seed as usize) % 13) as f64 / 13.0 - 0.4
        };
        let r_nested = TransitionRewards::from_fn(&nested, reward_fn);
        let r_arena = TransitionRewards::from_fn(&arena, reward_fn);
        assert_eq!(r_nested.values(), r_arena.values(), "case {case}");
        // Buffers built against either representation align with both.
        assert!(r_nested.matches(&arena) && r_arena.matches(&nested));

        for method in [
            MeanPayoffMethod::ValueIteration { epsilon: 1e-9 },
            MeanPayoffMethod::PolicyIteration,
            MeanPayoffMethod::LinearProgramming,
        ] {
            let solver = MeanPayoffSolver::new(method.clone());
            let a = solver.solve(&nested, &r_nested).unwrap();
            let b = solver.solve(&arena, &r_arena).unwrap();
            assert_eq!(
                a.strategy, b.strategy,
                "case {case}: {method:?} strategies diverge"
            );
            assert!(
                (a.gain - b.gain).abs() < 1e-12,
                "case {case}: {method:?} gains diverge: {} vs {}",
                a.gain,
                b.gain
            );
        }
    }
}

/// The model builder's streaming path and the identical-layout guarantee
/// carry over to the real selfish-mining model: rebuilding the discovered
/// MDP through the legacy builder reproduces the streamed arena exactly.
#[test]
fn selfish_mining_model_streams_into_identical_arena() {
    let params = AttackParams::new(0.3, 0.5, 2, 1, 3).unwrap();
    let model = SelfishMiningModel::build(&params).unwrap();
    let mdp = model.mdp();

    let mut rebuilt = sm_mdp::MdpBuilder::new(mdp.num_states());
    for state in 0..mdp.num_states() {
        for action in 0..mdp.num_actions(state) {
            let transitions: Vec<(usize, f64)> = mdp.transitions(state, action).collect();
            rebuilt
                .add_action(state, mdp.action_name(state, action), transitions)
                .unwrap();
        }
    }
    let rebuilt = rebuilt.build(mdp.initial_state()).unwrap();
    assert_eq!(mdp, &rebuilt);
    assert_eq!(
        mdp.csr().layout().row_ptr(),
        rebuilt.csr().layout().row_ptr()
    );
    assert_eq!(mdp.csr().layout().col(), rebuilt.csr().layout().col());
}
