//! Property-based tests over the workspace's core invariants, sweeping
//! randomly generated parameters and models.
//!
//! The random inputs come from the workspace's deterministic seeded PRNG
//! (the in-tree `rand` shim) instead of an external property-testing
//! framework, so the suite runs in offline environments; every case is
//! reproducible from the fixed seeds. Case counts match the former proptest
//! configuration (24 per property).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfish_mining::{available_actions, successors, AttackParams, SelfishMiningModel};
use sm_mdp::{MdpBuilder, MeanPayoffMethod, MeanPayoffSolver, TransitionRewards};

/// A varied grid of small attack parameter sets (the shim for the former
/// proptest generator; 24 cases like the original configuration).
fn attack_params_grid() -> Vec<AttackParams> {
    let mut rng = StdRng::seed_from_u64(20240729);
    let mut cases = Vec::new();
    for depth in 1..=2usize {
        for forks in 1..=2usize {
            for max_len in 1..=3usize {
                for _ in 0..2 {
                    let p = rng.gen_range(0.0..0.9);
                    let gamma = rng.gen_range(0.0..1.0);
                    cases.push(
                        AttackParams::new(p, gamma, depth, forks, max_len)
                            .expect("ranges are valid"),
                    );
                }
            }
        }
    }
    cases
}

/// Every action of every reachable state has a transition distribution
/// summing to 1 with consistent successor states.
#[test]
fn transition_distributions_are_stochastic() {
    for params in attack_params_grid() {
        let model = SelfishMiningModel::build(&params).unwrap();
        for index in 0..model.num_states() {
            let state = model.state(index);
            for action in available_actions(&params, state) {
                let outcomes = successors(&params, state, &action).unwrap();
                let total: f64 = outcomes.iter().map(|o| o.probability).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "action {action} sums to {total}"
                );
                for outcome in &outcomes {
                    assert!(outcome.state.is_consistent(&params));
                    assert!(outcome.probability > 0.0);
                }
            }
        }
    }
}

/// The optimal mean payoff MP*_beta is monotonically non-increasing in
/// beta (the monotonicity that makes Algorithm 1's binary search sound).
#[test]
fn optimal_mean_payoff_is_monotone_in_beta() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..24 {
        let p = rng.gen_range(0.05..0.45);
        let gamma = rng.gen_range(0.0..1.0);
        let params = AttackParams::new(p, gamma, 2, 1, 3).unwrap();
        let model = SelfishMiningModel::build(&params).unwrap();
        let solver = MeanPayoffSolver::new(MeanPayoffMethod::ValueIteration { epsilon: 1e-7 });
        let mut previous = f64::INFINITY;
        for beta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let rewards = model.beta_rewards(beta).unwrap();
            let gain = solver.solve(model.mdp(), &rewards).unwrap().gain;
            assert!(
                gain <= previous + 1e-5,
                "MP*_beta increased: p={p}, gamma={gamma}, beta={beta}, {gain} > {previous}"
            );
            previous = gain;
        }
    }
}

/// The ERRev of any fixed strategy lies in [0, 1], and the optimal one is
/// at least as large as the always-mine strategy's.
#[test]
fn expected_relative_revenue_is_well_formed() {
    for params in attack_params_grid() {
        let model = SelfishMiningModel::build(&params).unwrap();
        let always_mine = sm_mdp::PositionalStrategy::uniform_first_action(model.num_states());
        let revenue = model.expected_relative_revenue(&always_mine).unwrap();
        assert!(
            (0.0..=1.0).contains(&revenue),
            "revenue {revenue} out of range for {params:?}"
        );
    }
}

/// Across the whole random parameter grid, instantiating the parametric
/// arena reproduces the direct builder: identical arena (bit for bit) for
/// interior parameters, and a validating superset topology at the masked
/// edges.
#[test]
fn parametric_instantiation_matches_fresh_build_on_the_grid() {
    for params in attack_params_grid() {
        let fresh = SelfishMiningModel::build(&params).unwrap();
        let family = selfish_mining::ParametricModel::build(
            params.depth,
            params.forks_per_block,
            params.max_fork_length,
        )
        .unwrap();
        let instantiated = family.instantiate(params.p, params.gamma).unwrap();
        instantiated.mdp().validate().unwrap();
        let interior = params.p > 0.0 && params.p < 1.0 && params.gamma > 0.0 && params.gamma < 1.0;
        if interior {
            assert_eq!(instantiated.mdp(), fresh.mdp(), "params {params:?}");
            assert_eq!(
                instantiated.adversary_rewards().values(),
                fresh.adversary_rewards().values()
            );
            assert_eq!(
                instantiated.honest_rewards().values(),
                fresh.honest_rewards().values()
            );
        } else {
            assert!(instantiated.num_states() >= fresh.num_states());
        }
    }
}

/// On random small MDPs the three mean-payoff solvers agree.
#[test]
fn mean_payoff_solvers_agree_on_random_mdps() {
    let mut rng = StdRng::seed_from_u64(123456789);
    for case in 0..24 {
        // A 3-state MDP with 2 actions per state and deterministic-or-split
        // transitions derived from the generated parameters.
        let split = rng.gen_range(0.1..0.9);
        let seed_rewards: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut builder = MdpBuilder::new(3);
        for state in 0..3usize {
            builder
                .add_action(state, "next", vec![((state + 1) % 3, 1.0)])
                .unwrap();
            builder
                .add_action(
                    state,
                    "split",
                    vec![(state, split), ((state + 2) % 3, 1.0 - split)],
                )
                .unwrap();
        }
        let mdp = builder.build(0).unwrap();
        let rewards = TransitionRewards::from_fn(&mdp, |s, a, _| seed_rewards[s * 2 + a]);
        let vi = MeanPayoffSolver::new(MeanPayoffMethod::ValueIteration { epsilon: 1e-9 })
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        let pi = MeanPayoffSolver::new(MeanPayoffMethod::PolicyIteration)
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        let lp = MeanPayoffSolver::new(MeanPayoffMethod::LinearProgramming)
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        assert!((vi - pi).abs() < 1e-5, "case {case}: vi {vi} vs pi {pi}");
        assert!((lp - pi).abs() < 1e-5, "case {case}: lp {lp} vs pi {pi}");
    }
}
