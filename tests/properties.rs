//! Property-based tests over the workspace's core invariants, using randomly
//! generated parameters and models.

use proptest::prelude::*;
use selfish_mining::{available_actions, successors, AttackParams, SelfishMiningModel};
use sm_mdp::{MdpBuilder, MeanPayoffMethod, MeanPayoffSolver, TransitionRewards};

/// Strategy generating small but varied attack parameter sets.
fn attack_params() -> impl Strategy<Value = AttackParams> {
    (
        0.0f64..=0.9,
        0.0f64..=1.0,
        1usize..=2,
        1usize..=2,
        1usize..=3,
    )
        .prop_map(|(p, gamma, depth, forks, max_len)| {
            AttackParams::new(p, gamma, depth, forks, max_len).expect("ranges are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every action of every reachable state has a transition distribution
    /// summing to 1 with consistent successor states.
    #[test]
    fn transition_distributions_are_stochastic(params in attack_params()) {
        let model = SelfishMiningModel::build(&params).unwrap();
        for index in 0..model.num_states() {
            let state = model.state(index);
            for action in available_actions(&params, state) {
                let outcomes = successors(&params, state, &action).unwrap();
                let total: f64 = outcomes.iter().map(|o| o.probability).sum();
                prop_assert!((total - 1.0).abs() < 1e-9, "action {action} sums to {total}");
                for outcome in &outcomes {
                    prop_assert!(outcome.state.is_consistent(&params));
                    prop_assert!(outcome.probability > 0.0);
                }
            }
        }
    }

    /// The optimal mean payoff MP*_beta is monotonically non-increasing in
    /// beta (the monotonicity that makes Algorithm 1's binary search sound).
    #[test]
    fn optimal_mean_payoff_is_monotone_in_beta(
        p in 0.05f64..=0.45,
        gamma in 0.0f64..=1.0,
    ) {
        let params = AttackParams::new(p, gamma, 2, 1, 3).unwrap();
        let model = SelfishMiningModel::build(&params).unwrap();
        let solver = MeanPayoffSolver::new(MeanPayoffMethod::ValueIteration { epsilon: 1e-7 });
        let mut previous = f64::INFINITY;
        for beta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let rewards = model.beta_rewards(beta).unwrap();
            let gain = solver.solve(model.mdp(), &rewards).unwrap().gain;
            prop_assert!(
                gain <= previous + 1e-5,
                "MP*_beta increased: beta={beta}, {gain} > {previous}"
            );
            previous = gain;
        }
    }

    /// The ERRev of any fixed strategy lies in [0, 1], and the optimal one is
    /// at least as large as the always-mine strategy's.
    #[test]
    fn expected_relative_revenue_is_well_formed(params in attack_params()) {
        let model = SelfishMiningModel::build(&params).unwrap();
        let always_mine = sm_mdp::PositionalStrategy::uniform_first_action(model.num_states());
        let revenue = model.expected_relative_revenue(&always_mine).unwrap();
        prop_assert!((0.0..=1.0).contains(&revenue), "revenue {revenue} out of range");
    }

    /// On random small MDPs the three mean-payoff solvers agree.
    #[test]
    fn mean_payoff_solvers_agree_on_random_mdps(
        seed_rewards in proptest::collection::vec(-1.0f64..=1.0, 12),
        split in 0.1f64..=0.9,
    ) {
        // A 3-state MDP with 2 actions per state and deterministic-or-split
        // transitions derived from the generated parameters.
        let mut builder = MdpBuilder::new(3);
        for state in 0..3usize {
            builder
                .add_action(state, "next", vec![((state + 1) % 3, 1.0)])
                .unwrap();
            builder
                .add_action(
                    state,
                    "split",
                    vec![(state, split), ((state + 2) % 3, 1.0 - split)],
                )
                .unwrap();
        }
        let mdp = builder.build(0).unwrap();
        let rewards = TransitionRewards::from_fn(&mdp, |s, a, _| seed_rewards[s * 2 + a]);
        let vi = MeanPayoffSolver::new(MeanPayoffMethod::ValueIteration { epsilon: 1e-9 })
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        let pi = MeanPayoffSolver::new(MeanPayoffMethod::PolicyIteration)
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        let lp = MeanPayoffSolver::new(MeanPayoffMethod::LinearProgramming)
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        prop_assert!((vi - pi).abs() < 1e-5, "vi {vi} vs pi {pi}");
        prop_assert!((lp - pi).abs() < 1e-5, "lp {lp} vs pi {pi}");
    }
}
