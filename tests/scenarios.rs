//! Properties of the pluggable attack-scenario subsystem: restriction
//! dominance of the stubborn family, the honest-mining sanity anchor, and
//! end-to-end conformance of scenario strategies in the simulator.

use selfish_mining::experiments::attack_curve_certified;
use selfish_mining::{
    AttackParams, AttackScenario, ParametricModel, SelfishMiningModel, StrategyExport,
};
use selfish_mining_repro::conformance::{certify_point, ConformanceSettings};

/// Slack absorbing solver float noise when comparing two certified brackets.
const SLACK: f64 = 1e-9;

fn stubborn_scenarios() -> Vec<AttackScenario> {
    vec![
        AttackScenario::LeadStubborn,
        AttackScenario::EqualForkStubborn,
        AttackScenario::TrailStubborn { lag: 0 },
        AttackScenario::TrailStubborn { lag: 1 },
    ]
}

/// Property: a stubborn scenario is an action restriction of the optimal
/// model, so its certified gain never exceeds the optimal scenario's
/// certified gain — `β_low(scenario) ≤ β_up(optimal)` at every grid point.
#[test]
fn stubborn_certified_gains_are_dominated_by_the_optimal_scenario() {
    let epsilon = 5e-3;
    let ps = [0.15, 0.3, 0.4];
    let gammas = [0.0, 0.6, 1.0];
    let optimal_family = ParametricModel::build(2, 1, 3).unwrap();
    let stubborn_families: Vec<ParametricModel> = stubborn_scenarios()
        .into_iter()
        .map(|scenario| ParametricModel::build_scenario(scenario, 2, 1, 3).unwrap())
        .collect();
    for &gamma in &gammas {
        let optimal = attack_curve_certified(&optimal_family, gamma, &ps, epsilon, true).unwrap();
        for family in &stubborn_families {
            assert!(family.scenario().is_action_restriction());
            let restricted = attack_curve_certified(family, gamma, &ps, epsilon, true).unwrap();
            for (r, o) in restricted.iter().zip(&optimal) {
                assert_eq!(r.p, o.p);
                assert_eq!(r.scenario, family.scenario());
                assert!(
                    r.beta_low <= o.beta_up + SLACK,
                    "{} certifies [{}, {}] above optimal [{}, {}] at (p={}, gamma={gamma})",
                    family.scenario(),
                    r.beta_low,
                    r.beta_up,
                    o.beta_low,
                    o.beta_up,
                    r.p
                );
                // Restricted revenue stays a valid revenue.
                assert!((0.0..=1.0).contains(&r.strategy_revenue));
            }
        }
    }
}

/// Property: the honest-mining scenario certifies the proportional share
/// `ERRev = p` within the analysis ε across a seeded `(p, γ)` grid — the
/// mining restriction (`σ = 1`) plus the forced immediate release make the
/// adversary exactly an honest miner with resource `p`.
#[test]
fn honest_mining_certifies_the_proportional_share() {
    let epsilon = 2e-3;
    let ps = [0.0, 0.1, 0.3, 0.45];
    let gammas = [0.0, 0.5, 1.0];
    for (depth, forks) in [(1, 1), (2, 1), (2, 2)] {
        let family =
            ParametricModel::build_scenario(AttackScenario::HonestMining, depth, forks, 3).unwrap();
        for &gamma in &gammas {
            let solves = attack_curve_certified(&family, gamma, &ps, epsilon, true).unwrap();
            for solve in &solves {
                assert!(
                    (solve.strategy_revenue - solve.p).abs() <= epsilon,
                    "honest-mining (d={depth}, f={forks}) certifies {} instead of p = {} at gamma={gamma}",
                    solve.strategy_revenue,
                    solve.p
                );
                assert!(solve.beta_low <= solve.p + epsilon + SLACK);
                assert!(solve.beta_up >= solve.p - epsilon - SLACK);
            }
        }
    }
}

/// The honest-mining state space is the degenerate chain one expects: no
/// state ever holds more than one private block, and the model stays tiny.
#[test]
fn honest_mining_state_space_is_degenerate() {
    let params = AttackParams::new(0.3, 0.5, 3, 2, 4).unwrap();
    let model = SelfishMiningModel::build_scenario(&params, AttackScenario::HonestMining).unwrap();
    for s in 0..model.num_states() {
        assert!(
            model.state(s).total_private_blocks() <= 1,
            "honest state {} withholds blocks",
            model.state(s)
        );
    }
    // 2^(d-1) owner vectors × the three phases bound the honest chain.
    assert!(model.num_states() <= 3 * (1 << (params.depth - 1)));
}

/// Every stubborn scenario's reachable states embed into the optimal
/// scenario's reachable set (restriction never invents states).
#[test]
fn stubborn_reachable_states_embed_into_the_optimal_space() {
    let params = AttackParams::new(0.3, 0.5, 2, 2, 3).unwrap();
    let optimal = SelfishMiningModel::build(&params).unwrap();
    let optimal_states: std::collections::HashSet<_> = (0..optimal.num_states())
        .map(|s| optimal.state(s).clone())
        .collect();
    for scenario in stubborn_scenarios() {
        let restricted = SelfishMiningModel::build_scenario(&params, scenario).unwrap();
        for s in 0..restricted.num_states() {
            assert!(
                optimal_states.contains(restricted.state(s)),
                "{scenario} reaches {} which the optimal model does not",
                restricted.state(s)
            );
        }
    }
}

/// End-to-end conformance of a non-optimal scenario: the honest-mining
/// strategy replayed in the simulator (tip-only mining regime) witnesses its
/// certificate, with the estimate centred on `p`.
#[test]
fn honest_mining_conforms_in_the_simulator() {
    let family = ParametricModel::build_scenario(AttackScenario::HonestMining, 2, 1, 4).unwrap();
    let solves = attack_curve_certified(&family, 0.5, &[0.3], 2e-3, true).unwrap();
    let settings = ConformanceSettings {
        steps: 30_000,
        max_replicas: 24,
        ..ConformanceSettings::default()
    };
    let point =
        certify_point(&StrategyExport::from_family(&family), &solves[0], &settings).unwrap();
    assert_eq!(point.scenario, "honest-mining");
    assert!(point.conforms(), "honest-mining CI misses p: {point:?}");
    assert!(point.sources_agree(), "sources disagree: {point:?}");
    for estimate in &point.estimates {
        assert!(
            (estimate.mean - 0.3).abs() <= estimate.half_width.max(5e-3),
            "{}: mean {} should be near p = 0.3",
            estimate.backend,
            estimate.mean
        );
    }
}

/// End-to-end conformance of a stubborn scenario: the restricted ε-optimal
/// strategy replayed in the (unrestricted-mining) simulator witnesses the
/// restricted certificate.
#[test]
fn lead_stubborn_conforms_in_the_simulator() {
    let family = ParametricModel::build_scenario(AttackScenario::LeadStubborn, 2, 1, 4).unwrap();
    let solves = attack_curve_certified(&family, 0.5, &[0.35], 5e-3, true).unwrap();
    let settings = ConformanceSettings {
        steps: 30_000,
        max_replicas: 24,
        ..ConformanceSettings::default()
    };
    let point =
        certify_point(&StrategyExport::from_family(&family), &solves[0], &settings).unwrap();
    assert_eq!(point.scenario, "lead-stubborn");
    assert!(point.conforms(), "lead-stubborn CI misses: {point:?}");
    assert!(point.sources_agree(), "sources disagree: {point:?}");
}
