//! Determinism and cache-correctness suite for the certified-analysis query
//! service: every certified interval must be **bit-identical** no matter
//! how it was reached — cold cache, warm cache, coalesced with concurrent
//! duplicates, any worker count, or recomputed after eviction. The service
//! guarantees this by construction (answers are pure functions of the
//! rounded query via the canonical anchor lattice); this suite is the
//! regression net around that construction.

use selfish_mining_repro::selfish_mining::ConsensusBackend;
use selfish_mining_repro::service::{Answer, Query, Service, ServiceConfig, ServiceError};

fn config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        ..ServiceConfig::default()
    }
}

fn service(workers: usize) -> Service {
    Service::new(config(workers)).expect("default-based config is valid")
}

/// A small mixed batch: two topologies, two γ, two consensus backends, on-
/// and off-lattice `p`, one duplicate pair, cheap enough for CI.
fn mixed_batch() -> Vec<Query> {
    let base = Query {
        depth: 1,
        forks_per_block: 1,
        epsilon: 5e-3,
        ..Query::default()
    };
    vec![
        Query { p: 0.1, ..base },
        Query {
            p: 0.1,
            backend: ConsensusBackend::Vdf,
            ..base
        }, // first point again, on its own per-backend curve
        Query { p: 0.137, ..base },
        Query {
            p: 0.2,
            gamma: 0.25,
            ..base
        },
        Query {
            p: 0.25,
            depth: 2,
            ..base
        },
        Query { p: 0.1, ..base }, // duplicate of the first
        Query {
            p: 0.212,
            depth: 2,
            ..base
        },
    ]
}

fn intervals(results: &[Result<Answer, ServiceError>]) -> Vec<(f64, f64, f64)> {
    results
        .iter()
        .map(|result| {
            let answer = result.as_ref().expect("batch queries are valid");
            (
                answer.interval.beta_low,
                answer.interval.beta_up,
                answer.interval.strategy_revenue,
            )
        })
        .collect()
}

#[test]
fn batches_are_bit_identical_across_worker_counts() {
    let batch = mixed_batch();
    let serial = intervals(&service(1).answer_batch(&batch));
    let four = intervals(&service(4).answer_batch(&batch));
    let eight = intervals(&service(8).answer_batch(&batch));
    assert_eq!(serial, four, "4-worker batch must match serial");
    assert_eq!(serial, eight, "8-worker batch must match serial");
}

#[test]
fn warm_answers_are_bit_identical_to_cold_answers() {
    let batch = mixed_batch();
    // Cold: every query on its own fresh service.
    let cold: Vec<_> = batch
        .iter()
        .map(|query| service(1).answer(query).expect("valid query").interval)
        .collect();
    // Warm: the same queries through one long-lived service, twice.
    let shared = service(1);
    let first: Vec<_> = batch
        .iter()
        .map(|query| shared.answer(query).expect("valid query").interval)
        .collect();
    let second: Vec<_> = batch
        .iter()
        .map(|query| shared.answer(query).expect("valid query").interval)
        .collect();
    assert_eq!(cold, first, "warm-start chain must not change answers");
    assert_eq!(cold, second, "memoized answers must echo the solved ones");
    // The second pass is all cache hits.
    assert!(shared.stats().cache_hits >= batch.len() as u64);
}

#[test]
fn concurrent_duplicates_coalesce_into_one_solve() {
    let service = service(4);
    let query = Query {
        depth: 2,
        forks_per_block: 1,
        p: 0.213,
        epsilon: 5e-3,
        ..Query::default()
    };
    let batch = vec![query; 8];
    let results = service.answer_batch(&batch);
    let answers: Vec<_> = results
        .into_iter()
        .map(|result| result.expect("valid query"))
        .collect();
    let reference = &answers.first().expect("non-empty batch").interval;
    for answer in &answers {
        assert_eq!(&answer.interval, reference);
    }
    let stats = service.stats();
    // One thread advanced the chain (anchors 0..0.20) and probed once; the
    // other seven queued behind it and were served from the memo.
    assert_eq!(stats.probes, 1, "duplicates must not re-probe");
    assert_eq!(stats.anchor_advances, 5, "duplicates must not re-advance");
    assert_eq!(stats.cache_hits, 7);
    assert_eq!(stats.arena_builds, 1, "duplicates must share the arena");
    // With more queries than workers at least one duplicate demonstrably
    // queued behind the solver; under contention-free schedules this can
    // legitimately be zero, so only bound it.
    assert!(stats.coalesced <= 7);
}

#[test]
fn eviction_under_memory_pressure_never_changes_answers() {
    let tiny = Service::new(ServiceConfig {
        max_arenas: 1,
        max_curves: 1,
        max_memo_points: 1,
        workers: 1,
        ..ServiceConfig::default()
    })
    .expect("tiny caps are valid");
    let roomy = service(1);
    let batch = mixed_batch();
    // Two passes so the second run re-answers queries whose curves the
    // first pass evicted (the batch alternates topologies and γ).
    let mut squeezed = intervals(&tiny.answer_batch(&batch));
    squeezed.extend(intervals(&tiny.answer_batch(&batch)));
    let mut reference = intervals(&roomy.answer_batch(&batch));
    reference.extend(intervals(&roomy.answer_batch(&batch)));
    assert_eq!(
        squeezed, reference,
        "evicted state must rebuild identically"
    );
    let stats = tiny.stats();
    assert!(
        stats.curve_evictions > 0 && stats.arena_evictions > 0,
        "caps of 1 must evict on this batch: {stats:?}"
    );
    assert!(tiny.cached_arenas() <= 1);
    assert!(tiny.cached_curves() <= 1);
    // The roomy service kept everything resident.
    assert_eq!(roomy.stats().curve_evictions, 0);
    assert!(roomy.resident_arena_bytes() > 0);
}

#[test]
fn jsonl_transcripts_are_deterministic_across_budgets_and_cache_states() {
    use selfish_mining_repro::service::jsonl::serve;
    let script = concat!(
        "{\"p\": 0.1, \"d\": 1, \"f\": 1, \"epsilon\": 0.005}\n",
        "{\"p\": 0.137, \"d\": 1, \"f\": 1, \"epsilon\": 0.005}\n",
        "{\"p\": 0.1, \"d\": 1, \"f\": 1, \"epsilon\": 0.005}\n",
        "{\"op\": \"stats\"}\n",
    );
    let transcript = |workers: usize| {
        let service = service(workers);
        let mut output = Vec::new();
        serve(&service, script.as_bytes(), &mut output).expect("memory i/o");
        String::from_utf8(output).expect("utf-8 responses")
    };
    let serial = transcript(1);
    assert_eq!(serial, transcript(4), "thread budget must not leak");
    assert_eq!(serial, transcript(8));
}
