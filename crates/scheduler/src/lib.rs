//! The workspace's shared scheduler for independent indexed jobs.
//!
//! Three subsystems fan deterministic, independent work items over scoped
//! worker pools: the Monte-Carlo estimator (replicas), the sweep engine
//! (curve jobs, conformance jobs) and the certified-analysis query service
//! (daemon query batches). They all share the two primitives in this crate —
//! historically a private module of `sm-conformance`, promoted to its own
//! crate so the batch and serving paths run the exact same scheduler:
//!
//! * [`run_indexed_jobs`] — workers drain an atomic index and results are
//!   collected **in job order**, so the output is identical for any worker
//!   count; only wall-clock time changes.
//! * [`run_budgeted_jobs`] — adds *nested budgeting* on top: the caller
//!   hands over one global thread budget, outer jobs are preferred while the
//!   queue is deep, and as the queue drains the left-over budget is granted
//!   to the running jobs as an intra-job thread allowance (which the sweep
//!   engine and the query service forward to the solvers' intra-solve
//!   parallelism). This fixes the historical short-queue behaviour where a
//!   2-job sweep on an 8-thread budget spawned 2 workers and left 6 cores
//!   idle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Resolves a configured worker count against a job count: `0` means
/// [`std::thread::available_parallelism`], and the result is clamped to
/// `[1, jobs]` so no idle threads are spawned.
pub fn effective_workers(configured: usize, jobs: usize) -> usize {
    let configured = if configured == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    };
    configured.clamp(1, jobs.max(1))
}

/// Runs jobs `0..count` and returns their results in job order, fanning them
/// over `workers` scoped threads (clamped to `[1, count]`; a single worker
/// runs inline without spawning).
///
/// # Panics
///
/// Propagates panics from `job` (a panicking job poisons its slot and the
/// collection phase re-panics).
pub fn run_indexed_jobs<T, F>(workers: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 {
        return (0..count).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let outcome = job(index);
                *slots[index].lock().expect("job slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("worker pool completed every job")
        })
        .collect()
}

/// Resolves a configured thread budget: `0` means
/// [`std::thread::available_parallelism`], anything else is taken as-is (at
/// least 1); the resolution convention is
/// [`selfish_mining::SolverParallelism`]'s, so the budget and the
/// intra-solve knob can never disagree on what "auto" means. Unlike
/// [`effective_workers`] the budget is **not** clamped to the job count —
/// budget beyond the number of jobs is handed to the jobs themselves as
/// intra-job allowance by [`run_budgeted_jobs`].
pub fn resolve_budget(configured: usize) -> usize {
    selfish_mining::SolverParallelism::threads(configured).thread_count()
}

/// Runs jobs `0..count` over a nested thread budget and returns their
/// results in job order.
///
/// At most `min(budget, count)` outer workers drain the job queue; each job
/// additionally receives an **intra-job thread allowance** `a ≥ 1` (the
/// second closure argument) such that the outer workers and the allowances
/// together stay within `budget`:
///
/// * while the queue is deep (at least as many unfinished jobs as outer
///   workers) every job gets `budget / outer` — outer parallelism is
///   preferred because it has no synchronisation cost;
/// * as the queue drains below the worker count, claims see fewer unfinished
///   jobs and the allowance grows, up to the whole budget for the final job —
///   the cores freed by retired workers are soaked up *inside* the remaining
///   solves.
///
/// An allowance is computed once, at claim time, from the number of
/// unfinished jobs; since a job claimed when `u` jobs were unfinished gets
/// at most `budget / min(outer, u)` threads and at most `min(outer, u)` jobs
/// run concurrently with it, the combined allowance stays within the budget
/// (up to integer rounding in the caller's favour).
///
/// The *scheduling* depends on timing, but the allowance is invisible in the
/// output by construction — every solver in this workspace is bit-identical
/// for any intra-solve thread count — so the returned vector is identical
/// for any budget, like [`run_indexed_jobs`].
///
/// # Panics
///
/// Propagates panics from `job` like [`run_indexed_jobs`].
pub fn run_budgeted_jobs<T, F>(budget: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let budget = budget.max(1);
    let outer = budget.clamp(1, count.max(1));
    if outer <= 1 {
        // Single outer lane: every job may use the whole budget.
        return (0..count).map(|index| job(index, budget)).collect();
    }
    let next = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..outer {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let unfinished = count - finished.load(Ordering::Relaxed).min(count);
                let concurrent = outer.min(unfinished).max(1);
                let allowance = (budget / concurrent).max(1);
                let outcome = job(index, allowance);
                *slots[index].lock().expect("job slot poisoned") = Some(outcome);
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("worker pool completed every job")
        })
        .collect()
}

/// Bounded-retry policy with exponential backoff, used by the grid
/// orchestrator's shard runner: attempt `k` (1-based) of a failed job is
/// retried after `backoff · 2^(k−1)`, capped at [`RetryPolicy::max_backoff`],
/// until [`RetryPolicy::max_attempts`] attempts have been spent.
///
/// The policy only shapes *when* work re-runs, never *what* it computes —
/// every job in this workspace is deterministic, so a retried job returns
/// the same bits as an uninterrupted one and the retry history is invisible
/// in the results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts a job may spend (first try included); clamped to at
    /// least 1 by [`run_with_retry`].
    pub max_attempts: usize,
    /// Backoff before the first retry; doubled per subsequent retry.
    pub backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 25 ms initial backoff, capped at one second — sized
    /// for transient local failures (I/O hiccups, injected test faults), not
    /// for waiting out a remote outage.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff slept before retry number `retry` (1-based):
    /// `backoff · 2^(retry−1)`, saturating, capped at
    /// [`RetryPolicy::max_backoff`].
    pub fn delay_before(&self, retry: usize) -> Duration {
        let exponent = u32::try_from(retry.saturating_sub(1)).unwrap_or(20).min(20);
        let factor = 1_u32 << exponent;
        self.backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

/// Runs `job` until it succeeds or the policy's attempt budget is spent,
/// sleeping the policy's backoff between attempts; returns the first success
/// or the *last* error. The closure receives the 0-based attempt number so
/// fault-injection harnesses can fail specific attempts deterministically.
///
/// # Errors
///
/// The last attempt's error when every attempt failed.
pub fn run_with_retry<T, E, F>(policy: &RetryPolicy, mut job: F) -> Result<T, E>
where
    F: FnMut(usize) -> Result<T, E>,
{
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match job(attempt) {
            Ok(value) => return Ok(value),
            Err(error) => {
                attempt += 1;
                if attempt >= attempts {
                    return Err(error);
                }
                let delay = policy.delay_before(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order_for_any_worker_count() {
        let reference: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [0, 1, 2, 8, 64] {
            assert_eq!(
                run_indexed_jobs(workers, 37, |i| i * i),
                reference,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn empty_job_lists_are_fine() {
        assert_eq!(run_indexed_jobs(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn effective_workers_resolves_and_clamps() {
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert_eq!(effective_workers(5, 0), 1);
    }

    #[test]
    fn budget_resolution_does_not_clamp_to_jobs() {
        assert!(resolve_budget(0) >= 1);
        assert_eq!(resolve_budget(8), 8);
        assert_eq!(resolve_budget(1), 1);
    }

    #[test]
    fn budgeted_jobs_return_in_order_for_any_budget() {
        let reference: Vec<usize> = (0..23).map(|i| i * 3).collect();
        for budget in [1, 2, 8, 64] {
            assert_eq!(
                run_budgeted_jobs(budget, 23, |i, _allowance| i * 3),
                reference,
                "budget = {budget}"
            );
        }
        assert_eq!(run_budgeted_jobs(4, 0, |i, _| i), Vec::<usize>::new());
    }

    #[test]
    fn short_queue_allowances_split_the_whole_budget() {
        // 2 jobs on an 8-thread budget: the first claim always sees both
        // jobs unfinished and gets 8 / 2 = 4 threads (the historical pool
        // gave it 1 and idled 6); the second gets 4 too when claimed
        // concurrently, or the full 8 if the first job already retired.
        let allowances = run_budgeted_jobs(8, 2, |_i, allowance| allowance);
        assert_eq!(allowances[0], 4);
        assert!(
            allowances[1] == 4 || allowances[1] == 8,
            "unexpected allowance {allowances:?}"
        );
        // 1 job gets everything.
        assert_eq!(run_budgeted_jobs(8, 1, |_i, a| a), vec![8]);
    }

    #[test]
    fn retry_returns_first_success_and_reports_attempt_numbers() {
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut seen = Vec::new();
        let outcome: Result<usize, &str> = run_with_retry(&policy, |attempt| {
            seen.push(attempt);
            if attempt < 2 {
                Err("transient")
            } else {
                Ok(attempt * 10)
            }
        });
        assert_eq!(outcome, Ok(20));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn retry_exhausts_the_budget_and_returns_the_last_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let outcome: Result<(), String> =
            run_with_retry(&policy, |attempt| Err(format!("attempt {attempt}")));
        assert_eq!(outcome, Err("attempt 2".to_string()));
        // A zero budget still runs the job once.
        let zero = RetryPolicy {
            max_attempts: 0,
            ..policy
        };
        let mut calls = 0;
        let _: Result<(), &str> = run_with_retry(&zero, |_| {
            calls += 1;
            Err("always")
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(policy.delay_before(1), Duration::from_millis(10));
        assert_eq!(policy.delay_before(2), Duration::from_millis(20));
        assert_eq!(policy.delay_before(3), Duration::from_millis(35));
        assert_eq!(policy.delay_before(60), Duration::from_millis(35));
    }

    #[test]
    fn deep_queue_prefers_outer_jobs_and_drains_into_allowances() {
        // With as many jobs as budget, every claim made while the queue is
        // full sees allowance 1; as jobs finish, later claims may see more —
        // but the combined in-flight allowance never exceeds the budget.
        let budget = 4;
        let allowances = run_budgeted_jobs(budget, 16, |_i, allowance| allowance);
        assert!(allowances.iter().all(|&a| (1..=budget).contains(&a)));
        assert!(
            allowances.iter().filter(|&&a| a == 1).count() >= 16 - budget,
            "most claims of a deep queue must prefer outer parallelism: {allowances:?}"
        );
    }
}
