//! The [`MarkovChain`] type: a validated row-stochastic transition structure.

use crate::{
    HittingAnalysis, MarkovError, StationaryDistribution, StationaryMethod,
    StronglyConnectedComponents, STOCHASTIC_TOLERANCE,
};
use sm_linalg::{CsrMatrix, Triplet};

/// A finite, discrete-time Markov chain stored as a sparse transition matrix.
///
/// Rows are validated on construction: every probability must be finite and
/// non-negative and every row must sum to 1 within [`STOCHASTIC_TOLERANCE`].
///
/// # Example
///
/// ```
/// use sm_markov::MarkovChain;
///
/// # fn main() -> Result<(), sm_markov::MarkovError> {
/// let chain = MarkovChain::from_rows(vec![
///     vec![(1, 1.0)],
///     vec![(0, 0.5), (1, 0.5)],
/// ])?;
/// assert_eq!(chain.num_states(), 2);
/// assert!(chain.is_irreducible());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    transitions: CsrMatrix,
}

impl MarkovChain {
    /// Builds a chain from per-state transition lists `(target, probability)`.
    ///
    /// # Errors
    ///
    /// Returns an error if any probability is invalid, any target state is out
    /// of range, a row does not sum to 1, or the chain is empty.
    pub fn from_rows(rows: Vec<Vec<(usize, f64)>>) -> Result<Self, MarkovError> {
        let n = rows.len();
        if n == 0 {
            return Err(MarkovError::EmptyChain);
        }
        let mut triplets = Vec::new();
        for (state, row) in rows.iter().enumerate() {
            let mut sum = 0.0;
            for &(target, prob) in row {
                if target >= n {
                    return Err(MarkovError::InvalidTargetState {
                        from: state,
                        to: target,
                        num_states: n,
                    });
                }
                if !prob.is_finite() || prob < -STOCHASTIC_TOLERANCE {
                    return Err(MarkovError::InvalidProbability {
                        state,
                        probability: prob,
                    });
                }
                sum += prob;
                if prob > 0.0 {
                    triplets.push(Triplet::new(state, target, prob));
                }
            }
            if (sum - 1.0).abs() > STOCHASTIC_TOLERANCE {
                return Err(MarkovError::InvalidDistribution { state, sum });
            }
        }
        let transitions = CsrMatrix::from_triplets(n, n, &triplets)?;
        Ok(MarkovChain { transitions })
    }

    /// Builds a chain directly from a sparse matrix, validating stochasticity.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] if some row does not sum
    /// to 1 or has negative entries, or [`MarkovError::EmptyChain`] for a 0x0
    /// matrix.
    pub fn from_matrix(transitions: CsrMatrix) -> Result<Self, MarkovError> {
        if transitions.rows() == 0 {
            return Err(MarkovError::EmptyChain);
        }
        for state in 0..transitions.rows() {
            let (_, vals) = transitions.row(state);
            let sum: f64 = vals.iter().sum();
            if (sum - 1.0).abs() > STOCHASTIC_TOLERANCE || vals.iter().any(|&v| v < 0.0) {
                return Err(MarkovError::InvalidDistribution { state, sum });
            }
        }
        Ok(MarkovChain { transitions })
    }

    /// Builds a chain directly from raw CSR arrays (`row_ptr`, column
    /// indices, probabilities), validating both the CSR invariants and row
    /// stochasticity.
    ///
    /// This is the allocation-light path used when a chain is extracted from
    /// an already-CSR source — in particular the flat transition arena of
    /// `sm-mdp`, whose strategy-induced chains are row-slice copies of the
    /// arena and arrive here without any per-row staging.
    ///
    /// # Errors
    ///
    /// Propagates CSR shape errors from the sparse constructor and returns
    /// [`MarkovError::InvalidDistribution`] / [`MarkovError::EmptyChain`]
    /// like [`MarkovChain::from_matrix`].
    pub fn from_csr_parts(
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        probabilities: Vec<f64>,
    ) -> Result<Self, MarkovError> {
        let n = row_ptr.len().saturating_sub(1);
        let matrix = CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, probabilities)?;
        Self::from_matrix(matrix)
    }

    /// [`MarkovChain::from_csr_parts`] over the compact `u32` index arrays the
    /// flat MDP arena stores natively — no widening round-trip.
    ///
    /// # Errors
    ///
    /// Same as [`MarkovChain::from_csr_parts`].
    pub fn from_csr_parts_u32(
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        probabilities: Vec<f64>,
    ) -> Result<Self, MarkovError> {
        let n = row_ptr.len().saturating_sub(1);
        let matrix = CsrMatrix::from_raw_parts_u32(n, n, row_ptr, col_idx, probabilities)?;
        Self::from_matrix(matrix)
    }

    /// Consumes the chain and returns the underlying sparse transition
    /// matrix, the inverse of [`MarkovChain::from_matrix`].
    pub fn into_matrix(self) -> CsrMatrix {
        self.transitions
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.rows()
    }

    /// Transition probability from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either state index is out of bounds.
    pub fn probability(&self, from: usize, to: usize) -> f64 {
        self.transitions.get(from, to)
    }

    /// Successors of a state as parallel slices of (compact `u32`) targets
    /// and probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn successors(&self, state: usize) -> (&[u32], &[f64]) {
        self.transitions.row(state)
    }

    /// Borrow of the underlying sparse transition matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.transitions
    }

    /// One step of the distribution evolution: `mu' = mu · P`.
    ///
    /// # Errors
    ///
    /// Returns an error if `distribution.len()` differs from the state count.
    pub fn step_distribution(&self, distribution: &[f64]) -> Result<Vec<f64>, MarkovError> {
        Ok(self.transitions.transpose_matvec(distribution)?)
    }

    /// SCC decomposition and state classification for this chain.
    pub fn classify(&self) -> StronglyConnectedComponents {
        StronglyConnectedComponents::of_chain(self)
    }

    /// Whether the chain consists of a single closed communicating class.
    pub fn is_irreducible(&self) -> bool {
        let scc = self.classify();
        scc.num_components() == 1
    }

    /// Whether every state belongs to some recurrent class that is reachable
    /// from every state (unichain condition: exactly one recurrent class).
    pub fn is_unichain(&self) -> bool {
        self.classify().recurrent_classes().len() == 1
    }

    /// Stationary distribution of an irreducible chain (or, more generally, a
    /// unichain — transient states receive probability 0).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotIrreducible`] if the chain has more than one
    /// recurrent class, and propagates numerical errors from the solver.
    pub fn stationary_distribution(&self) -> Result<Vec<f64>, MarkovError> {
        let solver = StationaryDistribution::new(StationaryMethod::LinearSolve);
        solver.unichain_distribution(self)
    }

    /// Hitting analysis (hitting probabilities / expected hitting times) for a
    /// target set of states.
    pub fn hitting_analysis(&self, targets: &[usize]) -> Result<HittingAnalysis, MarkovError> {
        HittingAnalysis::new(self, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_row_sums() {
        let err = MarkovChain::from_rows(vec![vec![(0, 0.5)]]).unwrap_err();
        assert!(matches!(err, MarkovError::InvalidDistribution { .. }));
    }

    #[test]
    fn validates_targets_and_probabilities() {
        let err = MarkovChain::from_rows(vec![vec![(3, 1.0)]]).unwrap_err();
        assert!(matches!(err, MarkovError::InvalidTargetState { .. }));
        let err = MarkovChain::from_rows(vec![vec![(0, f64::NAN)]]).unwrap_err();
        assert!(matches!(err, MarkovError::InvalidProbability { .. }));
        let err = MarkovChain::from_rows(vec![vec![(0, -0.5), (0, 1.5)]]).unwrap_err();
        assert!(matches!(err, MarkovError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_empty_chain() {
        assert_eq!(
            MarkovChain::from_rows(vec![]).unwrap_err(),
            MarkovError::EmptyChain
        );
    }

    #[test]
    fn accepts_duplicate_targets_that_sum_to_one() {
        let chain = MarkovChain::from_rows(vec![vec![(0, 0.25), (0, 0.75)]]).unwrap();
        assert_eq!(chain.probability(0, 0), 1.0);
    }

    #[test]
    fn step_distribution_preserves_mass() {
        let chain =
            MarkovChain::from_rows(vec![vec![(0, 0.7), (1, 0.3)], vec![(0, 0.6), (1, 0.4)]])
                .unwrap();
        let mu = chain.step_distribution(&[0.5, 0.5]).unwrap();
        assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((mu[0] - 0.65).abs() < 1e-12);
    }

    #[test]
    fn irreducibility_detection() {
        let irreducible = MarkovChain::from_rows(vec![vec![(1, 1.0)], vec![(0, 1.0)]]).unwrap();
        assert!(irreducible.is_irreducible());

        let absorbing =
            MarkovChain::from_rows(vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0)]]).unwrap();
        assert!(!absorbing.is_irreducible());
        assert!(absorbing.is_unichain());
    }

    #[test]
    fn from_matrix_validates() {
        let good = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 1.0)]).unwrap();
        assert!(MarkovChain::from_matrix(good).is_ok());
        let bad = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.7)]).unwrap();
        assert!(MarkovChain::from_matrix(bad).is_err());
    }

    #[test]
    fn from_csr_parts_matches_from_rows() {
        let via_rows =
            MarkovChain::from_rows(vec![vec![(0, 0.5), (1, 0.5)], vec![(0, 1.0)]]).unwrap();
        let via_parts =
            MarkovChain::from_csr_parts(vec![0, 2, 3], vec![0, 1, 0], vec![0.5, 0.5, 1.0]).unwrap();
        assert_eq!(via_rows, via_parts);
        let via_u32 =
            MarkovChain::from_csr_parts_u32(vec![0, 2, 3], vec![0, 1, 0], vec![0.5, 0.5, 1.0])
                .unwrap();
        assert_eq!(via_rows, via_u32);
        let matrix = via_parts.into_matrix();
        assert_eq!(matrix.nnz(), 3);
    }

    #[test]
    fn from_csr_parts_validates() {
        // Row does not sum to 1.
        assert!(matches!(
            MarkovChain::from_csr_parts(vec![0, 1], vec![0], vec![0.7]),
            Err(MarkovError::InvalidDistribution { .. })
        ));
        // Empty chain.
        assert!(MarkovChain::from_csr_parts(vec![0], vec![], vec![]).is_err());
        // Malformed CSR shape surfaces as a linalg-backed error.
        assert!(MarkovChain::from_csr_parts(vec![1, 0], vec![0], vec![1.0]).is_err());
    }
}
