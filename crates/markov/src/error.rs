//! Error type for Markov-chain analysis.

use sm_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or analysing a Markov chain.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A transition row does not form a probability distribution.
    InvalidDistribution {
        /// Index of the offending state.
        state: usize,
        /// The sum of its outgoing probabilities.
        sum: f64,
    },
    /// A transition references a state outside the chain.
    InvalidTargetState {
        /// Source state of the transition.
        from: usize,
        /// The out-of-range target.
        to: usize,
        /// Number of states in the chain.
        num_states: usize,
    },
    /// A probability was negative, NaN or infinite.
    InvalidProbability {
        /// Source state of the transition.
        state: usize,
        /// The offending probability value.
        probability: f64,
    },
    /// The chain has no states.
    EmptyChain,
    /// The requested operation needs an irreducible (single recurrent class,
    /// no transient states) chain but the chain is not irreducible.
    NotIrreducible,
    /// An iterative method failed to converge within its iteration budget.
    ConvergenceFailure {
        /// The method that failed.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A reward vector does not match the number of states.
    RewardDimensionMismatch {
        /// Expected number of entries (number of states).
        expected: usize,
        /// Actual number of entries.
        actual: usize,
    },
    /// An underlying linear-algebra routine failed.
    Linalg(LinalgError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidDistribution { state, sum } => {
                write!(f, "row of state {state} sums to {sum}, expected 1")
            }
            MarkovError::InvalidTargetState {
                from,
                to,
                num_states,
            } => write!(
                f,
                "transition {from} -> {to} exceeds state count {num_states}"
            ),
            MarkovError::InvalidProbability { state, probability } => {
                write!(f, "state {state} has invalid probability {probability}")
            }
            MarkovError::EmptyChain => write!(f, "chain has no states"),
            MarkovError::NotIrreducible => write!(f, "chain is not irreducible"),
            MarkovError::ConvergenceFailure { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
            MarkovError::RewardDimensionMismatch { expected, actual } => {
                write!(f, "reward vector has {actual} entries, expected {expected}")
            }
            MarkovError::Linalg(err) => write!(f, "linear algebra error: {err}"),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Linalg(err) => Some(err),
            _ => None,
        }
    }
}

impl From<LinalgError> for MarkovError {
    fn from(err: LinalgError) -> Self {
        MarkovError::Linalg(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_contain_key_information() {
        let err = MarkovError::InvalidDistribution { state: 3, sum: 0.5 };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains("0.5"));

        let err = MarkovError::ConvergenceFailure {
            method: "power iteration",
            iterations: 100,
        };
        assert!(err.to_string().contains("power iteration"));
    }

    #[test]
    fn wraps_linalg_errors_with_source() {
        let err: MarkovError = LinalgError::SingularMatrix.into();
        assert!(matches!(err, MarkovError::Linalg(_)));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MarkovError>();
    }
}
