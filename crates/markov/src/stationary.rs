//! Stationary distributions of finite Markov chains.

use crate::{MarkovChain, MarkovError};
use sm_linalg::{solve_linear_system, DenseMatrix};

/// Method used to compute a stationary distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StationaryMethod {
    /// Direct linear solve of `π (P - I) = 0`, `Σ π = 1` restricted to the
    /// recurrent class. Exact up to floating point, cubic in the class size.
    LinearSolve,
    /// Power iteration on the lazy chain `(P + I) / 2` (lazification removes
    /// periodicity without changing the stationary distribution). Linear in
    /// the number of transitions per sweep; suited to large sparse chains.
    PowerIteration {
        /// Maximum number of sweeps.
        max_iterations: usize,
        /// L1 convergence threshold between successive iterates.
        tolerance: f64,
    },
}

impl Default for StationaryMethod {
    fn default() -> Self {
        StationaryMethod::PowerIteration {
            max_iterations: 100_000,
            tolerance: 1e-12,
        }
    }
}

/// Computes stationary distributions of recurrent classes.
///
/// # Example
///
/// ```
/// use sm_markov::{MarkovChain, StationaryDistribution, StationaryMethod};
///
/// # fn main() -> Result<(), sm_markov::MarkovError> {
/// let chain = MarkovChain::from_rows(vec![
///     vec![(0, 0.9), (1, 0.1)],
///     vec![(0, 0.5), (1, 0.5)],
/// ])?;
/// let solver = StationaryDistribution::new(StationaryMethod::LinearSolve);
/// let pi = solver.unichain_distribution(&chain)?;
/// assert!((pi[0] - 5.0 / 6.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct StationaryDistribution {
    method: StationaryMethod,
}

impl StationaryDistribution {
    /// Creates a solver using the given method.
    pub fn new(method: StationaryMethod) -> Self {
        StationaryDistribution { method }
    }

    /// Stationary distribution of a unichain (single recurrent class) over the
    /// *full* state space: transient states get probability 0.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotIrreducible`] if the chain has more than one
    /// recurrent class, and propagates solver failures.
    pub fn unichain_distribution(&self, chain: &MarkovChain) -> Result<Vec<f64>, MarkovError> {
        let scc = chain.classify();
        let recurrent = scc.recurrent_classes();
        if recurrent.len() != 1 {
            return Err(MarkovError::NotIrreducible);
        }
        let class = recurrent[0];
        let class_pi = self.class_distribution(chain, class)?;
        let mut pi = vec![0.0; chain.num_states()];
        for (&state, &p) in class.iter().zip(&class_pi) {
            pi[state] = p;
        }
        Ok(pi)
    }

    /// Stationary distribution *within* a recurrent class, returned in the
    /// order of `class_states`.
    ///
    /// The caller is responsible for passing the states of a closed
    /// communicating class (as produced by
    /// [`crate::StronglyConnectedComponents::recurrent_classes`]); transitions
    /// leaving the set are treated as an error.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidTargetState`] if a transition leaves the
    /// class, [`MarkovError::ConvergenceFailure`] if power iteration does not
    /// converge, and propagates linear-algebra errors.
    pub fn class_distribution(
        &self,
        chain: &MarkovChain,
        class_states: &[usize],
    ) -> Result<Vec<f64>, MarkovError> {
        let m = class_states.len();
        if m == 0 {
            return Err(MarkovError::EmptyChain);
        }
        // Local index of every class state.
        let mut local = vec![usize::MAX; chain.num_states()];
        for (i, &s) in class_states.iter().enumerate() {
            local[s] = i;
        }
        // Local transition rows, verifying closedness.
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        for &s in class_states {
            let (targets, probs) = chain.successors(s);
            let mut row = Vec::with_capacity(targets.len());
            for (&t, &p) in targets.iter().zip(probs) {
                if local[t as usize] == usize::MAX {
                    return Err(MarkovError::InvalidTargetState {
                        from: s,
                        to: t as usize,
                        num_states: chain.num_states(),
                    });
                }
                row.push((local[t as usize], p));
            }
            rows.push(row);
        }
        match self.method {
            StationaryMethod::LinearSolve => Self::solve_direct(&rows),
            StationaryMethod::PowerIteration {
                max_iterations,
                tolerance,
            } => Self::solve_power(&rows, max_iterations, tolerance),
        }
    }

    /// Direct solve: unknowns π, equations `π P = π` with the last equation
    /// replaced by the normalisation `Σ π = 1`.
    fn solve_direct(rows: &[Vec<(usize, f64)>]) -> Result<Vec<f64>, MarkovError> {
        let m = rows.len();
        // Build (P^T - I) as a dense matrix.
        let mut a = DenseMatrix::zeros(m, m);
        for (from, row) in rows.iter().enumerate() {
            for &(to, p) in row {
                a.set(to, from, a.get(to, from) + p);
            }
        }
        for i in 0..m {
            a.set(i, i, a.get(i, i) - 1.0);
        }
        // Replace the last row with the normalisation constraint.
        for j in 0..m {
            a.set(m - 1, j, 1.0);
        }
        let mut b = vec![0.0; m];
        b[m - 1] = 1.0;
        let mut pi = solve_linear_system(&a, &b)?;
        // Numerical clean-up: clamp tiny negatives and renormalise.
        for p in pi.iter_mut() {
            if *p < 0.0 {
                *p = 0.0;
            }
        }
        let sum: f64 = pi.iter().sum();
        if sum <= 0.0 {
            return Err(MarkovError::ConvergenceFailure {
                method: "stationary linear solve",
                iterations: 1,
            });
        }
        for p in pi.iter_mut() {
            *p /= sum;
        }
        Ok(pi)
    }

    /// Power iteration on the lazy chain `(P + I) / 2`.
    fn solve_power(
        rows: &[Vec<(usize, f64)>],
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<Vec<f64>, MarkovError> {
        let m = rows.len();
        let mut pi = vec![1.0 / m as f64; m];
        let mut next = vec![0.0; m];
        for iteration in 0..max_iterations {
            next.iter_mut().for_each(|v| *v = 0.0);
            for (from, row) in rows.iter().enumerate() {
                let mass = pi[from];
                // Lazy step: half the mass stays.
                next[from] += 0.5 * mass;
                for &(to, p) in row {
                    next[to] += 0.5 * mass * p;
                }
            }
            let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            if diff < tolerance {
                let sum: f64 = pi.iter().sum();
                for p in pi.iter_mut() {
                    *p /= sum;
                }
                return Ok(pi);
            }
            let _ = iteration;
        }
        Err(MarkovError::ConvergenceFailure {
            method: "stationary power iteration",
            iterations: max_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> MarkovChain {
        MarkovChain::from_rows(vec![vec![(0, 0.7), (1, 0.3)], vec![(0, 0.6), (1, 0.4)]]).unwrap()
    }

    #[test]
    fn linear_solve_matches_hand_computation() {
        let solver = StationaryDistribution::new(StationaryMethod::LinearSolve);
        let pi = solver.unichain_distribution(&two_state()).unwrap();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-10);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn power_iteration_agrees_with_linear_solve() {
        let direct = StationaryDistribution::new(StationaryMethod::LinearSolve)
            .unichain_distribution(&two_state())
            .unwrap();
        let power = StationaryDistribution::new(StationaryMethod::default())
            .unichain_distribution(&two_state())
            .unwrap();
        for (a, b) in direct.iter().zip(&power) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn periodic_chain_is_handled_by_lazification() {
        // A deterministic 2-cycle has period 2; the lazy chain still converges
        // to the uniform stationary distribution.
        let chain = MarkovChain::from_rows(vec![vec![(1, 1.0)], vec![(0, 1.0)]]).unwrap();
        let pi = StationaryDistribution::new(StationaryMethod::default())
            .unichain_distribution(&chain)
            .unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-8);
        assert!((pi[1] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn transient_states_receive_zero_probability() {
        let chain = MarkovChain::from_rows(vec![
            vec![(1, 0.5), (2, 0.5)],
            vec![(1, 0.2), (2, 0.8)],
            vec![(1, 0.7), (2, 0.3)],
        ])
        .unwrap();
        let pi = StationaryDistribution::new(StationaryMethod::LinearSolve)
            .unichain_distribution(&chain)
            .unwrap();
        assert_eq!(pi[0], 0.0);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn multichain_is_rejected() {
        let chain = MarkovChain::from_rows(vec![
            vec![(1, 0.5), (2, 0.5)],
            vec![(1, 1.0)],
            vec![(2, 1.0)],
        ])
        .unwrap();
        let err = StationaryDistribution::new(StationaryMethod::LinearSolve)
            .unichain_distribution(&chain)
            .unwrap_err();
        assert_eq!(err, MarkovError::NotIrreducible);
    }

    #[test]
    fn class_distribution_rejects_open_sets() {
        let chain = MarkovChain::from_rows(vec![vec![(1, 1.0)], vec![(1, 1.0)]]).unwrap();
        // {0} is not closed: it leaks to 1.
        let err = StationaryDistribution::new(StationaryMethod::LinearSolve)
            .class_distribution(&chain, &[0])
            .unwrap_err();
        assert!(matches!(err, MarkovError::InvalidTargetState { .. }));
    }

    #[test]
    fn stationary_is_fixed_point_of_step() {
        let chain = MarkovChain::from_rows(vec![
            vec![(0, 0.2), (1, 0.5), (2, 0.3)],
            vec![(0, 0.4), (1, 0.1), (2, 0.5)],
            vec![(0, 0.3), (1, 0.3), (2, 0.4)],
        ])
        .unwrap();
        let pi = chain.stationary_distribution().unwrap();
        let stepped = chain.step_distribution(&pi).unwrap();
        for (a, b) in pi.iter().zip(&stepped) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
