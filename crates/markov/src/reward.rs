//! Long-run average (gain) and transient reward computations.

use crate::parallel::{mass_balanced_blocks, mass_capped_threads, priority_blocks, sweep_scope};
use crate::{
    MarkovChain, MarkovError, SolverParallelism, StateClass, StationaryDistribution,
    StationaryMethod, SweepKernel,
};
use sm_linalg::{solve_linear_system, DenseMatrix};
use std::sync::{Mutex, PoisonError, RwLock};

/// Long-run average reward (gain) of every state of a chain under a per-state
/// reward vector.
///
/// For a state inside a recurrent class `R` the gain is `Σ_{s∈R} π_R(s) r(s)`
/// where `π_R` is the stationary distribution of the class. For a transient
/// state the gain is the absorption-probability-weighted average of the gains
/// of the recurrent classes it can reach.
///
/// This is the exact quantity needed to evaluate a positional MDP strategy
/// under the mean-payoff objective, so `sm-mdp`'s policy iteration delegates
/// here.
///
/// # Errors
///
/// Returns [`MarkovError::RewardDimensionMismatch`] if the reward vector does
/// not match the number of states, and propagates solver failures.
///
/// # Example
///
/// ```
/// use sm_markov::{long_run_average_reward, MarkovChain};
///
/// # fn main() -> Result<(), sm_markov::MarkovError> {
/// let chain = MarkovChain::from_rows(vec![
///     vec![(0, 0.5), (1, 0.5)],
///     vec![(0, 0.5), (1, 0.5)],
/// ])?;
/// let gain = long_run_average_reward(&chain, &[1.0, 0.0])?;
/// assert!((gain[0] - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn long_run_average_reward(
    chain: &MarkovChain,
    rewards: &[f64],
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.num_states();
    if rewards.len() != n {
        return Err(MarkovError::RewardDimensionMismatch {
            expected: n,
            actual: rewards.len(),
        });
    }
    let scc = chain.classify();
    let recurrent_classes = scc.recurrent_classes();
    let solver = StationaryDistribution::new(StationaryMethod::LinearSolve);

    // Gain of each recurrent class.
    let mut class_gain = Vec::with_capacity(recurrent_classes.len());
    for class in &recurrent_classes {
        let pi = solver.class_distribution(chain, class)?;
        let gain: f64 = class.iter().zip(&pi).map(|(&s, &p)| p * rewards[s]).sum();
        class_gain.push(gain);
    }

    let classes = scc.state_classes();
    let mut gain = vec![0.0; n];
    for (s, class) in classes.iter().enumerate() {
        if let StateClass::Recurrent { class } = class {
            gain[s] = class_gain[*class];
        }
    }

    // Transient states: gain(s) = Σ_t P(s,t) gain(t), i.e. solve
    // (I - P_TT) g_T = P_TR g_R over the transient block.
    let transient = scc.transient_states();
    if !transient.is_empty() {
        let m = transient.len();
        let mut local = vec![usize::MAX; n];
        for (i, &s) in transient.iter().enumerate() {
            local[s] = i;
        }
        let mut a = DenseMatrix::identity(m);
        let mut b = vec![0.0; m];
        for (i, &s) in transient.iter().enumerate() {
            let (succ, probs) = chain.successors(s);
            for (&t, &p) in succ.iter().zip(probs) {
                let t = t as usize;
                if local[t] == usize::MAX {
                    b[i] += p * gain[t];
                } else {
                    let j = local[t];
                    a.set(i, j, a.get(i, j) - p);
                }
            }
        }
        let g = solve_linear_system(&a, &b)?;
        for (i, &s) in transient.iter().enumerate() {
            gain[s] = g[i];
        }
    }
    Ok(gain)
}

/// Long-run average reward (gain) of a *unichain* Markov chain, computed with
/// sparse relative value iteration instead of the dense linear solves used by
/// [`long_run_average_reward`].
///
/// This is the method of choice for large chains (tens of thousands of
/// states), where assembling and factorising dense systems is prohibitive: a
/// sweep touches every transition once, and the span of the per-sweep
/// increments certifies the result to within `epsilon`.
///
/// # Errors
///
/// Returns [`MarkovError::RewardDimensionMismatch`] for a malformed reward
/// vector and [`MarkovError::ConvergenceFailure`] if the span has not dropped
/// below `epsilon` after `max_iterations` sweeps (e.g. because the chain is
/// not unichain and therefore has no single gain).
///
/// # Example
///
/// ```
/// use sm_markov::{iterative_gain, MarkovChain};
///
/// # fn main() -> Result<(), sm_markov::MarkovError> {
/// let chain = MarkovChain::from_rows(vec![
///     vec![(0, 0.5), (1, 0.5)],
///     vec![(0, 0.5), (1, 0.5)],
/// ])?;
/// let gain = iterative_gain(&chain, &[1.0, 0.0], 1e-10, 100_000)?;
/// assert!((gain - 0.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn iterative_gain(
    chain: &MarkovChain,
    rewards: &[f64],
    epsilon: f64,
    max_iterations: usize,
) -> Result<f64, MarkovError> {
    let gains = iterative_gains(chain, &[rewards], epsilon, max_iterations)?;
    Ok(gains[0])
}

/// [`iterative_gain`] over *several* reward vectors at once, sharing the
/// chain sweeps: the transition arrays (the memory-bound part of a sweep) are
/// walked once per iteration while one bias vector per reward function is
/// updated in the same pass. Evaluating the selfish-mining revenue ratio
/// `g_A / (g_A + g_H)` needs the gains of `r_A` and `r_H` under the *same*
/// chain, which this computes at nearly the cost of one.
///
/// Each reward's own span certifies its gain to within `epsilon`; the sweep
/// loop runs until every span has closed (gains whose span closed early stop
/// being refined — their certified interval is frozen).
///
/// # Errors
///
/// Same as [`iterative_gain`]; the dimension check applies to every reward
/// vector.
pub fn iterative_gains(
    chain: &MarkovChain,
    rewards: &[&[f64]],
    epsilon: f64,
    max_iterations: usize,
) -> Result<Vec<f64>, MarkovError> {
    iterative_gains_seeded(chain, rewards, epsilon, max_iterations, None).map(|(gains, _)| gains)
}

/// [`iterative_gains`] warm-started from previously converged bias vectors
/// (one per reward function), returning the final bias vectors for the next
/// call. Seeding with the bias of a *similar* chain — e.g. the one induced at
/// the previous point of a parameter sweep — cuts the sweep count; any finite
/// seed is valid (the per-sweep span sandwich certifies the gain regardless
/// of the starting bias) and seeds of the wrong shape are ignored.
///
/// # Errors
///
/// Same as [`iterative_gains`].
pub fn iterative_gains_seeded(
    chain: &MarkovChain,
    rewards: &[&[f64]],
    epsilon: f64,
    max_iterations: usize,
    seed: Option<&[Vec<f64>]>,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), MarkovError> {
    iterative_gains_seeded_with(
        chain,
        rewards,
        epsilon,
        max_iterations,
        seed,
        SolverParallelism::serial(),
    )
}

/// The lazy (aperiodicity) transformation parameter of the fused gain sweeps:
/// `P' = (1 − τ)·I + τ·P` has the same stationary distribution and gain,
/// with guaranteed convergence of the span on periodic chains.
const GAIN_SWEEP_LAZINESS: f64 = 0.9;

/// [`iterative_gains_seeded`] with row-block parallel chain sweeps.
///
/// The state range is partitioned into contiguous blocks balanced by
/// transition mass ([`mass_balanced_blocks`]); each sweep fans the blocks
/// over a scoped pool, every block writing a disjoint slice of the next
/// iterate, and the per-reward span statistics are reduced per block and
/// folded in block order. Each state runs exactly the serial arithmetic, so
/// gains, bias vectors and sweep counts are **bit-identical for any thread
/// count** — [`SolverParallelism`] only trades wall-clock time for cores.
/// Small chains (by [`crate::MIN_BLOCK_MASS`]) run serially regardless of
/// the knob.
///
/// # Errors
///
/// Same as [`iterative_gains`].
pub fn iterative_gains_seeded_with(
    chain: &MarkovChain,
    rewards: &[&[f64]],
    epsilon: f64,
    max_iterations: usize,
    seed: Option<&[Vec<f64>]>,
    parallelism: SolverParallelism,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), MarkovError> {
    let n = chain.num_states();
    for reward in rewards {
        if reward.len() != n {
            return Err(MarkovError::RewardDimensionMismatch {
                expected: n,
                actual: reward.len(),
            });
        }
    }
    let k = rewards.len();
    if k == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    let h = match seed {
        Some(seed)
            if seed.len() == k
                && seed
                    .iter()
                    .all(|b| b.len() == n && b.iter().all(|v| v.is_finite())) =>
        {
            seed.to_vec()
        }
        _ => vec![vec![0.0; n]; k],
    };
    let threads = mass_capped_threads(parallelism.thread_count(), chain.matrix().nnz());
    if threads > 1 {
        gain_sweeps_parallel(chain, rewards, epsilon, max_iterations, h, threads)
    } else {
        gain_sweeps_serial(chain, rewards, epsilon, max_iterations, h)
    }
}

/// Number of in-place accelerator sweeps a non-Jacobi kernel runs before
/// each certifying Jacobi sweep.
const ACCELERATOR_SWEEPS_PER_ROUND: usize = 4;

/// [`iterative_gains_seeded_with`] with an explicit [`SweepKernel`].
///
/// The kernel affects **only** how the bias iterate is advanced *between*
/// certifying sweeps: [`SweepKernel::GaussSeidel`] and
/// [`SweepKernel::Prioritized`] interleave in-place Gauss-Seidel accelerator
/// sweeps (block-sequential; the prioritized variant skips blocks whose
/// last-seen residual is below its threshold) before every full Jacobi sweep.
/// The gain and its enclosing span are only ever read off full Jacobi sweeps,
/// whose span sandwich certifies the gain for **any** finite starting bias —
/// an accelerator sweep is indistinguishable from a lucky seed — so the
/// certificate semantics of the Jacobi kernel carry over unchanged.
///
/// With [`SweepKernel::Jacobi`] this is exactly
/// [`iterative_gains_seeded_with`] (bit for bit). With any other kernel the
/// sweeps run serially (the parallelism knob is ignored) and `max_iterations`
/// counts certifying Jacobi sweeps only.
///
/// # Errors
///
/// Same as [`iterative_gains`].
#[allow(clippy::too_many_arguments)]
pub fn iterative_gains_seeded_with_kernel(
    chain: &MarkovChain,
    rewards: &[&[f64]],
    epsilon: f64,
    max_iterations: usize,
    seed: Option<&[Vec<f64>]>,
    parallelism: SolverParallelism,
    kernel: SweepKernel,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), MarkovError> {
    if kernel.is_jacobi() {
        return iterative_gains_seeded_with(
            chain,
            rewards,
            epsilon,
            max_iterations,
            seed,
            parallelism,
        );
    }
    let n = chain.num_states();
    for reward in rewards {
        if reward.len() != n {
            return Err(MarkovError::RewardDimensionMismatch {
                expected: n,
                actual: reward.len(),
            });
        }
    }
    let k = rewards.len();
    if k == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    let mut h = match seed {
        Some(seed)
            if seed.len() == k
                && seed
                    .iter()
                    .all(|b| b.len() == n && b.iter().all(|v| v.is_finite())) =>
        {
            seed.to_vec()
        }
        _ => vec![vec![0.0; n]; k],
    };
    let tau = GAIN_SWEEP_LAZINESS;
    let threshold = match kernel {
        SweepKernel::Prioritized { threshold } => threshold,
        _ => 0.0,
    };
    // Fixed residual-tracking partition: mass-derived, thread-independent.
    let mut cumulative = Vec::with_capacity(n + 1);
    cumulative.push(0usize);
    for s in 0..n {
        cumulative.push(cumulative[s] + chain.successors(s).0.len());
    }
    let blocks = priority_blocks(&cumulative);
    // Residual of each (reward, block) as of the latest sweep that touched
    // the block: the local span of per-state updates, which closes to 0 as
    // the block converges (the raw update tends to the gain, not to 0).
    let mut residual = vec![vec![f64::INFINITY; blocks.len()]; k];
    let mut next = vec![vec![0.0; n]; k];
    let mut gain = vec![f64::NAN; k];
    // Running gain estimate subtracted inside the accelerator sweeps: without
    // it the in-place iterate would grow (tilted) by the gain per sweep and
    // never settle. Seeded from the first certifying sweep's span midpoint.
    let mut gain_estimate = vec![0.0; k];
    let mut open = vec![true; k];
    for round in 0..max_iterations {
        // Certifying Jacobi sweep: exactly the serial-loop arithmetic, plus a
        // per-block residual refresh so stale skips get re-examined.
        let mut min_delta = vec![f64::INFINITY; k];
        let mut max_delta = vec![f64::NEG_INFINITY; k];
        for (bi, range) in blocks.iter().enumerate() {
            let mut block_lo = vec![f64::INFINITY; k];
            let mut block_hi = vec![f64::NEG_INFINITY; k];
            for s in range.clone() {
                let (targets, probs) = chain.successors(s);
                for r in 0..k {
                    if !open[r] {
                        continue;
                    }
                    let h_r = &h[r];
                    let mut value = rewards[r][s] + (1.0 - tau) * h_r[s];
                    for (&t, &p) in targets.iter().zip(probs) {
                        value += tau * p * h_r[t as usize];
                    }
                    let delta = value - h_r[s];
                    block_lo[r] = block_lo[r].min(delta);
                    block_hi[r] = block_hi[r].max(delta);
                    next[r][s] = value;
                }
            }
            for r in 0..k {
                if open[r] {
                    residual[r][bi] = block_hi[r] - block_lo[r];
                    min_delta[r] = min_delta[r].min(block_lo[r]);
                    max_delta[r] = max_delta[r].max(block_hi[r]);
                }
            }
        }
        let mut any_open = false;
        for r in 0..k {
            if !open[r] {
                continue;
            }
            let offset = next[r][0];
            for s in 0..n {
                h[r][s] = next[r][s] - offset;
            }
            gain_estimate[r] = 0.5 * (min_delta[r] + max_delta[r]);
            if max_delta[r] - min_delta[r] < epsilon {
                gain[r] = gain_estimate[r];
                open[r] = false;
            } else {
                any_open = true;
            }
        }
        if !any_open {
            return Ok((gain, h));
        }
        if round + 1 == max_iterations {
            break;
        }
        // Accelerator sweeps: in-place Gauss-Seidel over the blocks in order,
        // with the current gain estimate subtracted (so the iterate converges
        // to a bias vector instead of drifting), skipping blocks already
        // below the prioritized threshold.
        for _ in 0..ACCELERATOR_SWEEPS_PER_ROUND {
            for r in 0..k {
                if !open[r] {
                    continue;
                }
                let g = gain_estimate[r];
                let h_r = &mut h[r];
                for (bi, range) in blocks.iter().enumerate() {
                    if residual[r][bi] < threshold {
                        continue;
                    }
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for s in range.clone() {
                        let (targets, probs) = chain.successors(s);
                        let mut value = rewards[r][s] - g + (1.0 - tau) * h_r[s];
                        for (&t, &p) in targets.iter().zip(probs) {
                            value += tau * p * h_r[t as usize];
                        }
                        let delta = value - h_r[s];
                        lo = lo.min(delta);
                        hi = hi.max(delta);
                        h_r[s] = value;
                    }
                    residual[r][bi] = hi - lo;
                }
                // Keep the iterate anchored at state 0, like the Jacobi loop.
                let offset = h_r[0];
                for v in h_r.iter_mut() {
                    *v -= offset;
                }
            }
        }
    }
    Err(MarkovError::ConvergenceFailure {
        method: "iterative gain",
        iterations: max_iterations,
    })
}

/// The historical single-threaded sweep loop of [`iterative_gains_seeded`].
fn gain_sweeps_serial(
    chain: &MarkovChain,
    rewards: &[&[f64]],
    epsilon: f64,
    max_iterations: usize,
    mut h: Vec<Vec<f64>>,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), MarkovError> {
    let n = chain.num_states();
    let k = rewards.len();
    let tau = GAIN_SWEEP_LAZINESS;
    let mut next = vec![vec![0.0; n]; k];
    let mut gain = vec![f64::NAN; k];
    let mut open = vec![true; k];
    for _ in 0..max_iterations {
        let mut min_delta = vec![f64::INFINITY; k];
        let mut max_delta = vec![f64::NEG_INFINITY; k];
        for s in 0..n {
            let (targets, probs) = chain.successors(s);
            for r in 0..k {
                if !open[r] {
                    continue;
                }
                let h_r = &h[r];
                let mut value = rewards[r][s] + (1.0 - tau) * h_r[s];
                for (&t, &p) in targets.iter().zip(probs) {
                    value += tau * p * h_r[t as usize];
                }
                let delta = value - h_r[s];
                min_delta[r] = min_delta[r].min(delta);
                max_delta[r] = max_delta[r].max(delta);
                next[r][s] = value;
            }
        }
        let mut any_open = false;
        for r in 0..k {
            if !open[r] {
                continue;
            }
            let offset = next[r][0];
            for s in 0..n {
                h[r][s] = next[r][s] - offset;
            }
            if max_delta[r] - min_delta[r] < epsilon {
                gain[r] = 0.5 * (min_delta[r] + max_delta[r]);
                open[r] = false;
            } else {
                any_open = true;
            }
        }
        if !any_open {
            return Ok((gain, h));
        }
    }
    Err(MarkovError::ConvergenceFailure {
        method: "iterative gain",
        iterations: max_iterations,
    })
}

/// Row-block parallel variant of [`gain_sweeps_serial`]: same arithmetic per
/// state, same fold order, bit-identical results (see
/// [`iterative_gains_seeded_with`]).
fn gain_sweeps_parallel(
    chain: &MarkovChain,
    rewards: &[&[f64]],
    epsilon: f64,
    max_iterations: usize,
    h: Vec<Vec<f64>>,
    threads: usize,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), MarkovError> {
    let n = chain.num_states();
    let k = rewards.len();
    let tau = GAIN_SWEEP_LAZINESS;
    let mut cumulative = Vec::with_capacity(n + 1);
    cumulative.push(0usize);
    for s in 0..n {
        cumulative.push(cumulative[s] + chain.successors(s).0.len());
    }
    let blocks = mass_balanced_blocks(&cumulative, threads);
    if blocks.len() <= 1 {
        return gain_sweeps_serial(chain, rewards, epsilon, max_iterations, h);
    }
    let h = RwLock::new(h);
    // Per-block scratch: one next-iterate slice per reward function, locked
    // only by its own block's worker (and by the driver between rounds).
    let chunks: Vec<Mutex<Vec<Vec<f64>>>> = blocks
        .iter()
        .map(|range| Mutex::new(vec![vec![0.0; range.len()]; k]))
        .collect();

    // One round = one fused sweep over all open reward functions; the job
    // token carries the open mask, the result the per-reward span statistics.
    let run_block = |block: usize, open: &Vec<bool>| -> Vec<(f64, f64)> {
        let range = blocks[block].clone();
        // Lock poisoning only means another block's worker panicked; the
        // buffers hold plain numeric data written in disjoint slices, so
        // recovery is sound — the originating panic still propagates through
        // the sweep scope's join.
        let h_read = h.read().unwrap_or_else(PoisonError::into_inner);
        let mut chunk = chunks[block].lock().unwrap_or_else(PoisonError::into_inner);
        let mut stats = vec![(f64::INFINITY, f64::NEG_INFINITY); k];
        for s in range.clone() {
            let (targets, probs) = chain.successors(s);
            for r in 0..k {
                if !open[r] {
                    continue;
                }
                let h_r = &h_read[r];
                let mut value = rewards[r][s] + (1.0 - tau) * h_r[s];
                for (&t, &p) in targets.iter().zip(probs) {
                    value += tau * p * h_r[t as usize];
                }
                let delta = value - h_r[s];
                stats[r].0 = stats[r].0.min(delta);
                stats[r].1 = stats[r].1.max(delta);
                chunk[r][s - range.start] = value;
            }
        }
        stats
    };

    let gains = sweep_scope(blocks.len() - 1, run_block, |pool| {
        let mut gain = vec![f64::NAN; k];
        let mut open = vec![true; k];
        for _ in 0..max_iterations {
            let round = pool.round(open.clone());
            // Fold the span statistics in block order.
            let mut min_delta = vec![f64::INFINITY; k];
            let mut max_delta = vec![f64::NEG_INFINITY; k];
            for stats in &round {
                for r in 0..k {
                    if open[r] {
                        min_delta[r] = min_delta[r].min(stats[r].0);
                        max_delta[r] = max_delta[r].max(stats[r].1);
                    }
                }
            }
            // Renormalise each open bias so state 0 stays at 0 (state 0 is
            // always in block 0), exactly like the serial update.
            let mut h_write = h.write().unwrap_or_else(PoisonError::into_inner);
            let mut offsets = vec![0.0; k];
            {
                let chunk0 = chunks[0].lock().unwrap_or_else(PoisonError::into_inner);
                for r in 0..k {
                    if open[r] {
                        offsets[r] = chunk0[r][0];
                    }
                }
            }
            for (range, chunk) in blocks.iter().zip(&chunks) {
                let chunk = chunk.lock().unwrap_or_else(PoisonError::into_inner);
                for r in 0..k {
                    if !open[r] {
                        continue;
                    }
                    for (i, &value) in chunk[r].iter().enumerate() {
                        h_write[r][range.start + i] = value - offsets[r];
                    }
                }
            }
            drop(h_write);
            let mut any_open = false;
            for r in 0..k {
                if !open[r] {
                    continue;
                }
                if max_delta[r] - min_delta[r] < epsilon {
                    gain[r] = 0.5 * (min_delta[r] + max_delta[r]);
                    open[r] = false;
                } else {
                    any_open = true;
                }
            }
            if !any_open {
                return Ok(gain);
            }
        }
        Err(MarkovError::ConvergenceFailure {
            method: "iterative gain",
            iterations: max_iterations,
        })
    })?;
    Ok((
        gains,
        h.into_inner().unwrap_or_else(PoisonError::into_inner),
    ))
}

/// Total expected reward accumulated before absorption into a target set,
/// starting from each state. Rewards are collected in every non-target state
/// visited (including the start), targets collect nothing.
///
/// States that do not reach the target set with probability 1 get
/// `f64::INFINITY` (the accumulated reward need not converge there).
///
/// # Errors
///
/// Returns [`MarkovError::RewardDimensionMismatch`] on a malformed reward
/// vector, [`MarkovError::EmptyChain`] for an empty target set, and
/// propagates solver failures.
pub fn total_expected_reward_until_absorption(
    chain: &MarkovChain,
    rewards: &[f64],
    targets: &[usize],
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.num_states();
    if rewards.len() != n {
        return Err(MarkovError::RewardDimensionMismatch {
            expected: n,
            actual: rewards.len(),
        });
    }
    let hitting = chain.hitting_analysis(targets)?;
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }
    let certain: Vec<usize> = (0..n)
        .filter(|&s| !is_target[s] && hitting.probability(s) > 1.0 - 1e-9)
        .collect();
    let mut local = vec![usize::MAX; n];
    for (i, &s) in certain.iter().enumerate() {
        local[s] = i;
    }
    let mut out = vec![f64::INFINITY; n];
    for &t in targets {
        out[t] = 0.0;
    }
    if certain.is_empty() {
        return Ok(out);
    }
    let m = certain.len();
    let mut a = DenseMatrix::identity(m);
    let mut b = vec![0.0; m];
    for (i, &s) in certain.iter().enumerate() {
        b[i] = rewards[s];
        let (succ, probs) = chain.successors(s);
        for (&t, &p) in succ.iter().zip(probs) {
            let t = t as usize;
            if is_target[t] {
                continue;
            }
            let j = local[t];
            if j != usize::MAX {
                a.set(i, j, a.get(i, j) - p);
            }
        }
    }
    let x = solve_linear_system(&a, &b)?;
    for (i, &s) in certain.iter().enumerate() {
        out[s] = x[i];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterative_gain_matches_exact_gain() {
        let chain =
            MarkovChain::from_rows(vec![vec![(0, 0.7), (1, 0.3)], vec![(0, 0.6), (1, 0.4)]])
                .unwrap();
        let rewards = [3.0, 0.0];
        let exact = long_run_average_reward(&chain, &rewards).unwrap()[0];
        let iterative = iterative_gain(&chain, &rewards, 1e-10, 200_000).unwrap();
        assert!((exact - iterative).abs() < 1e-8);
    }

    #[test]
    fn iterative_gain_handles_periodic_chains() {
        let chain = MarkovChain::from_rows(vec![vec![(1, 1.0)], vec![(0, 1.0)]]).unwrap();
        let gain = iterative_gain(&chain, &[1.0, 0.0], 1e-10, 200_000).unwrap();
        assert!((gain - 0.5).abs() < 1e-8);
    }

    #[test]
    fn fused_gains_match_separate_evaluations() {
        let chain = MarkovChain::from_rows(vec![
            vec![(0, 0.2), (1, 0.5), (2, 0.3)],
            vec![(0, 0.6), (2, 0.4)],
            vec![(1, 1.0)],
        ])
        .unwrap();
        let r1 = [3.0, 0.0, 1.0];
        let r2 = [0.0, 2.0, 0.5];
        let fused = iterative_gains(&chain, &[&r1, &r2], 1e-10, 200_000).unwrap();
        let g1 = iterative_gain(&chain, &r1, 1e-10, 200_000).unwrap();
        let g2 = iterative_gain(&chain, &r2, 1e-10, 200_000).unwrap();
        assert!((fused[0] - g1).abs() < 1e-9);
        assert!((fused[1] - g2).abs() < 1e-9);
        assert!(iterative_gains(&chain, &[], 1e-10, 10).unwrap().is_empty());
        assert!(iterative_gains(&chain, &[&r1[..2]], 1e-10, 10).is_err());
    }

    #[test]
    fn seeded_gains_reuse_converged_bias() {
        let chain =
            MarkovChain::from_rows(vec![vec![(0, 0.7), (1, 0.3)], vec![(0, 0.6), (1, 0.4)]])
                .unwrap();
        let r = [3.0, 0.0];
        let (cold, bias) = iterative_gains_seeded(&chain, &[&r], 1e-10, 200_000, None).unwrap();
        let (warm, _) = iterative_gains_seeded(&chain, &[&r], 1e-10, 200_000, Some(&bias)).unwrap();
        assert!((cold[0] - warm[0]).abs() < 1e-9);
        // A mis-shaped seed is ignored rather than rejected.
        let bad_seed = vec![vec![0.0; 7]];
        let (ignored, _) =
            iterative_gains_seeded(&chain, &[&r], 1e-10, 200_000, Some(&bad_seed)).unwrap();
        assert!((ignored[0] - cold[0]).abs() < 1e-9);
    }

    #[test]
    fn kernel_variants_certify_the_same_gain() {
        let chain = MarkovChain::from_rows(vec![
            vec![(0, 0.2), (1, 0.5), (2, 0.3)],
            vec![(0, 0.6), (2, 0.4)],
            vec![(1, 1.0)],
        ])
        .unwrap();
        let r1 = [3.0, 0.0, 1.0];
        let r2 = [0.0, 2.0, 0.5];
        let exact1 = long_run_average_reward(&chain, &r1).unwrap()[0];
        let exact2 = long_run_average_reward(&chain, &r2).unwrap()[0];
        for kernel in [
            SweepKernel::Jacobi,
            SweepKernel::GaussSeidel,
            SweepKernel::Prioritized { threshold: 1e-7 },
        ] {
            let (gains, bias) = iterative_gains_seeded_with_kernel(
                &chain,
                &[&r1, &r2],
                1e-10,
                200_000,
                None,
                SolverParallelism::serial(),
                kernel,
            )
            .unwrap();
            assert!((gains[0] - exact1).abs() < 1e-8, "kernel {kernel:?}");
            assert!((gains[1] - exact2).abs() < 1e-8, "kernel {kernel:?}");
            // Warm restart from the returned bias also certifies.
            let (warm, _) = iterative_gains_seeded_with_kernel(
                &chain,
                &[&r1, &r2],
                1e-10,
                200_000,
                Some(&bias),
                SolverParallelism::serial(),
                kernel,
            )
            .unwrap();
            assert!((warm[0] - gains[0]).abs() < 1e-9);
        }
        // The Jacobi kernel is the plain seeded entry point, bit for bit.
        let (plain, _) = iterative_gains_seeded(&chain, &[&r1, &r2], 1e-10, 200_000, None).unwrap();
        let (via_kernel, _) = iterative_gains_seeded_with_kernel(
            &chain,
            &[&r1, &r2],
            1e-10,
            200_000,
            None,
            SolverParallelism::serial(),
            SweepKernel::Jacobi,
        )
        .unwrap();
        assert_eq!(plain[0].to_bits(), via_kernel[0].to_bits());
        assert_eq!(plain[1].to_bits(), via_kernel[1].to_bits());
        // Dimension checks apply to the kernel entry as well.
        assert!(iterative_gains_seeded_with_kernel(
            &chain,
            &[&r1[..2]],
            1e-10,
            10,
            None,
            SolverParallelism::serial(),
            SweepKernel::GaussSeidel,
        )
        .is_err());
        assert!(iterative_gains_seeded_with_kernel(
            &chain,
            &[],
            1e-10,
            10,
            None,
            SolverParallelism::serial(),
            SweepKernel::GaussSeidel,
        )
        .unwrap()
        .0
        .is_empty());
    }

    #[test]
    fn iterative_gain_validates_inputs_and_budget() {
        let chain = MarkovChain::from_rows(vec![vec![(0, 1.0)]]).unwrap();
        assert!(matches!(
            iterative_gain(&chain, &[1.0, 2.0], 1e-8, 100),
            Err(MarkovError::RewardDimensionMismatch { .. })
        ));
        // A multichain has state-dependent gains, so the span never closes.
        let multichain = MarkovChain::from_rows(vec![vec![(0, 1.0)], vec![(1, 1.0)]]).unwrap();
        assert!(matches!(
            iterative_gain(&multichain, &[0.0, 1.0], 1e-12, 50),
            Err(MarkovError::ConvergenceFailure { .. })
        ));
    }

    #[test]
    fn gain_of_irreducible_chain_is_stationary_average() {
        let chain =
            MarkovChain::from_rows(vec![vec![(0, 0.7), (1, 0.3)], vec![(0, 0.6), (1, 0.4)]])
                .unwrap();
        // Stationary distribution is (2/3, 1/3).
        let gain = long_run_average_reward(&chain, &[3.0, 0.0]).unwrap();
        assert!((gain[0] - 2.0).abs() < 1e-9);
        assert!((gain[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gain_distinguishes_multiple_recurrent_classes() {
        // 0 splits evenly to two absorbing states with rewards 0 and 10.
        let chain = MarkovChain::from_rows(vec![
            vec![(1, 0.5), (2, 0.5)],
            vec![(1, 1.0)],
            vec![(2, 1.0)],
        ])
        .unwrap();
        let gain = long_run_average_reward(&chain, &[0.0, 0.0, 10.0]).unwrap();
        assert!((gain[1] - 0.0).abs() < 1e-12);
        assert!((gain[2] - 10.0).abs() < 1e-12);
        assert!((gain[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_reward_length() {
        let chain = MarkovChain::from_rows(vec![vec![(0, 1.0)]]).unwrap();
        assert!(matches!(
            long_run_average_reward(&chain, &[1.0, 2.0]),
            Err(MarkovError::RewardDimensionMismatch { .. })
        ));
    }

    #[test]
    fn absorption_reward_counts_visits() {
        // 0 -> 1 -> 2(absorbing), reward 1 per non-target state visited.
        let chain =
            MarkovChain::from_rows(vec![vec![(1, 1.0)], vec![(2, 1.0)], vec![(2, 1.0)]]).unwrap();
        let total = total_expected_reward_until_absorption(&chain, &[1.0, 1.0, 0.0], &[2]).unwrap();
        assert!((total[0] - 2.0).abs() < 1e-10);
        assert!((total[1] - 1.0).abs() < 1e-10);
        assert_eq!(total[2], 0.0);
    }

    #[test]
    fn absorption_reward_infinite_when_absorption_uncertain() {
        // State 0 can fall into absorbing state 1 (never reaching target 2).
        let chain = MarkovChain::from_rows(vec![
            vec![(1, 0.5), (2, 0.5)],
            vec![(1, 1.0)],
            vec![(2, 1.0)],
        ])
        .unwrap();
        let total = total_expected_reward_until_absorption(&chain, &[1.0, 1.0, 0.0], &[2]).unwrap();
        assert!(total[0].is_infinite());
    }

    #[test]
    fn geometric_absorption_reward() {
        // Collect reward 2 per step, absorb with probability 1/4 each step:
        // expected total reward 2 * 4 = 8.
        let chain =
            MarkovChain::from_rows(vec![vec![(0, 0.75), (1, 0.25)], vec![(1, 1.0)]]).unwrap();
        let total = total_expected_reward_until_absorption(&chain, &[2.0, 0.0], &[1]).unwrap();
        assert!((total[0] - 8.0).abs() < 1e-9);
    }
}
