//! Strongly connected components and state classification.
//!
//! The classification of states into recurrent and transient is what lets the
//! mean-payoff solvers in `sm-mdp` decide whether a chain induced by a
//! strategy is unichain (the case relevant to the selfish-mining MDP, whose
//! every strategy induces an ergodic chain — see the proof of Theorem 3.1).

use crate::MarkovChain;

/// Classification of a single state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateClass {
    /// The state belongs to a closed (recurrent) communicating class.
    Recurrent {
        /// Index of the recurrent class the state belongs to.
        class: usize,
    },
    /// The state is transient: with probability 1 the chain eventually leaves
    /// it forever.
    Transient,
}

/// Result of Tarjan's SCC decomposition over the transition graph of a chain,
/// together with the recurrent/transient classification of every SCC.
#[derive(Debug, Clone)]
pub struct StronglyConnectedComponents {
    /// SCC index of every state (indices are arbitrary but contiguous from 0).
    component_of: Vec<usize>,
    /// States of each SCC.
    components: Vec<Vec<usize>>,
    /// Indices (into `components`) of the closed SCCs, i.e. recurrent classes.
    recurrent: Vec<usize>,
    /// Per-state classification.
    classes: Vec<StateClass>,
}

impl StronglyConnectedComponents {
    /// Runs the decomposition for the given chain.
    pub fn of_chain(chain: &MarkovChain) -> Self {
        let n = chain.num_states();
        let mut tarjan = Tarjan::new(n);
        for v in 0..n {
            if tarjan.index_of[v].is_none() {
                tarjan.strong_connect(v, chain);
            }
        }
        let components = tarjan.components;
        let mut component_of = vec![0usize; n];
        for (ci, comp) in components.iter().enumerate() {
            for &s in comp {
                component_of[s] = ci;
            }
        }
        // A component is closed (recurrent) iff no positive-probability
        // transition leaves it (structural zero-probability entries, as kept
        // by parametric arenas for masked branches, are not edges).
        let mut recurrent = Vec::new();
        for (ci, comp) in components.iter().enumerate() {
            let closed = comp.iter().all(|&s| {
                let (targets, probs) = chain.successors(s);
                targets
                    .iter()
                    .zip(probs)
                    .all(|(&t, &p)| p == 0.0 || component_of[t as usize] == ci)
            });
            if closed {
                recurrent.push(ci);
            }
        }
        let mut classes = vec![StateClass::Transient; n];
        for (rank, &ci) in recurrent.iter().enumerate() {
            for &s in &components[ci] {
                classes[s] = StateClass::Recurrent { class: rank };
            }
        }
        StronglyConnectedComponents {
            component_of,
            components,
            recurrent,
            classes,
        }
    }

    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// SCC index of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn component_of(&self, state: usize) -> usize {
        self.component_of[state]
    }

    /// The states of every SCC.
    pub fn components(&self) -> &[Vec<usize>] {
        &self.components
    }

    /// The recurrent classes, each given as its member states.
    pub fn recurrent_classes(&self) -> Vec<&[usize]> {
        self.recurrent
            .iter()
            .map(|&ci| self.components[ci].as_slice())
            .collect()
    }

    /// Per-state classification (recurrent with class index, or transient).
    pub fn state_classes(&self) -> &[StateClass] {
        &self.classes
    }

    /// The transient states.
    pub fn transient_states(&self) -> Vec<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(s, c)| matches!(c, StateClass::Transient).then_some(s))
            .collect()
    }
}

/// Iterative Tarjan SCC (explicit stack to avoid recursion depth limits on the
/// large chains induced by selfish-mining strategies).
struct Tarjan {
    index_counter: usize,
    index_of: Vec<Option<usize>>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    components: Vec<Vec<usize>>,
}

impl Tarjan {
    fn new(n: usize) -> Self {
        Tarjan {
            index_counter: 0,
            index_of: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            components: Vec::new(),
        }
    }

    fn strong_connect(&mut self, root: usize, chain: &MarkovChain) {
        // Explicit DFS stack of (node, next-successor-position).
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child_pos)) = work.last() {
            if child_pos == 0 {
                self.index_of[v] = Some(self.index_counter);
                self.lowlink[v] = self.index_counter;
                self.index_counter += 1;
                self.stack.push(v);
                self.on_stack[v] = true;
            }
            let (targets, probs) = chain.successors(v);
            if child_pos < targets.len() {
                let w = targets[child_pos] as usize;
                work.last_mut().expect("work stack is non-empty").1 += 1;
                if probs[child_pos] == 0.0 {
                    // Masked (structurally kept, numerically zero) branch:
                    // not an edge of the chain.
                    continue;
                }
                match self.index_of[w] {
                    None => work.push((w, 0)),
                    Some(w_index) => {
                        if self.on_stack[w] {
                            self.lowlink[v] = self.lowlink[v].min(w_index);
                        }
                    }
                }
            } else {
                // Finished v.
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                }
                if Some(self.lowlink[v]) == self.index_of[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("stack contains the SCC root");
                        self.on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    self.components.push(component);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(rows: Vec<Vec<(usize, f64)>>) -> MarkovChain {
        MarkovChain::from_rows(rows).unwrap()
    }

    #[test]
    fn single_recurrent_class_for_irreducible_chain() {
        let c = chain(vec![vec![(1, 1.0)], vec![(2, 1.0)], vec![(0, 1.0)]]);
        let scc = c.classify();
        assert_eq!(scc.num_components(), 1);
        assert_eq!(scc.recurrent_classes().len(), 1);
        assert!(scc.transient_states().is_empty());
    }

    #[test]
    fn absorbing_state_is_recurrent_others_transient() {
        let c = chain(vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0)]]);
        let scc = c.classify();
        assert_eq!(scc.recurrent_classes().len(), 1);
        assert_eq!(scc.recurrent_classes()[0], &[1]);
        assert_eq!(scc.transient_states(), vec![0]);
        assert_eq!(scc.state_classes()[0], StateClass::Transient);
        assert_eq!(scc.state_classes()[1], StateClass::Recurrent { class: 0 });
    }

    #[test]
    fn two_disjoint_recurrent_classes() {
        // 0 -> {1,2} then 1 and 2 are each absorbing.
        let c = chain(vec![
            vec![(1, 0.5), (2, 0.5)],
            vec![(1, 1.0)],
            vec![(2, 1.0)],
        ]);
        let scc = c.classify();
        assert_eq!(scc.recurrent_classes().len(), 2);
        assert_eq!(scc.transient_states(), vec![0]);
        assert!(!c.is_unichain());
    }

    #[test]
    fn component_of_is_consistent_with_components() {
        let c = chain(vec![
            vec![(1, 1.0)],
            vec![(0, 1.0)],
            vec![(0, 0.3), (2, 0.7)],
        ]);
        let scc = c.classify();
        for (ci, comp) in scc.components().iter().enumerate() {
            for &s in comp {
                assert_eq!(scc.component_of(s), ci);
            }
        }
    }

    #[test]
    fn long_cycle_is_one_component() {
        let n = 500;
        let rows: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![((i + 1) % n, 1.0)]).collect();
        let c = chain(rows);
        let scc = c.classify();
        assert_eq!(scc.num_components(), 1);
        assert_eq!(scc.recurrent_classes()[0].len(), n);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // A long transient path into an absorbing state exercises the
        // iterative DFS.
        let n = 20_000;
        let mut rows: Vec<Vec<(usize, f64)>> = (0..n - 1).map(|i| vec![(i + 1, 1.0)]).collect();
        rows.push(vec![(n - 1, 1.0)]);
        let c = chain(rows);
        let scc = c.classify();
        assert_eq!(scc.recurrent_classes().len(), 1);
        assert_eq!(scc.transient_states().len(), n - 1);
    }
}
