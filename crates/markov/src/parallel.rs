//! Deterministic intra-solve parallelism: mass-balanced row blocks and a
//! scoped block-sweep pool.
//!
//! The solver hot loops of this workspace (relative value iteration,
//! discounted value iteration, fused chain-gain evaluation) are all *Jacobi*
//! sweeps over a CSR arena: every state's new value is a pure function of the
//! previous iterate, so a sweep can be cut into contiguous state blocks and
//! the blocks computed concurrently without changing a single bit of the
//! result — each state runs exactly the arithmetic it runs serially, in the
//! same order, against the same read-only snapshot of the previous iterate.
//! Per-sweep statistics (span, max-diff, reference values) are reduced *per
//! block* and folded in block order, so even the reductions are independent
//! of the thread count.
//!
//! Three pieces live here:
//!
//! * [`SolverParallelism`] — the knob every solver exposes: serial (the
//!   default), an explicit thread count, or auto-detection.
//! * [`mass_balanced_blocks`] — partitions the state range into contiguous
//!   blocks whose boundaries are derived from the *cumulative transition
//!   mass* (a `row_ptr`-shaped array), not naive state counts: a sweep's cost
//!   per state is proportional to its transition count, and the
//!   selfish-mining arenas are markedly non-uniform (deep-fork states carry
//!   many more transitions than the root), so equal-state blocks would load
//!   the pool unevenly.
//! * [`sweep_scope`] — a scoped thread pool that keeps one worker per extra
//!   block alive across *all* sweeps of a solve (spawning per sweep would
//!   dominate the sub-millisecond sweeps of medium arenas), exchanging only a
//!   small job token per round. Workers communicate through channels; buffer
//!   hand-over is the caller's business (the solvers keep the shared iterate
//!   behind a [`std::sync::RwLock`] and per-block scratch behind one
//!   uncontended [`std::sync::Mutex`] each).

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};

/// How many worker threads a single solve may use for its sweeps.
///
/// The *results* of every solver in this workspace are bit-identical for any
/// thread count (see the module docs); this knob only trades wall-clock time
/// for cores. The default is [`SolverParallelism::serial`], which runs the
/// historical single-threaded sweeps with zero synchronisation overhead.
///
/// # Example
///
/// ```
/// use sm_markov::SolverParallelism;
///
/// assert_eq!(SolverParallelism::serial().thread_count(), 1);
/// assert_eq!(SolverParallelism::threads(4).thread_count(), 4);
/// assert!(SolverParallelism::auto().thread_count() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SolverParallelism {
    /// Configured thread count; `0` encodes auto-detection.
    threads: usize,
}

impl SolverParallelism {
    /// Single-threaded sweeps (the default): no pool, no synchronisation.
    pub const fn serial() -> Self {
        SolverParallelism { threads: 1 }
    }

    /// Use [`std::thread::available_parallelism`] threads.
    pub const fn auto() -> Self {
        SolverParallelism { threads: 0 }
    }

    /// Use exactly `n` threads; `0` is equivalent to
    /// [`SolverParallelism::auto`].
    pub const fn threads(n: usize) -> Self {
        SolverParallelism { threads: n }
    }

    /// Whether this configuration is the serial one.
    pub const fn is_serial(self) -> bool {
        self.threads == 1
    }

    /// The resolved thread count: the configured value, or the machine's
    /// available parallelism (at least 1) for [`SolverParallelism::auto`].
    pub fn thread_count(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for SolverParallelism {
    fn default() -> Self {
        SolverParallelism::serial()
    }
}

/// Sweep kernel used by the iterative solvers to advance their iterate
/// *between* certifying sweeps.
///
/// Certified quantities — convergence spans, gain sandwiches, bound
/// intervals — are **only ever read off full Jacobi sweeps**, whose
/// certificate is valid for any finite starting iterate. The non-Jacobi
/// kernels therefore act purely as accelerators: they interleave in-place
/// Gauss-Seidel-ordered sweeps (which propagate fresh values within a sweep
/// and typically converge in fewer passes) before each certifying sweep,
/// reshaping the iterate the next Jacobi sweep starts from. Certificates,
/// optimal strategies and the decisions derived from them are unaffected by
/// the kernel choice; only the trajectory toward convergence changes.
///
/// # Example
///
/// ```
/// use sm_markov::SweepKernel;
///
/// assert!(SweepKernel::default().is_jacobi());
/// assert!(!SweepKernel::GaussSeidel.is_jacobi());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SweepKernel {
    /// Pure Jacobi sweeps (the historical default): every sweep reads only
    /// the previous iterate, so sweeps parallelise deterministically.
    #[default]
    Jacobi,
    /// In-place, block-sequential Gauss-Seidel accelerator sweeps interleaved
    /// between the certifying Jacobi sweeps.
    GaussSeidel,
    /// Gauss-Seidel accelerator sweeps that skip the mass-balanced blocks
    /// whose last-seen residual (local span of per-state updates) is already
    /// below `threshold`, concentrating work on the rows still moving.
    Prioritized {
        /// Residual below which a block is skipped by accelerator sweeps.
        threshold: f64,
    },
}

impl SweepKernel {
    /// Whether this is the pure-Jacobi kernel.
    pub const fn is_jacobi(self) -> bool {
        matches!(self, SweepKernel::Jacobi)
    }
}

/// Minimum transition mass a block must carry before it is worth a dedicated
/// worker. Solvers cap their thread count at
/// `1 + total_mass / MIN_BLOCK_MASS`, so small models (where one sweep costs
/// microseconds and a round of pool synchronisation would dominate) silently
/// run serially no matter what the knob says. Results are unaffected either
/// way — the cap is a pure wall-clock heuristic.
pub const MIN_BLOCK_MASS: usize = 2048;

/// Upper bound on the number of residual-tracking blocks used by the
/// prioritized kernel ([`priority_blocks`]).
pub const MAX_PRIORITY_BLOCKS: usize = 64;

/// Fixed residual-tracking partition used by the prioritized sweep kernel:
/// one block per [`MIN_BLOCK_MASS`] transitions, capped at
/// [`MAX_PRIORITY_BLOCKS`]. The partition is a pure function of the
/// cumulative transition mass — never of the thread count — so the set of
/// rows a prioritized accelerator sweep skips is deterministic for any
/// parallelism knob.
pub fn priority_blocks(cumulative_mass: &[usize]) -> Vec<Range<usize>> {
    let total = *cumulative_mass.last().unwrap_or(&0);
    mass_balanced_blocks(
        cumulative_mass,
        (total / MIN_BLOCK_MASS).clamp(1, MAX_PRIORITY_BLOCKS),
    )
}

/// Caps a requested thread count by the available transition mass: at most
/// one thread per [`MIN_BLOCK_MASS`] transitions (and at least one thread).
pub fn mass_capped_threads(requested: usize, total_mass: usize) -> usize {
    requested.clamp(1, 1 + total_mass / MIN_BLOCK_MASS)
}

/// Partitions the state range `0..n` into at most `blocks` contiguous,
/// non-empty ranges whose transition mass is as balanced as the row
/// granularity allows.
///
/// `cumulative_mass` is a `row_ptr`-shaped array of length `n + 1`:
/// nondecreasing, with `cumulative_mass[s + 1] - cumulative_mass[s]` the cost
/// weight of state `s` (its transition count, for CSR sweeps). The `k`-th
/// boundary is the first state at which the cumulative mass reaches `k/blocks`
/// of the total, so every block carries roughly `total / blocks` transitions
/// regardless of how unevenly they are distributed over states. Boundaries
/// are a pure function of `(cumulative_mass, blocks)` — the partition is
/// deterministic, and with it every per-block reduction fold.
///
/// Degenerate inputs collapse gracefully: zero states yield no blocks, and
/// states beyond the mass (e.g. trailing transition-free states) are absorbed
/// into the final block.
///
/// # Panics
///
/// Panics if `cumulative_mass` is empty (no state count to partition).
///
/// # Example
///
/// ```
/// use sm_markov::mass_balanced_blocks;
///
/// // Four states; the last state carries half of the total mass.
/// let cum = [0usize, 2, 4, 6, 12];
/// let blocks = mass_balanced_blocks(&cum, 2);
/// assert_eq!(blocks, vec![0..3, 3..4]);
/// ```
pub fn mass_balanced_blocks(cumulative_mass: &[usize], blocks: usize) -> Vec<Range<usize>> {
    assert!(
        !cumulative_mass.is_empty(),
        "cumulative mass must have n + 1 entries"
    );
    let n = cumulative_mass.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    let blocks = blocks.clamp(1, n);
    let total = cumulative_mass[n];
    let mut out = Vec::with_capacity(blocks);
    let mut start = 0usize;
    for k in 1..=blocks {
        let end = if k == blocks {
            n
        } else {
            // First state index at which the cumulative mass reaches k/blocks
            // of the total (integer arithmetic keeps the cut exact), clamped
            // so every remaining block can stay non-empty.
            let target = total * k / blocks;
            cumulative_mass
                .partition_point(|&m| m < target)
                .clamp(start + 1, n - (blocks - k))
        };
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    out
}

/// Handle to a running block-sweep pool: lets the solve's driver loop run
/// synchronised rounds over all blocks. Created by [`sweep_scope`].
pub struct BlockPool<'pool, J, R> {
    job_senders: Vec<Sender<J>>,
    result_receivers: Vec<Receiver<R>>,
    run_block: &'pool (dyn Fn(usize, &J) -> R + Sync),
}

impl<J: Clone, R> BlockPool<'_, J, R> {
    /// Number of blocks this pool sweeps (workers plus the driver's own
    /// block 0).
    pub fn blocks(&self) -> usize {
        self.job_senders.len() + 1
    }

    /// Runs one synchronised round: every block executes the worker closure
    /// on `job`, and the per-block results come back **in block order** —
    /// the driver computes block 0 inline while the workers handle the rest.
    pub fn round(&self, job: J) -> Vec<R> {
        for sender in &self.job_senders {
            sender
                .send(job.clone())
                .expect("sweep worker exited before the pool was dropped");
        }
        let mut results = Vec::with_capacity(self.blocks());
        results.push((self.run_block)(0, &job));
        for receiver in &self.result_receivers {
            results.push(
                receiver
                    .recv()
                    .expect("sweep worker exited before completing its round"),
            );
        }
        results
    }
}

/// Runs `driver` against a scoped pool of `extra_workers` threads, each
/// owning one block (`1..=extra_workers`; the driver computes block 0
/// inline during [`BlockPool::round`]). Workers stay alive for the whole
/// scope — one spawn per solve, not per sweep — and exit when the pool (and
/// with it their job channel) is dropped at the end of `driver`.
///
/// `run_block(block_index, &job)` is the per-round work item; it typically
/// captures the CSR slices read-only, the shared iterate behind a `RwLock`
/// and its block's scratch buffers behind a `Mutex`. With `extra_workers ==
/// 0` no threads are spawned and rounds run entirely inline, which keeps a
/// single code path for any pool size.
pub fn sweep_scope<J, R, T>(
    extra_workers: usize,
    run_block: impl Fn(usize, &J) -> R + Sync,
    driver: impl FnOnce(&BlockPool<'_, J, R>) -> T,
) -> T
where
    J: Clone + Send,
    R: Send,
{
    if extra_workers == 0 {
        let pool = BlockPool {
            job_senders: Vec::new(),
            result_receivers: Vec::new(),
            run_block: &run_block,
        };
        return driver(&pool);
    }
    std::thread::scope(|scope| {
        let mut job_senders = Vec::with_capacity(extra_workers);
        let mut result_receivers = Vec::with_capacity(extra_workers);
        for worker in 0..extra_workers {
            let (job_tx, job_rx) = channel::<J>();
            let (result_tx, result_rx) = channel::<R>();
            let run_block = &run_block;
            scope.spawn(move || {
                let block = worker + 1;
                while let Ok(job) = job_rx.recv() {
                    // A send failure means the driver stopped collecting
                    // (it is unwinding); exit quietly rather than panic.
                    if result_tx.send(run_block(block, &job)).is_err() {
                        break;
                    }
                }
            });
            job_senders.push(job_tx);
            result_receivers.push(result_rx);
        }
        let pool = BlockPool {
            job_senders,
            result_receivers,
            run_block: &run_block,
        };
        driver(&pool)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallelism_resolves_thread_counts() {
        assert!(SolverParallelism::serial().is_serial());
        assert!(!SolverParallelism::threads(2).is_serial());
        assert_eq!(SolverParallelism::default(), SolverParallelism::serial());
        assert_eq!(SolverParallelism::threads(0), SolverParallelism::auto());
        assert_eq!(SolverParallelism::threads(7).thread_count(), 7);
        assert!(SolverParallelism::auto().thread_count() >= 1);
    }

    #[test]
    fn mass_cap_limits_small_models_to_serial() {
        assert_eq!(mass_capped_threads(8, 100), 1);
        assert_eq!(mass_capped_threads(8, MIN_BLOCK_MASS), 2);
        assert_eq!(mass_capped_threads(8, 100 * MIN_BLOCK_MASS), 8);
        assert_eq!(mass_capped_threads(0, 100 * MIN_BLOCK_MASS), 1);
    }

    #[test]
    fn blocks_cover_the_range_and_balance_mass() {
        // 100 states of weight 2 each.
        let cum: Vec<usize> = (0..=100).map(|s| 2 * s).collect();
        for threads in [1, 2, 3, 7, 100] {
            let blocks = mass_balanced_blocks(&cum, threads);
            assert_eq!(blocks.len(), threads.min(100));
            assert_eq!(blocks[0].start, 0);
            assert_eq!(blocks.last().unwrap().end, 100);
            for pair in blocks.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "blocks must be contiguous");
                assert!(!pair[0].is_empty());
            }
        }
    }

    #[test]
    fn skewed_mass_shifts_the_boundaries() {
        // State 9 carries 90% of the mass: with two blocks, the cut must land
        // right before it, not at the state midpoint.
        let mut cum = vec![0usize];
        for s in 0..10 {
            let w = if s == 9 { 90 } else { 1 };
            cum.push(cum.last().unwrap() + w);
        }
        let blocks = mass_balanced_blocks(&cum, 2);
        assert_eq!(blocks, vec![0..9, 9..10]);
    }

    #[test]
    fn degenerate_partitions_collapse() {
        assert!(mass_balanced_blocks(&[0], 4).is_empty());
        // Zero-mass states still partition into non-empty state ranges.
        assert_eq!(mass_balanced_blocks(&[0, 0, 0], 2), vec![0..1, 1..2]);
        // More blocks than states clamp to one state per block.
        assert_eq!(
            mass_balanced_blocks(&[0, 1, 2], 9),
            vec![0..1, 1..2],
            "blocks are clamped to the state count"
        );
    }

    #[test]
    fn pool_rounds_return_results_in_block_order() {
        let seen = AtomicUsize::new(0);
        let doubled = sweep_scope(
            3,
            |block, job: &usize| {
                seen.fetch_add(1, Ordering::Relaxed);
                block * 100 + job
            },
            |pool| {
                assert_eq!(pool.blocks(), 4);
                let first = pool.round(7);
                let second = pool.round(9);
                (first, second)
            },
        );
        assert_eq!(doubled.0, vec![7, 107, 207, 307]);
        assert_eq!(doubled.1, vec![9, 109, 209, 309]);
        assert_eq!(seen.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let out = sweep_scope(0, |block, job: &usize| block + job, |pool| pool.round(5));
        assert_eq!(out, vec![5]);
    }
}
