//! Finite Markov chain analysis.
//!
//! A positional strategy in the selfish-mining MDP induces a finite Markov
//! chain; the paper's Theorem 3.1 argues about the long-run behaviour of these
//! induced chains (ergodicity, strong law of large numbers, long-run average
//! rewards). This crate provides the corresponding machinery:
//!
//! * [`MarkovChain`] — a row-stochastic transition matrix with validation.
//! * [`StronglyConnectedComponents`] — Tarjan SCC decomposition, recurrent
//!   class and transient state identification.
//! * [`StationaryDistribution`] — stationary distributions per recurrent
//!   class, via direct linear solve or power iteration.
//! * [`long_run_average_reward`] — the gain of a chain under a reward
//!   function, the quantity that policy evaluation in `sm-mdp` needs.
//! * [`HittingAnalysis`] — hitting probabilities and expected hitting times.
//!
//! # Example
//!
//! ```
//! use sm_markov::MarkovChain;
//!
//! # fn main() -> Result<(), sm_markov::MarkovError> {
//! // A two-state chain that flips with probability 0.3 / 0.6.
//! let chain = MarkovChain::from_rows(vec![
//!     vec![(0, 0.7), (1, 0.3)],
//!     vec![(0, 0.6), (1, 0.4)],
//! ])?;
//! let pi = chain.stationary_distribution()?;
//! assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod classify;
mod error;
mod hitting;
mod parallel;
mod reward;
mod stationary;

pub use chain::MarkovChain;
pub use classify::{StateClass, StronglyConnectedComponents};
pub use error::MarkovError;
pub use hitting::HittingAnalysis;
pub use parallel::{
    mass_balanced_blocks, mass_capped_threads, priority_blocks, sweep_scope, BlockPool,
    SolverParallelism, SweepKernel, MAX_PRIORITY_BLOCKS, MIN_BLOCK_MASS,
};
pub use reward::{
    iterative_gain, iterative_gains, iterative_gains_seeded, iterative_gains_seeded_with,
    iterative_gains_seeded_with_kernel, long_run_average_reward,
    total_expected_reward_until_absorption,
};
pub use stationary::{StationaryDistribution, StationaryMethod};

/// Tolerance used when validating that rows are probability distributions.
pub const STOCHASTIC_TOLERANCE: f64 = 1e-9;
