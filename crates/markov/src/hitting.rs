//! Hitting probabilities and expected hitting times.
//!
//! Used for transient analysis of baseline attacks (e.g. the probability that
//! a private fork ever catches up with the public chain) and for the
//! multichain gain computation in `sm-mdp`.

use crate::{MarkovChain, MarkovError};
use sm_linalg::{solve_linear_system, DenseMatrix};

/// Hitting analysis of a target set `T` in a Markov chain: for every state the
/// probability of ever reaching `T` and, where that probability is 1, the
/// expected number of steps to do so.
#[derive(Debug, Clone)]
pub struct HittingAnalysis {
    probabilities: Vec<f64>,
    expected_times: Vec<f64>,
    targets: Vec<usize>,
}

impl HittingAnalysis {
    /// Computes the analysis for the given chain and target states.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::EmptyChain`] if `targets` is empty, an
    /// out-of-range error if a target does not exist, and propagates
    /// linear-solver failures.
    pub fn new(chain: &MarkovChain, targets: &[usize]) -> Result<Self, MarkovError> {
        let n = chain.num_states();
        if targets.is_empty() {
            return Err(MarkovError::EmptyChain);
        }
        let mut is_target = vec![false; n];
        for &t in targets {
            if t >= n {
                return Err(MarkovError::InvalidTargetState {
                    from: t,
                    to: t,
                    num_states: n,
                });
            }
            is_target[t] = true;
        }
        // Hitting probabilities are the *minimal* non-negative solution of
        // h = P h with h = 1 on the target set. Solving the linear system
        // naively over all non-target states is singular whenever some state
        // cannot reach the target at all (e.g. an absorbing losing state), so
        // we first compute backward reachability: states that cannot reach the
        // target get probability 0, and the linear system is restricted to the
        // states that can.
        let can_reach = backward_reachable(chain, &is_target);
        let solvable: Vec<usize> = (0..n).filter(|&s| !is_target[s] && can_reach[s]).collect();
        let mut local = vec![usize::MAX; n];
        for (i, &s) in solvable.iter().enumerate() {
            local[s] = i;
        }
        let m = solvable.len();
        let probabilities = {
            let mut full = vec![0.0; n];
            for &t in targets {
                full[t] = 1.0;
            }
            if m > 0 {
                let mut a = DenseMatrix::identity(m);
                let mut b = vec![0.0; m];
                for (i, &s) in solvable.iter().enumerate() {
                    let (succ, probs) = chain.successors(s);
                    for (&t, &p) in succ.iter().zip(probs) {
                        if is_target[t as usize] {
                            b[i] += p;
                        } else if local[t as usize] != usize::MAX {
                            let j = local[t as usize];
                            a.set(i, j, a.get(i, j) - p);
                        }
                        // Successors that cannot reach the target contribute 0.
                    }
                }
                let h = solve_linear_system(&a, &b)?;
                for (i, &s) in solvable.iter().enumerate() {
                    full[s] = h[i].clamp(0.0, 1.0);
                }
            }
            full
        };

        // Expected hitting times: defined (finite) only where the hitting
        // probability is 1. Solve k = 1 + P_NT k over states with h = 1;
        // states with h < 1 get infinity.
        let certain: Vec<usize> = (0..n)
            .filter(|&s| !is_target[s] && probabilities[s] > 1.0 - 1e-9)
            .collect();
        let mut certain_local = vec![usize::MAX; n];
        for (i, &s) in certain.iter().enumerate() {
            certain_local[s] = i;
        }
        let mut expected_times = vec![f64::INFINITY; n];
        for &t in targets {
            expected_times[t] = 0.0;
        }
        if !certain.is_empty() {
            let mc = certain.len();
            let mut a = DenseMatrix::identity(mc);
            let b = vec![1.0; mc];
            for (i, &s) in certain.iter().enumerate() {
                let (succ, probs) = chain.successors(s);
                for (&t, &p) in succ.iter().zip(probs) {
                    if is_target[t as usize] {
                        continue;
                    }
                    let j = certain_local[t as usize];
                    // A successor with hitting probability < 1 would make the
                    // expectation infinite; h = 1 here guarantees all mass
                    // goes to certain states or targets.
                    if j != usize::MAX {
                        a.set(i, j, a.get(i, j) - p);
                    }
                }
            }
            if let Ok(k) = solve_linear_system(&a, &b) {
                for (i, &s) in certain.iter().enumerate() {
                    expected_times[s] = k[i].max(0.0);
                }
            }
        }

        Ok(HittingAnalysis {
            probabilities,
            expected_times,
            targets: targets.to_vec(),
        })
    }

    /// Probability of ever reaching the target set from `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn probability(&self, state: usize) -> f64 {
        self.probabilities[state]
    }

    /// Expected number of steps to reach the target set from `state`
    /// (`f64::INFINITY` when the hitting probability is below 1).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn expected_time(&self, state: usize) -> f64 {
        self.expected_times[state]
    }

    /// All hitting probabilities, indexed by state.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// All expected hitting times, indexed by state.
    pub fn expected_times(&self) -> &[f64] {
        &self.expected_times
    }

    /// The target set this analysis was computed for.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }
}

/// Set of states from which the target set is reachable (including targets),
/// computed by a reverse breadth-first search over the transition graph.
fn backward_reachable(chain: &MarkovChain, is_target: &[bool]) -> Vec<bool> {
    let n = chain.num_states();
    // Build the reverse adjacency once.
    let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in 0..n {
        let (succ, probs) = chain.successors(s);
        for (&t, &p) in succ.iter().zip(probs) {
            if p > 0.0 {
                predecessors[t as usize].push(s);
            }
        }
    }
    let mut reachable = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&s| is_target[s]).collect();
    for &t in &queue {
        reachable[t] = true;
    }
    while let Some(t) = queue.pop() {
        for &p in &predecessors[t] {
            if !reachable[p] {
                reachable[p] = true;
                queue.push(p);
            }
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gambler_ruin_probabilities() {
        // States 0..=4, absorbing at 0 and 4, fair coin in between.
        // Probability of hitting 4 from i is i/4.
        let chain = MarkovChain::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(1, 0.5), (3, 0.5)],
            vec![(2, 0.5), (4, 0.5)],
            vec![(4, 1.0)],
        ])
        .unwrap();
        let hit = chain.hitting_analysis(&[4]).unwrap();
        for i in 0..=4 {
            assert!(
                (hit.probability(i) - i as f64 / 4.0).abs() < 1e-10,
                "state {i}"
            );
        }
        // From state 0 the target is unreachable: infinite expected time.
        assert!(hit.expected_time(0).is_infinite());
        assert_eq!(hit.expected_time(4), 0.0);
    }

    #[test]
    fn expected_time_on_simple_walk() {
        // 0 -> 1 -> 2 deterministic; expected time from 0 to reach 2 is 2.
        let chain =
            MarkovChain::from_rows(vec![vec![(1, 1.0)], vec![(2, 1.0)], vec![(2, 1.0)]]).unwrap();
        let hit = chain.hitting_analysis(&[2]).unwrap();
        assert!((hit.expected_time(0) - 2.0).abs() < 1e-10);
        assert!((hit.expected_time(1) - 1.0).abs() < 1e-10);
        assert_eq!(hit.probability(0), 1.0);
    }

    #[test]
    fn geometric_expected_time() {
        // Stay with probability 0.75, move to the target with 0.25:
        // expected hitting time 4.
        let chain =
            MarkovChain::from_rows(vec![vec![(0, 0.75), (1, 0.25)], vec![(1, 1.0)]]).unwrap();
        let hit = chain.hitting_analysis(&[1]).unwrap();
        assert!((hit.expected_time(0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_or_invalid_targets() {
        let chain = MarkovChain::from_rows(vec![vec![(0, 1.0)]]).unwrap();
        assert!(chain.hitting_analysis(&[]).is_err());
        assert!(chain.hitting_analysis(&[5]).is_err());
    }

    #[test]
    fn all_states_targets_yields_trivial_analysis() {
        let chain = MarkovChain::from_rows(vec![vec![(1, 1.0)], vec![(0, 1.0)]]).unwrap();
        let hit = chain.hitting_analysis(&[0, 1]).unwrap();
        assert_eq!(hit.probabilities(), &[1.0, 1.0]);
        assert_eq!(hit.expected_times(), &[0.0, 0.0]);
        assert_eq!(hit.targets(), &[0, 1]);
    }
}
