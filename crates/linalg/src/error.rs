//! Error type shared by all numerical routines in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A matrix was expected to be square but is not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// The matrix is singular (or numerically singular) and cannot be factorised.
    SingularMatrix,
    /// A matrix was constructed from rows of differing lengths.
    RaggedRows,
    /// The linear program is infeasible.
    Infeasible,
    /// The linear program is unbounded in the direction of optimisation.
    Unbounded,
    /// The simplex solver exceeded its iteration budget (cycling safeguard).
    IterationLimit {
        /// The iteration budget that was exhausted.
        limit: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// An invalid value (NaN / infinite coefficient) was supplied.
    InvalidValue {
        /// Description of where the invalid value appeared.
        context: &'static str,
    },
    /// An index or entry count does not fit the compact (`u32`) sparse
    /// storage. Surfaced instead of silently wrapping when a caller hands a
    /// topology with more than `u32::MAX` rows, columns or entries to the
    /// checked `usize` build paths.
    IndexOverflow {
        /// The offending index or count.
        value: usize,
        /// The largest value the compact storage can represent.
        limit: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            LinalgError::DimensionMismatch {
                operation,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {operation}: expected {expected}, got {actual}"
            ),
            LinalgError::SingularMatrix => write!(f, "matrix is singular"),
            LinalgError::RaggedRows => write!(f, "rows have differing lengths"),
            LinalgError::Infeasible => write!(f, "linear program is infeasible"),
            LinalgError::Unbounded => write!(f, "linear program is unbounded"),
            LinalgError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            LinalgError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            LinalgError::InvalidValue { context } => {
                write!(f, "invalid value (NaN or infinity) in {context}")
            }
            LinalgError::IndexOverflow { value, limit } => {
                write!(
                    f,
                    "index or count {value} exceeds the compact sparse-storage limit {limit}"
                )
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let cases: Vec<(LinalgError, &str)> = vec![
            (LinalgError::NotSquare { rows: 2, cols: 3 }, "not square"),
            (
                LinalgError::DimensionMismatch {
                    operation: "matvec",
                    expected: 3,
                    actual: 2,
                },
                "matvec",
            ),
            (LinalgError::SingularMatrix, "singular"),
            (LinalgError::RaggedRows, "differing lengths"),
            (LinalgError::Infeasible, "infeasible"),
            (LinalgError::Unbounded, "unbounded"),
            (LinalgError::IterationLimit { limit: 10 }, "10"),
            (
                LinalgError::IndexOutOfBounds { index: 5, len: 3 },
                "out of bounds",
            ),
            (
                LinalgError::InvalidValue {
                    context: "objective",
                },
                "objective",
            ),
            (
                LinalgError::IndexOverflow {
                    value: 5_000_000_000,
                    limit: u32::MAX as usize,
                },
                "5000000000",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
