//! Row-major dense matrices.

use crate::{LinalgError, DEFAULT_TOLERANCE};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A row-major dense matrix of `f64` values.
///
/// The matrix is intentionally simple: storage is a single `Vec<f64>` and all
/// operations are `O(rows * cols)` or `O(rows * cols * inner)` loops. The MDPs
/// produced by the selfish-mining model have sparse transition structure and
/// are handled by [`crate::CsrMatrix`]; the dense type is used for the small
/// dense systems arising in policy evaluation and the simplex tableau.
///
/// # Example
///
/// ```
/// use sm_linalg::DenseMatrix;
///
/// # fn main() -> Result<(), sm_linalg::LinalgError> {
/// let identity = DenseMatrix::identity(3);
/// let m = DenseMatrix::from_rows(&[
///     vec![1.0, 2.0, 3.0],
///     vec![4.0, 5.0, 6.0],
///     vec![7.0, 8.0, 9.0],
/// ])?;
/// assert_eq!(m.multiply(&identity)?, m);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows do not all have the
    /// same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Ok(DenseMatrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::RaggedRows);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "from_row_major",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Returns a borrowed view of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns a mutable view of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = crate::dot(self.row(i), x);
        }
        Ok(out)
    }

    /// Matrix-matrix product `A * B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions differ.
    pub fn multiply(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "multiply",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) + aik * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn add_matrix(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the shapes differ.
    pub fn sub_matrix(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * alpha).collect(),
        }
    }

    /// Checks whether every row sums to 1 (within `tol`) and all entries are
    /// non-negative, i.e. whether the matrix is row-stochastic.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.rows).all(|i| {
            let row = self.row(i);
            row.iter().all(|&v| v >= -tol) && (row.iter().sum::<f64>() - 1.0).abs() <= tol
        })
    }

    /// Maximum absolute entry of the matrix.
    pub fn max_abs(&self) -> f64 {
        crate::infinity_norm(&self.data)
    }

    /// Returns `true` if the two matrices differ by at most
    /// [`DEFAULT_TOLERANCE`] in every entry.
    pub fn approx_eq(&self, other: &DenseMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && crate::max_abs_diff(&self.data, &other.data) <= DEFAULT_TOLERANCE
    }

    fn zip_with(
        &self,
        other: &DenseMatrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<DenseMatrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: op,
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Add for &DenseMatrix {
    type Output = DenseMatrix;

    fn add(self, rhs: &DenseMatrix) -> DenseMatrix {
        self.add_matrix(rhs)
            .expect("matrix addition shape mismatch")
    }
}

impl Sub for &DenseMatrix {
    type Output = DenseMatrix;

    fn sub(self, rhs: &DenseMatrix) -> DenseMatrix {
        self.sub_matrix(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &DenseMatrix {
    type Output = DenseMatrix;

    fn mul(self, rhs: &DenseMatrix) -> DenseMatrix {
        self.multiply(rhs)
            .expect("matrix multiplication shape mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity_have_expected_entries() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let id = DenseMatrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(err, LinalgError::RaggedRows);
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 4]).is_ok());
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matvec_computes_expected_product() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn multiply_by_identity_is_noop() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let id = DenseMatrix::identity(2);
        assert_eq!(m.multiply(&id).unwrap(), m);
        assert_eq!(id.multiply(&m).unwrap(), m);
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        let sum = (&a + &b).sub_matrix(&b).unwrap();
        assert!(sum.approx_eq(&a));
        let doubled = a.scale(2.0);
        assert_eq!(doubled.get(1, 1), 8.0);
        let diff = &doubled - &a;
        assert!(diff.approx_eq(&a));
    }

    #[test]
    fn operator_mul_matches_multiply() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 2.0]]).unwrap();
        assert_eq!(&a * &b, a.multiply(&b).unwrap());
    }

    #[test]
    fn row_stochastic_check() {
        let p = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.1, 0.9]]).unwrap();
        assert!(p.is_row_stochastic(1e-12));
        let q = DenseMatrix::from_rows(&[vec![0.5, 0.6], vec![0.1, 0.9]]).unwrap();
        assert!(!q.is_row_stochastic(1e-12));
        let neg = DenseMatrix::from_rows(&[vec![-0.1, 1.1]]).unwrap();
        assert!(!neg.is_row_stochastic(1e-12));
    }

    #[test]
    fn display_renders_all_rows() {
        let m = DenseMatrix::identity(2);
        let s = format!("{m}");
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn empty_matrix_from_rows() {
        let m = DenseMatrix::from_rows(&[]).unwrap();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.cols(), 0);
    }
}
