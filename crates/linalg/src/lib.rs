//! Dense and sparse linear algebra for the selfish-mining solver stack.
//!
//! This crate is the lowest-level substrate of the reproduction of
//! *"Fully Automated Selfish Mining Analysis in Efficient Proof Systems
//! Blockchains"* (PODC 2024). The paper solves mean-payoff Markov decision
//! processes with the off-the-shelf probabilistic model checker Storm; this
//! workspace instead builds its own solver stack, and everything numerical in
//! that stack bottoms out here:
//!
//! * [`DenseMatrix`] — a row-major dense matrix with the usual arithmetic.
//! * [`CsrMatrix`] — a compressed sparse row matrix used for transition
//!   matrices of Markov chains induced by strategies.
//! * [`LuDecomposition`] / [`solve_linear_system`] — LU factorisation with
//!   partial pivoting, used for policy evaluation (gain/bias equations).
//! * [`LinearProgram`] / [`SimplexSolver`] — a two-phase primal simplex
//!   solver used by the LP formulation of mean-payoff optimisation.
//!
//! # Example
//!
//! ```
//! use sm_linalg::{DenseMatrix, solve_linear_system};
//!
//! # fn main() -> Result<(), sm_linalg::LinalgError> {
//! let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
//! let x = solve_linear_system(&a, &[3.0, 4.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod error;
mod lu;
mod simplex;
mod sparse;
mod vector;

pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use lu::{solve_linear_system, LuDecomposition};
pub use simplex::{Comparison, LinearProgram, LpSolution, LpStatus, ObjectiveSense, SimplexSolver};
pub use sparse::{CsrMatrix, Triplet, COMPACT_INDEX_LIMIT};
pub use vector::{axpy, dot, infinity_norm, l1_norm, l2_norm, max_abs_diff, scale, span_seminorm};

/// Default numerical tolerance used across the crate when comparing floats.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;
