//! Compressed sparse row (CSR) matrices.
//!
//! The transition matrix of a Markov chain induced by a positional strategy in
//! the selfish-mining MDP is extremely sparse (each state has at most a few
//! dozen successors out of potentially hundreds of thousands of states), so
//! the Markov-chain routines in `sm-markov` operate on this type.
//!
//! Column indices and the row-pointer table are stored as `u32`: the largest
//! attack topologies stay far below four billion states/entries, and halving
//! the index width halves the sweep kernels' resident working set. The
//! `usize`-taking constructors convert with overflow *checks*
//! ([`LinalgError::IndexOverflow`]) — a topology that genuinely exceeds
//! `u32::MAX` fails loudly instead of wrapping.

use crate::{DenseMatrix, LinalgError};

/// The largest index or entry count the compact CSR storage can hold.
pub const COMPACT_INDEX_LIMIT: usize = u32::MAX as usize;

/// Checked `usize` → `u32` conversion for compact sparse storage.
#[inline]
pub(crate) fn compact_index(value: usize) -> Result<u32, LinalgError> {
    u32::try_from(value).map_err(|_| LinalgError::IndexOverflow {
        value,
        limit: COMPACT_INDEX_LIMIT,
    })
}

/// Checked conversion of a whole `usize` index array.
pub(crate) fn compact_indices(values: Vec<usize>) -> Result<Vec<u32>, LinalgError> {
    values.into_iter().map(compact_index).collect()
}

/// A `(row, col, value)` entry used to assemble a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value stored at `(row, col)`.
    pub value: f64,
}

impl Triplet {
    /// Convenience constructor.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// A compressed sparse row matrix of `f64` values with `u32` indices.
///
/// # Example
///
/// ```
/// use sm_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), sm_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(2, 2, &[
///     Triplet::new(0, 0, 0.5),
///     Triplet::new(0, 1, 0.5),
///     Triplet::new(1, 1, 1.0),
/// ])?;
/// assert_eq!(m.matvec(&[1.0, 2.0])?, vec![1.5, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    row_ptr: Vec<u32>,
    /// Column indices, sorted within each row.
    col_idx: Vec<u32>,
    /// Non-zero values aligned with `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets. Duplicate `(row, col)` entries are
    /// summed. Entries equal to zero are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if any triplet lies outside
    /// the `rows x cols` shape, [`LinalgError::InvalidValue`] if a value is
    /// not finite and [`LinalgError::IndexOverflow`] if an index or the entry
    /// count exceeds the compact `u32` storage.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, LinalgError> {
        for t in triplets {
            if t.row >= rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: t.row,
                    len: rows,
                });
            }
            if t.col >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: t.col,
                    len: cols,
                });
            }
            if !t.value.is_finite() {
                return Err(LinalgError::InvalidValue {
                    context: "sparse matrix entry",
                });
            }
        }
        // Count entries per row, then bucket and merge duplicates.
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for t in triplets {
            per_row[t.row].push((t.col, t.value));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0u32);
        for row in per_row.iter_mut() {
            row.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let col = row[i].0;
                let mut sum = 0.0;
                while i < row.len() && row[i].0 == col {
                    sum += row[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    col_idx.push(compact_index(col)?);
                    values.push(sum);
                }
            }
            row_ptr.push(compact_index(col_idx.len())?);
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from raw `usize` arrays: the indices are converted
    /// to the compact `u32` storage with overflow checks, then validated by
    /// [`CsrMatrix::from_raw_parts_u32`].
    ///
    /// This is the zero-copy entry point for callers that already hold a CSR
    /// layout — e.g. Markov chains extracted from the flat MDP transition
    /// arena — and must not pay a triplet round-trip.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOverflow`] if an index or count exceeds
    /// `u32::MAX`, plus every error of [`CsrMatrix::from_raw_parts_u32`].
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        // Convert *before* the structural validation so overflowing inputs
        // fail with the typed error even when the companion arrays are tiny.
        let row_ptr = compact_indices(row_ptr)?;
        let col_idx = compact_indices(col_idx)?;
        Self::from_raw_parts_u32(rows, cols, row_ptr, col_idx, values)
    }

    /// Builds a CSR matrix directly from its compact raw arrays, validating
    /// the invariants the accessors rely on: `row_ptr` must have length
    /// `rows + 1`, start at 0, be non-decreasing and end at the number of
    /// stored entries; column indices must be strictly increasing within each
    /// row and in bounds; values must be finite.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for malformed pointer
    /// arrays, [`LinalgError::IndexOutOfBounds`] for out-of-range columns and
    /// [`LinalgError::InvalidValue`] for non-finite values or unsorted /
    /// duplicate columns within a row.
    pub fn from_raw_parts_u32(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        if row_ptr.len() != rows + 1 || row_ptr.first() != Some(&0) {
            return Err(LinalgError::DimensionMismatch {
                operation: "csr from raw parts (row_ptr length)",
                expected: rows + 1,
                actual: row_ptr.len(),
            });
        }
        if col_idx.len() != values.len() || row_ptr[rows] as usize != col_idx.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "csr from raw parts (entry count)",
                expected: row_ptr[rows] as usize,
                actual: col_idx.len(),
            });
        }
        for row in 0..rows {
            let (start, end) = (row_ptr[row] as usize, row_ptr[row + 1] as usize);
            if start > end || end > col_idx.len() {
                return Err(LinalgError::DimensionMismatch {
                    operation: "csr from raw parts (row_ptr monotonicity)",
                    expected: start,
                    actual: end,
                });
            }
            for k in start..end {
                if col_idx[k] as usize >= cols {
                    return Err(LinalgError::IndexOutOfBounds {
                        index: col_idx[k] as usize,
                        len: cols,
                    });
                }
                if k > start && col_idx[k] <= col_idx[k - 1] {
                    return Err(LinalgError::InvalidValue {
                        context: "unsorted or duplicate column within csr row",
                    });
                }
                if !values[k].is_finite() {
                    return Err(LinalgError::InvalidValue {
                        context: "sparse matrix entry",
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Decomposes the matrix into its compact raw `(row_ptr, col_idx,
    /// values)` arrays, the inverse of [`CsrMatrix::from_raw_parts_u32`].
    pub fn into_raw_parts(self) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.row_ptr, self.col_idx, self.values)
    }

    /// Builds the CSR representation of a dense matrix, dropping zeros.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                let v = dense.get(i, j);
                if v != 0.0 {
                    triplets.push(Triplet::new(i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
            .expect("dense matrix indices are always in bounds")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Resident bytes of the index and value arrays (the quantity the compact
    /// `u32` storage halves relative to `usize` indices).
    pub fn resident_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<u32>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Returns the entry at `(row, col)` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (cols, vals) = self.row(row);
        // Stored columns always fit u32; a wider query column is not stored.
        let Ok(col) = u32::try_from(col) else {
            return 0.0;
        };
        match cols.binary_search(&col) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Returns the column indices and values of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> (&[u32], &[f64]) {
        assert!(row < self.rows, "row index out of bounds");
        let start = self.row_ptr[row] as usize;
        let end = self.row_ptr[row + 1] as usize;
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Iterates over all stored `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| Triplet::new(r, c as usize, v))
        })
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "sparse matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Transposed matrix-vector product `Aᵀ * x`, i.e. left multiplication
    /// `xᵀ A` — the operation used by power iteration on row-stochastic
    /// transition matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "sparse transpose matvec",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                out[c as usize] += v * xi;
            }
        }
        Ok(out)
    }

    /// Converts to a dense matrix. Intended for small matrices (tests,
    /// policy-evaluation systems), not for full MDP transition relations.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for t in self.iter() {
            dense.set(t.row, t.col, t.value);
        }
        dense
    }

    /// Checks whether the matrix is row-stochastic: all entries non-negative
    /// and every row sums to 1 within `tol`.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.rows).all(|i| {
            let (_, vals) = self.row(i);
            vals.iter().all(|&v| v >= -tol) && (vals.iter().sum::<f64>() - 1.0).abs() <= tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 0.5),
                Triplet::new(0, 2, 0.5),
                Triplet::new(1, 1, 1.0),
                Triplet::new(2, 0, 0.25),
                Triplet::new(2, 1, 0.25),
                Triplet::new(2, 2, 0.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sums_duplicates_and_drops_zeros() {
        let m = CsrMatrix::from_triplets(
            1,
            2,
            &[
                Triplet::new(0, 0, 0.25),
                Triplet::new(0, 0, 0.75),
                Triplet::new(0, 1, 0.0),
            ],
        )
        .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds_and_nan() {
        assert!(matches!(
            CsrMatrix::from_triplets(1, 1, &[Triplet::new(1, 0, 1.0)]),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, f64::NAN)]),
            Err(LinalgError::InvalidValue { .. })
        ));
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn transpose_matvec_matches_dense_transpose() {
        let m = sample();
        let x = vec![0.2, 0.3, 0.5];
        let sparse = m.transpose_matvec(&x).unwrap();
        let dense = m.to_dense().transpose().matvec(&x).unwrap();
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn row_view_is_sorted_by_column() {
        let m = sample();
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[0u32, 1, 2]);
        assert_eq!(vals, &[0.25, 0.25, 0.5]);
    }

    #[test]
    fn stochastic_check_detects_bad_rows() {
        assert!(sample().is_row_stochastic(1e-12));
        let bad =
            CsrMatrix::from_triplets(1, 2, &[Triplet::new(0, 0, 0.4), Triplet::new(0, 1, 0.4)])
                .unwrap();
        assert!(!bad.is_row_stochastic(1e-12));
    }

    #[test]
    fn dense_roundtrip_preserves_entries() {
        let m = sample();
        let roundtrip = CsrMatrix::from_dense(&m.to_dense());
        assert_eq!(m, roundtrip);
    }

    #[test]
    fn iter_yields_all_nonzeros() {
        let m = sample();
        assert_eq!(m.iter().count(), m.nnz());
        assert!(m.iter().all(|t| t.value != 0.0));
    }

    #[test]
    fn matvec_dimension_checks() {
        let m = sample();
        assert!(m.matvec(&[1.0, 2.0]).is_err());
        assert!(m.transpose_matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn raw_parts_roundtrip_preserves_matrix() {
        let m = sample();
        let (row_ptr, col_idx, values) = m.clone().into_raw_parts();
        let rebuilt = CsrMatrix::from_raw_parts_u32(3, 3, row_ptr, col_idx, values).unwrap();
        assert_eq!(m, rebuilt);
        // The checked usize path builds the same matrix.
        let (row_ptr, col_idx, values) = m.clone().into_raw_parts();
        let widened = CsrMatrix::from_raw_parts(
            3,
            3,
            row_ptr.iter().map(|&x| x as usize).collect(),
            col_idx.iter().map(|&x| x as usize).collect(),
            values,
        )
        .unwrap();
        assert_eq!(m, widened);
    }

    #[test]
    fn from_raw_parts_validates_invariants() {
        // row_ptr wrong length.
        assert!(matches!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        // row_ptr not starting at zero.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 1, vec![1, 1], vec![], vec![]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        // Entry count mismatch.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![0], vec![1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        // Non-monotone row_ptr.
        assert!(matches!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        // Column out of bounds.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![3], vec![1.0]),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
        // Unsorted columns within a row.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![0.5, 0.5]),
            Err(LinalgError::InvalidValue { .. })
        ));
        // Duplicate columns within a row.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![0.5, 0.5]),
            Err(LinalgError::InvalidValue { .. })
        ));
        // Non-finite value.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![0], vec![f64::NAN]),
            Err(LinalgError::InvalidValue { .. })
        ));
        // A well-formed empty row is fine.
        let m = CsrMatrix::from_raw_parts(2, 2, vec![0, 0, 1], vec![1], vec![2.0]).unwrap();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn usize_inputs_beyond_u32_fail_with_the_typed_overflow_error() {
        // The conversion is checked *before* structural validation, so the
        // companion arrays can stay tiny — no giant allocations needed to
        // exercise the overflow path.
        let too_big = u32::MAX as usize + 1;
        assert_eq!(
            CsrMatrix::from_raw_parts(1, 1, vec![0, too_big], vec![0], vec![1.0]).unwrap_err(),
            LinalgError::IndexOverflow {
                value: too_big,
                limit: COMPACT_INDEX_LIMIT,
            }
        );
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![too_big], vec![1.0]),
            Err(LinalgError::IndexOverflow { .. })
        ));
    }
}
