//! A two-phase primal simplex solver for small dense linear programs.
//!
//! The LP route to mean-payoff optimisation in `sm-mdp` (used as an
//! independent cross-check of value/policy iteration, mirroring how the paper
//! relies on a model checker with multiple engines) produces LPs with a few
//! thousand constraints at most, so a dense tableau implementation with
//! Bland's anti-cycling rule is sufficient and easy to audit.

use crate::LinalgError;

/// Direction of optimisation for a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `lhs <= rhs`
    LessEq,
    /// `lhs >= rhs`
    GreaterEq,
    /// `lhs == rhs`
    Equal,
}

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The LP has no feasible point.
    Infeasible,
    /// The LP is unbounded in the direction of optimisation.
    Unbounded,
}

/// Solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Optimal objective value (in the original sense of the program).
    pub objective: f64,
    /// Values of the original variables (in the order they were added).
    pub values: Vec<f64>,
}

#[derive(Debug, Clone)]
struct Constraint {
    coefficients: Vec<(usize, f64)>,
    comparison: Comparison,
    rhs: f64,
}

/// Whether a variable may take negative values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VariableKind {
    NonNegative,
    Free,
}

/// A linear program assembled incrementally.
///
/// Variables are referenced by the index returned from
/// [`LinearProgram::add_variable`] / [`LinearProgram::add_free_variable`].
///
/// # Example
///
/// ```
/// use sm_linalg::{Comparison, LinearProgram, LpStatus, ObjectiveSense, SimplexSolver};
///
/// # fn main() -> Result<(), sm_linalg::LinalgError> {
/// // maximize 3x + 2y subject to x + y <= 4, x <= 2, x,y >= 0
/// let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
/// let x = lp.add_variable(3.0);
/// let y = lp.add_variable(2.0);
/// lp.add_constraint(&[(x, 1.0), (y, 1.0)], Comparison::LessEq, 4.0)?;
/// lp.add_constraint(&[(x, 1.0)], Comparison::LessEq, 2.0)?;
/// let solution = SimplexSolver::default().solve(&lp)?;
/// assert_eq!(solution.status, LpStatus::Optimal);
/// assert!((solution.objective - 10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    sense: ObjectiveSense,
    objective: Vec<f64>,
    kinds: Vec<VariableKind>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program with the given optimisation sense.
    pub fn new(sense: ObjectiveSense) -> Self {
        LinearProgram {
            sense,
            objective: Vec::new(),
            kinds: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a non-negative variable with the given objective coefficient and
    /// returns its index.
    pub fn add_variable(&mut self, objective_coefficient: f64) -> usize {
        self.objective.push(objective_coefficient);
        self.kinds.push(VariableKind::NonNegative);
        self.objective.len() - 1
    }

    /// Adds a free (unbounded in both directions) variable with the given
    /// objective coefficient and returns its index.
    pub fn add_free_variable(&mut self, objective_coefficient: f64) -> usize {
        self.objective.push(objective_coefficient);
        self.kinds.push(VariableKind::Free);
        self.objective.len() - 1
    }

    /// Number of variables added so far.
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimisation sense of the program.
    pub fn sense(&self) -> ObjectiveSense {
        self.sense
    }

    /// Adds the constraint `sum coeff_i * x_i  <cmp>  rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if a variable index has not
    /// been created and [`LinalgError::InvalidValue`] if any coefficient or
    /// the right-hand side is not finite.
    pub fn add_constraint(
        &mut self,
        coefficients: &[(usize, f64)],
        comparison: Comparison,
        rhs: f64,
    ) -> Result<(), LinalgError> {
        for &(idx, coeff) in coefficients {
            if idx >= self.num_variables() {
                return Err(LinalgError::IndexOutOfBounds {
                    index: idx,
                    len: self.num_variables(),
                });
            }
            if !coeff.is_finite() {
                return Err(LinalgError::InvalidValue {
                    context: "constraint coefficient",
                });
            }
        }
        if !rhs.is_finite() {
            return Err(LinalgError::InvalidValue {
                context: "constraint right-hand side",
            });
        }
        self.constraints.push(Constraint {
            coefficients: coefficients.to_vec(),
            comparison,
            rhs,
        });
        Ok(())
    }
}

/// Two-phase primal simplex solver with Bland's anti-cycling rule.
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    /// Maximum number of pivots before giving up (per phase).
    pub max_iterations: usize,
    /// Numerical tolerance for pivot and optimality tests.
    pub tolerance: f64,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        SimplexSolver {
            max_iterations: 100_000,
            tolerance: 1e-9,
        }
    }
}

impl SimplexSolver {
    /// Creates a solver with a custom iteration budget.
    pub fn with_max_iterations(max_iterations: usize) -> Self {
        SimplexSolver {
            max_iterations,
            ..SimplexSolver::default()
        }
    }

    /// Solves the given linear program.
    ///
    /// Infeasibility and unboundedness are reported through
    /// [`LpSolution::status`] rather than as errors, so that callers can
    /// branch on them without string matching.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IterationLimit`] if the pivot budget is
    /// exhausted, which for non-degenerate inputs indicates a bug rather than
    /// a property of the program.
    pub fn solve(&self, lp: &LinearProgram) -> Result<LpSolution, LinalgError> {
        // --- Convert to standard form: maximise cᵀx, Ax = b, x >= 0, b >= 0.
        //
        // Free variables are split into a difference of two non-negative
        // variables. Inequalities receive slack/surplus variables. Rows with
        // negative rhs are negated.
        let n_orig = lp.num_variables();
        // Column mapping: for each original variable, (positive column, optional negative column).
        let mut col_of: Vec<(usize, Option<usize>)> = Vec::with_capacity(n_orig);
        let mut n_cols = 0usize;
        for kind in &lp.kinds {
            match kind {
                VariableKind::NonNegative => {
                    col_of.push((n_cols, None));
                    n_cols += 1;
                }
                VariableKind::Free => {
                    col_of.push((n_cols, Some(n_cols + 1)));
                    n_cols += 2;
                }
            }
        }
        let n_rows = lp.num_constraints();

        // Objective in "maximise" orientation.
        let sense_factor = match lp.sense {
            ObjectiveSense::Maximize => 1.0,
            ObjectiveSense::Minimize => -1.0,
        };
        let mut slack_count = 0;
        for c in &lp.constraints {
            if c.comparison != Comparison::Equal {
                slack_count += 1;
            }
        }
        let total_cols = n_cols + slack_count;

        let mut a = vec![vec![0.0; total_cols]; n_rows];
        let mut b = vec![0.0; n_rows];
        let mut obj = vec![0.0; total_cols];
        for (var, &coeff) in lp.objective.iter().enumerate() {
            let (pos, neg) = col_of[var];
            obj[pos] += sense_factor * coeff;
            if let Some(neg) = neg {
                obj[neg] -= sense_factor * coeff;
            }
        }

        let mut slack_idx = n_cols;
        for (row, c) in lp.constraints.iter().enumerate() {
            for &(var, coeff) in &c.coefficients {
                let (pos, neg) = col_of[var];
                a[row][pos] += coeff;
                if let Some(neg) = neg {
                    a[row][neg] -= coeff;
                }
            }
            b[row] = c.rhs;
            match c.comparison {
                Comparison::LessEq => {
                    a[row][slack_idx] = 1.0;
                    slack_idx += 1;
                }
                Comparison::GreaterEq => {
                    a[row][slack_idx] = -1.0;
                    slack_idx += 1;
                }
                Comparison::Equal => {}
            }
            if b[row] < 0.0 {
                for v in a[row].iter_mut() {
                    *v = -*v;
                }
                b[row] = -b[row];
            }
        }

        // --- Phase 1: find a basic feasible solution with artificial variables.
        let mut tableau = Tableau::new(a, b, total_cols, self.tolerance);
        match tableau.phase_one(self.max_iterations)? {
            PhaseOneOutcome::Feasible => {}
            PhaseOneOutcome::Infeasible => {
                return Ok(LpSolution {
                    status: LpStatus::Infeasible,
                    objective: f64::NAN,
                    values: vec![f64::NAN; n_orig],
                });
            }
        }

        // --- Phase 2: optimise the real objective.
        let outcome = tableau.phase_two(&obj, self.max_iterations)?;
        if outcome == PhaseTwoOutcome::Unbounded {
            return Ok(LpSolution {
                status: LpStatus::Unbounded,
                objective: if lp.sense == ObjectiveSense::Maximize {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                },
                values: vec![f64::NAN; n_orig],
            });
        }

        let x = tableau.primal_solution();
        let mut values = vec![0.0; n_orig];
        for (var, &(pos, neg)) in col_of.iter().enumerate() {
            values[var] = x[pos] - neg.map_or(0.0, |n| x[n]);
        }
        let objective: f64 = lp.objective.iter().zip(&values).map(|(c, v)| c * v).sum();
        Ok(LpSolution {
            status: LpStatus::Optimal,
            objective,
            values,
        })
    }
}

#[derive(Debug, PartialEq, Eq)]
enum PhaseOneOutcome {
    Feasible,
    Infeasible,
}

#[derive(Debug, PartialEq, Eq)]
enum PhaseTwoOutcome {
    Optimal,
    Unbounded,
}

/// Dense simplex tableau over the standard-form problem, including artificial
/// variables appended after the structural + slack columns.
#[derive(Debug)]
struct Tableau {
    /// Constraint matrix including artificial columns.
    a: Vec<Vec<f64>>,
    /// Right-hand sides (always kept non-negative).
    b: Vec<f64>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    /// Number of structural + slack columns (artificials start here).
    n_structural: usize,
    tolerance: f64,
}

impl Tableau {
    fn new(mut a: Vec<Vec<f64>>, b: Vec<f64>, n_structural: usize, tolerance: f64) -> Self {
        let n_rows = a.len();
        // Append an identity of artificial variables.
        for (i, row) in a.iter_mut().enumerate() {
            row.extend((0..n_rows).map(|j| if i == j { 1.0 } else { 0.0 }));
        }
        let basis = (0..n_rows).map(|i| n_structural + i).collect();
        Tableau {
            a,
            b,
            basis,
            n_structural,
            tolerance,
        }
    }

    fn n_rows(&self) -> usize {
        self.a.len()
    }

    fn n_cols(&self) -> usize {
        self.a.first().map_or(0, |r| r.len())
    }

    /// Runs the simplex method on the phase-1 objective (minimise the sum of
    /// artificial variables, expressed as a maximisation of their negation).
    fn phase_one(&mut self, max_iterations: usize) -> Result<PhaseOneOutcome, LinalgError> {
        let mut obj = vec![0.0; self.n_cols()];
        for slot in obj.iter_mut().skip(self.n_structural) {
            *slot = -1.0;
        }
        let outcome = self.optimize(&obj, max_iterations, /* allow_artificial */ true)?;
        debug_assert_ne!(outcome, PhaseTwoOutcome::Unbounded, "phase 1 is bounded");
        let artificial_sum: f64 = (0..self.n_rows())
            .filter(|&i| self.basis[i] >= self.n_structural)
            .map(|i| self.b[i])
            .sum();
        if artificial_sum > 1e-7 {
            return Ok(PhaseOneOutcome::Infeasible);
        }
        // Drive any remaining artificial variables out of the basis if possible.
        for row in 0..self.n_rows() {
            if self.basis[row] >= self.n_structural {
                if let Some(col) =
                    (0..self.n_structural).find(|&c| self.a[row][c].abs() > self.tolerance)
                {
                    self.pivot(row, col);
                }
                // If the whole row is zero the constraint is redundant; the
                // artificial stays basic at value 0, which is harmless.
            }
        }
        Ok(PhaseOneOutcome::Feasible)
    }

    fn phase_two(
        &mut self,
        structural_obj: &[f64],
        max_iterations: usize,
    ) -> Result<PhaseTwoOutcome, LinalgError> {
        let mut obj = vec![0.0; self.n_cols()];
        obj[..structural_obj.len()].copy_from_slice(structural_obj);
        self.optimize(&obj, max_iterations, /* allow_artificial */ false)
    }

    /// Primal simplex loop with Bland's rule on the reduced costs.
    fn optimize(
        &mut self,
        obj: &[f64],
        max_iterations: usize,
        allow_artificial: bool,
    ) -> Result<PhaseTwoOutcome, LinalgError> {
        let allowed_cols = if allow_artificial {
            self.n_cols()
        } else {
            self.n_structural
        };
        for _ in 0..max_iterations {
            let duals = self.dual_values(obj);
            // Entering column: smallest index with positive reduced cost (Bland).
            let entering = (0..allowed_cols).find(|&col| {
                if self.basis.contains(&col) {
                    return false;
                }
                let reduced = obj[col] - crate::dot(&duals, &self.column(col));
                reduced > self.tolerance
            });
            let Some(col) = entering else {
                return Ok(PhaseTwoOutcome::Optimal);
            };
            // Ratio test: leaving row minimising b_i / a_ic over positive a_ic,
            // tie-broken by smallest basis index (Bland).
            let mut leaving: Option<(usize, f64)> = None;
            for row in 0..self.n_rows() {
                let coeff = self.a[row][col];
                if coeff > self.tolerance {
                    let ratio = self.b[row] / coeff;
                    let better = match leaving {
                        None => true,
                        Some((best_row, best_ratio)) => {
                            ratio < best_ratio - self.tolerance
                                || (ratio <= best_ratio + self.tolerance
                                    && self.basis[row] < self.basis[best_row])
                        }
                    };
                    if better {
                        leaving = Some((row, ratio));
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return Ok(PhaseTwoOutcome::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LinalgError::IterationLimit {
            limit: max_iterations,
        })
    }

    /// Simplex multipliers y = c_B · B⁻¹, computed implicitly: because the
    /// tableau is kept in "product form" (rows already transformed), the
    /// reduced cost of column j is obj[j] - Σ_i c_{B(i)} · a[i][j].
    fn dual_values(&self, obj: &[f64]) -> Vec<f64> {
        (0..self.n_rows()).map(|i| obj[self.basis[i]]).collect()
    }

    fn column(&self, col: usize) -> Vec<f64> {
        (0..self.n_rows()).map(|i| self.a[i][col]).collect()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.a[row][col];
        debug_assert!(pivot.abs() > 0.0, "pivot on zero element");
        for v in self.a[row].iter_mut() {
            *v /= pivot;
        }
        self.b[row] /= pivot;
        for other in 0..self.n_rows() {
            if other == row {
                continue;
            }
            let factor = self.a[other][col];
            if factor == 0.0 {
                continue;
            }
            for c in 0..self.n_cols() {
                self.a[other][c] -= factor * self.a[row][c];
            }
            self.b[other] -= factor * self.b[row];
        }
        self.basis[row] = col;
    }

    fn primal_solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_cols()];
        for (row, &basic) in self.basis.iter().enumerate() {
            x[basic] = self.b[row];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn maximizes_textbook_program() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
        let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(5.0);
        lp.add_constraint(&[(x, 1.0)], Comparison::LessEq, 4.0)
            .unwrap();
        lp.add_constraint(&[(y, 2.0)], Comparison::LessEq, 12.0)
            .unwrap();
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Comparison::LessEq, 18.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.values[x], 2.0);
        assert_close(sol.values[y], 6.0);
    }

    #[test]
    fn minimizes_with_greater_eq_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3
        let mut lp = LinearProgram::new(ObjectiveSense::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Comparison::GreaterEq, 10.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Comparison::GreaterEq, 2.0)
            .unwrap();
        lp.add_constraint(&[(y, 1.0)], Comparison::GreaterEq, 3.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        // Optimal: y at its lower bound 3, x = 7.
        assert_close(sol.values[x], 7.0);
        assert_close(sol.values[y], 3.0);
        assert_close(sol.objective, 23.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(&[(x, 1.0)], Comparison::LessEq, 1.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Comparison::GreaterEq, 2.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(&[(x, 1.0)], Comparison::GreaterEq, 1.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
        assert!(sol.objective.is_infinite());
    }

    #[test]
    fn equality_constraints_are_respected() {
        // max x + y s.t. x + y = 5, x <= 3
        let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Comparison::Equal, 5.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Comparison::LessEq, 3.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 5.0);
        assert_close(sol.values[x] + sol.values[y], 5.0);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // min z s.t. z >= x - 4, z >= -x, with x fixed to 1  => z = max(-3, -1) = -1
        let mut lp = LinearProgram::new(ObjectiveSense::Minimize);
        let z = lp.add_free_variable(1.0);
        let x = lp.add_variable(0.0);
        lp.add_constraint(&[(x, 1.0)], Comparison::Equal, 1.0)
            .unwrap();
        lp.add_constraint(&[(z, 1.0), (x, -1.0)], Comparison::GreaterEq, -4.0)
            .unwrap();
        lp.add_constraint(&[(z, 1.0), (x, 1.0)], Comparison::GreaterEq, 0.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[z], -1.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // max -x s.t. -x <= -2  (i.e. x >= 2); optimum x = 2.
        let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
        let x = lp.add_variable(-1.0);
        lp.add_constraint(&[(x, -1.0)], Comparison::LessEq, -2.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x], 2.0);
        assert_close(sol.objective, -2.0);
    }

    #[test]
    fn rejects_bad_variable_indices_and_nan() {
        let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
        let _x = lp.add_variable(1.0);
        assert!(lp
            .add_constraint(&[(7, 1.0)], Comparison::LessEq, 1.0)
            .is_err());
        assert!(lp
            .add_constraint(&[(0, f64::NAN)], Comparison::LessEq, 1.0)
            .is_err());
        assert!(lp
            .add_constraint(&[(0, 1.0)], Comparison::LessEq, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn degenerate_program_terminates() {
        // A classic degenerate LP; Bland's rule must terminate.
        let mut lp = LinearProgram::new(ObjectiveSense::Maximize);
        let x1 = lp.add_variable(10.0);
        let x2 = lp.add_variable(-57.0);
        let x3 = lp.add_variable(-9.0);
        let x4 = lp.add_variable(-24.0);
        lp.add_constraint(
            &[(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Comparison::LessEq,
            0.0,
        )
        .unwrap();
        lp.add_constraint(
            &[(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Comparison::LessEq,
            0.0,
        )
        .unwrap();
        lp.add_constraint(&[(x1, 1.0)], Comparison::LessEq, 1.0)
            .unwrap();
        let sol = SimplexSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0);
    }
}
