//! LU decomposition with partial pivoting and linear-system solving.
//!
//! Policy evaluation in mean-payoff MDPs (the gain/bias equations used by
//! Howard policy iteration in `sm-mdp`) reduces to solving moderate-size dense
//! linear systems; this module provides the factorisation used for that.

use crate::{DenseMatrix, LinalgError};

/// An LU factorisation `P·A = L·U` of a square matrix with partial pivoting.
///
/// # Example
///
/// ```
/// use sm_linalg::{DenseMatrix, LuDecomposition};
///
/// # fn main() -> Result<(), sm_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strictly lower, unit diagonal implicit) and U (upper) factors.
    lu: DenseMatrix,
    /// Row permutation applied to the input matrix.
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    perm_sign: f64,
}

/// Pivot entries smaller than this in absolute value are treated as zero.
const PIVOT_TOLERANCE: f64 = 1e-12;

impl LuDecomposition {
    /// Factorises the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square and
    /// [`LinalgError::SingularMatrix`] if a pivot smaller than the internal
    /// tolerance is encountered.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for col in 0..n {
            // Find the pivot row: largest absolute value in this column at or
            // below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for row in (col + 1)..n {
                let v = lu.get(row, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < PIVOT_TOLERANCE {
                return Err(LinalgError::SingularMatrix);
            }
            if pivot_row != col {
                swap_rows(&mut lu, pivot_row, col);
                perm.swap(pivot_row, col);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(col, col);
            for row in (col + 1)..n {
                let factor = lu.get(row, col) / pivot;
                lu.set(row, col, factor);
                for k in (col + 1)..n {
                    let v = lu.get(row, k) - factor * lu.get(col, k);
                    lu.set(row, k, v);
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu.get(i, j) * xj;
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu.get(i, j) * xj;
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Determinant of the factorised matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Computes the inverse matrix by solving against the identity columns.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`].
    pub fn inverse(&self) -> Result<DenseMatrix, LinalgError> {
        let n = self.dim();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut unit = vec![0.0; n];
        for col in 0..n {
            unit[col] = 1.0;
            let x = self.solve(&unit)?;
            for (row, &value) in x.iter().enumerate() {
                inv.set(row, col, value);
            }
            unit[col] = 0.0;
        }
        Ok(inv)
    }
}

fn swap_rows(m: &mut DenseMatrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    for col in 0..m.cols() {
        let va = m.get(a, col);
        let vb = m.get(b, col);
        m.set(a, col, vb);
        m.set(b, col, va);
    }
}

/// Solves the square linear system `A x = b` with LU decomposition and partial
/// pivoting. This is a convenience wrapper around [`LuDecomposition`].
///
/// # Errors
///
/// Returns an error if `A` is not square, is singular, or the dimensions of
/// `A` and `b` do not match.
pub fn solve_linear_system(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_two_by_two() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve_linear_system(&a, &[3.0, 4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve_linear_system(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(
            LuDecomposition::new(&a).unwrap_err(),
            LinalgError::SingularMatrix
        );
    }

    #[test]
    fn rejects_non_square_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn determinant_of_triangular_matrix_is_product_of_diagonal() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![0.0, 0.0, 4.0],
        ])
        .unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - 24.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_accounts_for_permutation_sign() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 7.0, 2.0],
            vec![3.0, 6.0, 1.0],
            vec![2.0, 5.0, 3.0],
        ])
        .unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.multiply(&inv).unwrap();
        assert!(prod.approx_eq(&DenseMatrix::identity(3)));
    }

    #[test]
    fn solve_validates_rhs_length() {
        let a = DenseMatrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn residual_is_small_on_moderate_system() {
        // Deterministic pseudo-random matrix: diagonal dominance keeps it
        // well-conditioned without needing an RNG.
        let n = 20;
        let mut rows = Vec::new();
        for i in 0..n {
            let mut row = Vec::with_capacity(n);
            for j in 0..n {
                let v = ((i * 31 + j * 17 + 7) % 13) as f64 / 13.0;
                row.push(if i == j { v + (n as f64) } else { v });
            }
            rows.push(row);
        }
        let a = DenseMatrix::from_rows(&rows).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve_linear_system(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(crate::max_abs_diff(&ax, &b) < 1e-9);
    }
}
