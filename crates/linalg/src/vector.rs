//! Free functions on `&[f64]` vectors.
//!
//! These are deliberately simple, allocation-free helpers; the solver loops in
//! `sm-mdp` call them on every sweep so they are written for clarity and easy
//! auto-vectorisation rather than generality.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(sm_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Computes `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Maximum absolute entry (infinity norm). Returns 0 for the empty vector.
pub fn infinity_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Sum of absolute entries (L1 norm).
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Euclidean (L2) norm.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Maximum absolute component-wise difference of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0, |acc, (x, y)| acc.max((x - y).abs()))
}

/// Span seminorm `max(x) - min(x)`, the convergence measure used by relative
/// value iteration for mean-payoff objectives. Returns 0 for the empty vector.
pub fn span_seminorm(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn scale_multiplies_every_entry() {
        let mut x = vec![1.0, -2.0, 4.0];
        scale(-0.5, &mut x);
        assert_eq!(x, vec![-0.5, 1.0, -2.0]);
    }

    #[test]
    fn norms_agree_on_simple_vectors() {
        let x = [3.0, -4.0];
        assert_eq!(infinity_norm(&x), 4.0);
        assert_eq!(l1_norm(&x), 7.0);
        assert!((l2_norm(&x) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norms_of_empty_vector_are_zero() {
        assert_eq!(infinity_norm(&[]), 0.0);
        assert_eq!(l1_norm(&[]), 0.0);
        assert_eq!(l2_norm(&[]), 0.0);
        assert_eq!(span_seminorm(&[]), 0.0);
    }

    #[test]
    fn span_seminorm_ignores_constant_shift() {
        let x = [1.0, 5.0, 3.0];
        let shifted = [101.0, 105.0, 103.0];
        assert_eq!(span_seminorm(&x), span_seminorm(&shifted));
        assert_eq!(span_seminorm(&x), 4.0);
    }

    #[test]
    fn max_abs_diff_detects_largest_gap() {
        assert_eq!(max_abs_diff(&[1.0, 2.0, 3.0], &[1.0, 0.0, 3.5]), 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
