//! Howard policy iteration for mean-payoff MDPs (multichain-safe).
//!
//! Policy iteration evaluates candidate strategies *exactly* (up to floating
//! point) by computing the gain and bias of the induced Markov chain, and
//! improves greedily until no improvement exists. Unlike the unichain-only
//! textbook variant, the evaluation and improvement steps here follow the
//! multichain formulation (Puterman, Ch. 9): gains may differ across states
//! while a strategy is still suboptimal, even if — as in the selfish-mining
//! MDP — every *reasonable* strategy eventually induces a single recurrent
//! class.
//!
//! It is used as a high-precision cross-check of
//! [`crate::RelativeValueIteration`] on small and medium models, mirroring how
//! the paper can switch Storm engines.

use crate::{Mdp, MdpError, PositionalStrategy, TransitionRewards};
use sm_linalg::{solve_linear_system, DenseMatrix};
use sm_markov::{long_run_average_reward, StateClass};

/// Exact evaluation of a positional strategy under the mean-payoff objective:
/// per-state gain and a bias vector (normalised to 0 at one reference state
/// per recurrent class of the induced chain).
#[derive(Debug, Clone)]
pub struct PolicyEvaluation {
    /// Long-run average reward of the strategy, per state.
    pub gain: Vec<f64>,
    /// Bias (relative value) vector.
    pub bias: Vec<f64>,
}

impl PolicyEvaluation {
    /// Evaluates `strategy` on `mdp` with `rewards`.
    ///
    /// The gain is computed from the stationary distributions of the recurrent
    /// classes of the induced chain (weighted by absorption probabilities for
    /// transient states); the bias solves
    /// `h(s) = r_σ(s) − g(s) + Σ_{s'} P_σ(s'|s) h(s')`
    /// with `h = 0` pinned at one state of every recurrent class.
    ///
    /// # Errors
    ///
    /// Returns an error if the strategy or rewards do not match the model or
    /// if a linear solve fails.
    pub fn evaluate(
        mdp: &Mdp,
        rewards: &TransitionRewards,
        strategy: &PositionalStrategy,
    ) -> Result<Self, MdpError> {
        let n = mdp.num_states();
        let r_sigma = rewards.strategy_rewards(mdp, strategy)?;
        let chain = mdp.induced_chain(strategy)?;
        let gain = long_run_average_reward(&chain, &r_sigma)?;

        // Pin one reference state per recurrent class.
        let scc = chain.classify();
        let mut pinned = vec![false; n];
        let mut seen_class = std::collections::HashSet::new();
        for (s, class) in scc.state_classes().iter().enumerate() {
            if let StateClass::Recurrent { class } = class {
                if seen_class.insert(*class) {
                    pinned[s] = true;
                }
            }
        }

        // Unknowns: bias of every non-pinned state.
        let mut column_of = vec![usize::MAX; n];
        let mut next_col = 0;
        for s in 0..n {
            if !pinned[s] {
                column_of[s] = next_col;
                next_col += 1;
            }
        }
        let m = next_col;
        let mut bias = vec![0.0; n];
        if m > 0 {
            let mut a = DenseMatrix::zeros(m, m);
            let mut b = vec![0.0; m];
            let mut row = 0;
            for s in 0..n {
                if pinned[s] {
                    continue;
                }
                // h(s) − Σ P(s'|s) h(s') = r(s) − g(s)
                let c = column_of[s];
                a.set(row, c, a.get(row, c) + 1.0);
                let (targets, probs) = mdp.successors(s, strategy.action(s));
                for (&t, &p) in targets.iter().zip(probs) {
                    let t = t as usize;
                    if !pinned[t] {
                        let ct = column_of[t];
                        a.set(row, ct, a.get(row, ct) - p);
                    }
                }
                b[row] = r_sigma[s] - gain[s];
                row += 1;
            }
            let h = solve_linear_system(&a, &b)?;
            for s in 0..n {
                if !pinned[s] {
                    bias[s] = h[column_of[s]];
                }
            }
        }
        Ok(PolicyEvaluation { gain, bias })
    }

    /// Gain at the given state (convenience accessor).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn gain_at(&self, state: usize) -> f64 {
        self.gain[state]
    }
}

/// Howard policy iteration for the maximal mean-payoff objective.
///
/// # Example
///
/// ```
/// use sm_mdp::{MdpBuilder, PolicyIteration, TransitionRewards};
///
/// # fn main() -> Result<(), sm_mdp::MdpError> {
/// let mut b = MdpBuilder::new(2);
/// b.add_action(0, "stay", vec![(0, 1.0)])?;
/// b.add_action(0, "go", vec![(1, 1.0)])?;
/// b.add_action(1, "loop", vec![(1, 1.0)])?;
/// let mdp = b.build(0)?;
/// let r = TransitionRewards::from_fn(&mdp, |s, _, _| if s == 1 { 2.0 } else { 1.0 });
/// let (gain, strategy) = PolicyIteration::default().solve(&mdp, &r)?;
/// assert!((gain - 2.0).abs() < 1e-9);
/// assert_eq!(strategy.action(0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PolicyIteration {
    /// Improvement tolerance: an action must improve the gain or bias Bellman
    /// value by more than this to replace the incumbent (guards against
    /// cycling on floating-point ties).
    pub improvement_tolerance: f64,
    /// Maximum number of policy-improvement rounds.
    pub max_iterations: usize,
}

impl Default for PolicyIteration {
    fn default() -> Self {
        PolicyIteration {
            improvement_tolerance: 1e-9,
            max_iterations: 10_000,
        }
    }
}

impl PolicyIteration {
    /// Runs policy iteration and returns the optimal gain *at the initial
    /// state* together with an optimal positional strategy.
    ///
    /// # Errors
    ///
    /// Returns an error if the rewards do not match the model, if policy
    /// evaluation fails, or if the iteration budget is exhausted.
    pub fn solve(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
    ) -> Result<(f64, PositionalStrategy), MdpError> {
        let (eval, strategy) = self.solve_with_evaluation(mdp, rewards)?;
        Ok((eval.gain_at(mdp.initial_state()), strategy))
    }

    /// Like [`PolicyIteration::solve`] but also returns the full evaluation
    /// (per-state gains and biases) of the optimal strategy.
    ///
    /// # Errors
    ///
    /// Same as [`PolicyIteration::solve`].
    pub fn solve_with_evaluation(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
    ) -> Result<(PolicyEvaluation, PositionalStrategy), MdpError> {
        if !rewards.matches(mdp) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "rewards do not match MDP shape".to_string(),
            });
        }
        let n = mdp.num_states();
        // Mirror the value-iteration guard: a state with an empty action range
        // has no policy to iterate on and must fail loudly, not via a later
        // panic or a NaN evaluation.
        if let Some(state) = (0..n).find(|&s| mdp.num_actions(s) == 0) {
            return Err(MdpError::NoActions { state });
        }
        let tol = self.improvement_tolerance;
        let mut strategy = PositionalStrategy::uniform_first_action(n);

        for _ in 0..self.max_iterations {
            let eval = PolicyEvaluation::evaluate(mdp, rewards, &strategy)?;
            let mut improved = false;
            let mut next = strategy.clone();
            for s in 0..n {
                let current = strategy.action(s);
                // Stage 1: improve the expected future gain Σ P(s'|s,a) g(s').
                let gain_of = |a: usize| -> f64 {
                    let (targets, probs) = mdp.successors(s, a);
                    targets
                        .iter()
                        .zip(probs)
                        .map(|(&t, &p)| p * eval.gain[t as usize])
                        .sum()
                };
                let current_gain = gain_of(current);
                let mut best_gain = current_gain;
                let mut best_gain_action = current;
                for a in 0..mdp.num_actions(s) {
                    let g = gain_of(a);
                    if g > best_gain + tol {
                        best_gain = g;
                        best_gain_action = a;
                    }
                }
                if best_gain_action != current {
                    next.set_action(s, best_gain_action);
                    improved = true;
                    continue;
                }
                // Stage 2: among gain-maximising actions, improve the bias
                // Bellman value r̄(s,a) − g(s) + Σ P h(s').
                let bias_value = |a: usize| -> f64 {
                    let mut v = rewards.expected_reward(mdp, s, a) - eval.gain[s];
                    let (targets, probs) = mdp.successors(s, a);
                    for (&t, &p) in targets.iter().zip(probs) {
                        v += p * eval.bias[t as usize];
                    }
                    v
                };
                let current_bias = bias_value(current);
                let mut best_bias = current_bias;
                let mut best_bias_action = current;
                for a in 0..mdp.num_actions(s) {
                    if gain_of(a) < best_gain - tol {
                        continue;
                    }
                    let v = bias_value(a);
                    if v > best_bias + tol {
                        best_bias = v;
                        best_bias_action = a;
                    }
                }
                if best_bias_action != current {
                    next.set_action(s, best_bias_action);
                    improved = true;
                }
            }
            if !improved {
                return Ok((eval, strategy));
            }
            strategy = next;
        }
        Err(MdpError::ConvergenceFailure {
            method: "policy iteration",
            iterations: self.max_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MdpBuilder, RelativeValueIteration};

    fn random_like_mdp() -> (Mdp, TransitionRewards) {
        // A small hand-built MDP with non-trivial stochastic structure.
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "a0", vec![(0, 0.2), (1, 0.8)]).unwrap();
        b.add_action(0, "a1", vec![(2, 1.0)]).unwrap();
        b.add_action(1, "b0", vec![(0, 0.5), (2, 0.5)]).unwrap();
        b.add_action(1, "b1", vec![(1, 0.9), (0, 0.1)]).unwrap();
        b.add_action(2, "c0", vec![(0, 0.3), (1, 0.3), (2, 0.4)])
            .unwrap();
        let mdp = b.build(0).unwrap();
        let rewards = TransitionRewards::from_fn(&mdp, |s, a, t| {
            (s as f64) * 0.5 + (a as f64) * 0.25 + (t as f64) * 0.1
        });
        (mdp, rewards)
    }

    #[test]
    fn evaluation_matches_stationary_average() {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(0, 0.7), (1, 0.3)]).unwrap();
        b.add_action(1, "b", vec![(0, 0.6), (1, 0.4)]).unwrap();
        let mdp = b.build(0).unwrap();
        let rewards = TransitionRewards::from_fn(&mdp, |s, _, _| if s == 0 { 3.0 } else { 0.0 });
        let sigma = PositionalStrategy::uniform_first_action(2);
        let eval = PolicyEvaluation::evaluate(&mdp, &rewards, &sigma).unwrap();
        // Stationary distribution (2/3, 1/3); gain = 2.
        assert!((eval.gain_at(0) - 2.0).abs() < 1e-10);
        assert!((eval.gain_at(1) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn evaluation_satisfies_bias_equations() {
        let (mdp, rewards) = random_like_mdp();
        let sigma = PositionalStrategy::new(vec![0, 1, 0]);
        let eval = PolicyEvaluation::evaluate(&mdp, &rewards, &sigma).unwrap();
        let r_sigma = rewards.strategy_rewards(&mdp, &sigma).unwrap();
        for (s, &r_s) in r_sigma.iter().enumerate() {
            let mut rhs = r_s - eval.gain[s];
            for (t, p) in mdp.transitions(s, sigma.action(s)) {
                rhs += p * eval.bias[t];
            }
            assert!(
                (eval.bias[s] - rhs).abs() < 1e-9,
                "bias equation violated at state {s}"
            );
        }
    }

    #[test]
    fn policy_iteration_finds_better_loop_despite_multichain_start() {
        // The initial all-zeros strategy induces two disjoint recurrent
        // classes ({0} and {1}); multichain evaluation must handle this.
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "stay", vec![(0, 1.0)]).unwrap();
        b.add_action(0, "go", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "loop", vec![(1, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, _, _| if s == 1 { 5.0 } else { 1.0 });
        let (gain, sigma) = PolicyIteration::default().solve(&mdp, &r).unwrap();
        assert!((gain - 5.0).abs() < 1e-10);
        assert_eq!(sigma.action(0), 1);
    }

    #[test]
    fn agrees_with_value_iteration() {
        let (mdp, rewards) = random_like_mdp();
        let (pi_gain, _) = PolicyIteration::default().solve(&mdp, &rewards).unwrap();
        let vi = RelativeValueIteration::with_epsilon(1e-10)
            .solve(&mdp, &rewards)
            .unwrap();
        assert!(
            (pi_gain - vi.gain).abs() < 1e-6,
            "policy iteration {pi_gain} vs value iteration {}",
            vi.gain
        );
    }

    #[test]
    fn empty_action_range_fails_loudly() {
        use crate::csr::{CsrLayout, CsrMdp};
        use std::sync::Arc;
        let layout = CsrLayout::from_raw_parts(vec![0, 1, 1], vec![0, 1], vec![0]).unwrap();
        let csr = CsrMdp::from_raw_parts(
            Arc::new(layout),
            vec![1.0],
            vec!["loop".to_string()],
            vec![0],
            0,
        )
        .unwrap();
        let mdp = crate::Mdp::from(csr);
        let rewards = TransitionRewards::zeros(&mdp);
        assert!(matches!(
            PolicyIteration::default().solve(&mdp, &rewards),
            Err(MdpError::NoActions { state: 1 })
        ));
    }

    #[test]
    fn rejects_mismatched_rewards() {
        let (mdp, _) = random_like_mdp();
        let mut other = MdpBuilder::new(1);
        other.add_action(0, "x", vec![(0, 1.0)]).unwrap();
        let other = other.build(0).unwrap();
        let wrong = TransitionRewards::zeros(&other);
        assert!(PolicyIteration::default().solve(&mdp, &wrong).is_err());
        let sigma = PositionalStrategy::uniform_first_action(3);
        assert!(PolicyEvaluation::evaluate(&mdp, &wrong, &sigma).is_err());
    }
}
