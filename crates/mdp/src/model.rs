//! The MDP model `(S, A, P, s₀)` and its builders.
//!
//! Since the CSR-arena refactor, [`Mdp`] is a thin façade over
//! [`crate::CsrMdp`]: all transition data lives in one flat compressed-
//! sparse-row arena (see [`crate::csr`]) and every accessor below delegates
//! to it. Code that wants raw slice access for hot loops goes through
//! [`Mdp::csr`].

use crate::{CsrMdp, CsrMdpBuilder, MdpError, PositionalStrategy};
use sm_markov::MarkovChain;

/// A reference to an action available in a particular state: the pair of a
/// state index and the index of the action within that state's action list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActionRef {
    /// The state in which the action is available.
    pub state: usize,
    /// Index of the action within the state's list of available actions.
    pub action: usize,
}

/// A finite-state Markov decision process.
///
/// States are `0..num_states()`. Every state has one or more named actions;
/// each action carries a validated probability distribution over successors.
/// Rewards are *not* stored in the model — they are supplied separately as
/// [`crate::TransitionRewards`], which is what lets the selfish-mining
/// analysis reuse one model for the whole `r_β` family. Internally all
/// transitions live in a single flat CSR arena ([`CsrMdp`]); reward buffers
/// share the arena's index arrays, so solvers, rewards and induced Markov
/// chains all read the same layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Mdp {
    csr: CsrMdp,
}

impl Mdp {
    /// Wraps a finished CSR arena. Used by the builders.
    pub(crate) fn from_csr(csr: CsrMdp) -> Self {
        Mdp { csr }
    }

    /// The underlying CSR transition arena.
    pub fn csr(&self) -> &CsrMdp {
        &self.csr
    }

    /// Mutable access to the underlying arena, for in-place reweighting of
    /// the probability buffer ([`CsrMdp::reweight_in_place`]). The index
    /// arrays are behind a shared [`std::sync::Arc`] and cannot be mutated
    /// through this handle.
    pub fn csr_mut(&mut self) -> &mut CsrMdp {
        &mut self.csr
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.csr.num_states()
    }

    /// The initial state `s₀`.
    pub fn initial_state(&self) -> usize {
        self.csr.initial_state()
    }

    /// Number of actions available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn num_actions(&self, state: usize) -> usize {
        self.csr.num_actions(state)
    }

    /// Total number of state-action pairs.
    pub fn num_state_action_pairs(&self) -> usize {
        self.csr.num_pairs()
    }

    /// Total number of transitions (successor entries over all state-action pairs).
    pub fn num_transitions(&self) -> usize {
        self.csr.num_transitions()
    }

    /// Name of the `action`-th action of `state`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn action_name(&self, state: usize, action: usize) -> &str {
        self.csr.action_name(state, action)
    }

    /// The transition distribution of the `action`-th action of `state`, as an
    /// iterator of `(successor, probability)` pairs (sorted by successor).
    ///
    /// Hot loops should prefer [`Mdp::successors`], which exposes the
    /// underlying arena slices directly.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn transitions(
        &self,
        state: usize,
        action: usize,
    ) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, probs) = self.csr.successors(state, action);
        cols.iter().map(|&c| c as usize).zip(probs.iter().copied())
    }

    /// Successors of the `action`-th action of `state` as parallel slices of
    /// (compact `u32`) targets and probabilities, straight out of the CSR
    /// arena.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn successors(&self, state: usize, action: usize) -> (&[u32], &[f64]) {
        self.csr.successors(state, action)
    }

    /// Iterates over all state-action pairs of the model.
    pub fn action_refs(&self) -> impl Iterator<Item = ActionRef> + '_ {
        (0..self.num_states()).flat_map(move |state| {
            (0..self.num_actions(state)).map(move |action| ActionRef { state, action })
        })
    }

    /// Finds the index of an action by name in the given state.
    pub fn find_action(&self, state: usize, name: &str) -> Option<usize> {
        self.csr.find_action(state, name)
    }

    /// The Markov chain induced by a positional strategy, extracted directly
    /// from the CSR arena (row slices are copied, never re-sorted or
    /// re-validated entry by entry).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidAction`] if the strategy selects an action
    /// that does not exist, or a shape error if the strategy does not cover
    /// every state.
    pub fn induced_chain(&self, strategy: &PositionalStrategy) -> Result<MarkovChain, MdpError> {
        self.csr.induced_chain(strategy)
    }

    /// Checks basic sanity of the model: every state has at least one action
    /// and every distribution sums to 1. Both builders already enforce these
    /// invariants, so this never fails for models they produce; it remains as
    /// a cheap debugging aid and a guard for any future construction path
    /// (e.g. deserialization) that bypasses the builders.
    pub fn validate(&self) -> Result<(), MdpError> {
        self.csr.validate()
    }

    /// States reachable from the initial state under *some* strategy
    /// (i.e. following any action), in breadth-first order.
    pub fn reachable_states(&self) -> Vec<usize> {
        self.csr.reachable_states()
    }
}

impl From<CsrMdp> for Mdp {
    /// Wraps an externally assembled arena (see [`CsrMdp::from_raw_parts`]).
    fn from(csr: CsrMdp) -> Self {
        Mdp { csr }
    }
}

/// Incremental random-access builder for [`Mdp`].
///
/// Unlike [`CsrMdpBuilder`], which requires states to be appended in index
/// order, this builder accepts actions for any existing state in any order
/// (staging them per state) and flattens everything into the CSR arena in
/// [`MdpBuilder::build`]. Use it for hand-written models and tests; use the
/// streaming [`CsrMdpBuilder`] when the construction order already matches
/// the state indexing (e.g. breadth-first exploration).
///
/// # Example
///
/// ```
/// use sm_mdp::MdpBuilder;
///
/// # fn main() -> Result<(), sm_mdp::MdpError> {
/// let mut builder = MdpBuilder::new(2);
/// builder.add_action(0, "a", vec![(0, 0.5), (1, 0.5)])?;
/// builder.add_action(1, "b", vec![(0, 1.0)])?;
/// let mdp = builder.build(0)?;
/// assert_eq!(mdp.num_states(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MdpBuilder {
    /// Per-state staged actions.
    states: Vec<Vec<StagedAction>>,
}

/// One staged action: its name and raw `(target, probability)` transitions.
type StagedAction = (String, Vec<(usize, f64)>);

impl MdpBuilder {
    /// Creates a builder for an MDP with `num_states` states and no actions.
    pub fn new(num_states: usize) -> Self {
        MdpBuilder {
            states: vec![Vec::new(); num_states],
        }
    }

    /// Number of states of the model under construction.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Appends a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.states.push(Vec::new());
        self.states.len() - 1
    }

    /// Adds an action to `state` with the given successor distribution, given
    /// as `(target, probability)` pairs (duplicate targets are allowed and
    /// summed). Returns the index of the new action within the state.
    ///
    /// # Errors
    ///
    /// Returns an error if the state or a target is out of range, or if the
    /// probabilities are invalid / do not sum to 1.
    pub fn add_action(
        &mut self,
        state: usize,
        name: impl Into<String>,
        transitions: Vec<(usize, f64)>,
    ) -> Result<usize, MdpError> {
        let name = name.into();
        let num_states = self.states.len();
        if state >= num_states {
            return Err(MdpError::InvalidState { state, num_states });
        }
        let mut sum = 0.0;
        for &(target, p) in &transitions {
            if target >= num_states {
                return Err(MdpError::InvalidState {
                    state: target,
                    num_states,
                });
            }
            if !p.is_finite() || p < 0.0 {
                return Err(MdpError::InvalidDistribution {
                    state,
                    action: name,
                    sum: p,
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > crate::PROBABILITY_TOLERANCE {
            return Err(MdpError::InvalidDistribution {
                state,
                action: name,
                sum,
            });
        }
        self.states[state].push((name, transitions));
        Ok(self.states[state].len() - 1)
    }

    /// Finalises the model with the given initial state, flattening the
    /// staged actions into the CSR arena.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is empty, the initial state is out of
    /// range, or some state has no actions.
    pub fn build(self, initial_state: usize) -> Result<Mdp, MdpError> {
        if self.states.is_empty() {
            return Err(MdpError::EmptyModel);
        }
        if initial_state >= self.states.len() {
            return Err(MdpError::InvalidState {
                state: initial_state,
                num_states: self.states.len(),
            });
        }
        if let Some(state) = self.states.iter().position(|a| a.is_empty()) {
            return Err(MdpError::NoActions { state });
        }
        let pairs: usize = self.states.iter().map(|a| a.len()).sum();
        let transitions: usize = self
            .states
            .iter()
            .flat_map(|actions| actions.iter())
            .map(|(_, t)| t.len())
            .sum();
        let mut arena = CsrMdpBuilder::with_capacity(self.states.len(), pairs, transitions);
        for actions in &self.states {
            arena.begin_state();
            for (name, transitions) in actions {
                arena.add_action(name, transitions)?;
            }
        }
        arena.finish(initial_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_mdp() -> Mdp {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "stay", vec![(0, 1.0)]).unwrap();
        b.add_action(0, "go", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "loop", vec![(0, 0.25), (1, 0.75)]).unwrap();
        b.build(0).unwrap()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let mdp = two_state_mdp();
        assert_eq!(mdp.num_states(), 2);
        assert_eq!(mdp.num_actions(0), 2);
        assert_eq!(mdp.num_actions(1), 1);
        assert_eq!(mdp.num_state_action_pairs(), 3);
        assert_eq!(mdp.num_transitions(), 4);
        assert_eq!(mdp.action_name(0, 1), "go");
        assert_eq!(mdp.find_action(1, "loop"), Some(0));
        assert_eq!(mdp.find_action(1, "missing"), None);
        assert_eq!(mdp.find_action(9, "loop"), None);
        assert_eq!(mdp.initial_state(), 0);
        assert!(mdp.validate().is_ok());
    }

    #[test]
    fn internals_are_one_flat_csr_arena() {
        let mdp = two_state_mdp();
        let csr = mdp.csr();
        assert_eq!(csr.layout().row_ptr(), &[0, 2, 3]);
        assert_eq!(csr.layout().action_ptr(), &[0, 1, 2, 4]);
        assert_eq!(csr.layout().col(), &[0, 1, 0, 1]);
        assert_eq!(csr.probabilities(), &[1.0, 1.0, 0.25, 0.75]);
        assert_eq!(csr.layout().num_transitions(), mdp.num_transitions());
    }

    #[test]
    fn builder_rejects_bad_distributions() {
        let mut b = MdpBuilder::new(1);
        assert!(matches!(
            b.add_action(0, "bad", vec![(0, 0.5)]),
            Err(MdpError::InvalidDistribution { .. })
        ));
        assert!(matches!(
            b.add_action(0, "nan", vec![(0, f64::NAN)]),
            Err(MdpError::InvalidDistribution { .. })
        ));
        assert!(matches!(
            b.add_action(0, "oob", vec![(5, 1.0)]),
            Err(MdpError::InvalidState { .. })
        ));
        assert!(matches!(
            b.add_action(3, "nostate", vec![(0, 1.0)]),
            Err(MdpError::InvalidState { .. })
        ));
    }

    #[test]
    fn builder_rejects_deadlocks_and_bad_initial_state() {
        let b = MdpBuilder::new(1);
        assert!(matches!(b.build(0), Err(MdpError::NoActions { state: 0 })));

        let mut b = MdpBuilder::new(1);
        b.add_action(0, "a", vec![(0, 1.0)]).unwrap();
        assert!(matches!(b.build(3), Err(MdpError::InvalidState { .. })));

        let b = MdpBuilder::new(0);
        assert!(matches!(b.build(0), Err(MdpError::EmptyModel)));
    }

    #[test]
    fn duplicate_targets_are_merged() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, "a", vec![(0, 0.25), (0, 0.75)]).unwrap();
        let mdp = b.build(0).unwrap();
        assert_eq!(mdp.transitions(0, 0).collect::<Vec<_>>(), vec![(0, 1.0)]);
    }

    #[test]
    fn transitions_and_successors_agree() {
        let mdp = two_state_mdp();
        let (cols, probs) = mdp.successors(1, 0);
        let pairs: Vec<(usize, f64)> = mdp.transitions(1, 0).collect();
        assert_eq!(cols, &[0, 1]);
        assert_eq!(probs, &[0.25, 0.75]);
        assert_eq!(pairs, vec![(0, 0.25), (1, 0.75)]);
    }

    #[test]
    fn induced_chain_follows_strategy() {
        let mdp = two_state_mdp();
        let stay = PositionalStrategy::new(vec![0, 0]);
        let chain = mdp.induced_chain(&stay).unwrap();
        assert_eq!(chain.probability(0, 0), 1.0);

        let go = PositionalStrategy::new(vec![1, 0]);
        let chain = mdp.induced_chain(&go).unwrap();
        assert_eq!(chain.probability(0, 1), 1.0);
        assert_eq!(chain.probability(1, 0), 0.25);
    }

    #[test]
    fn induced_chain_rejects_invalid_strategy() {
        let mdp = two_state_mdp();
        let bad_action = PositionalStrategy::new(vec![5, 0]);
        assert!(matches!(
            mdp.induced_chain(&bad_action),
            Err(MdpError::InvalidAction { .. })
        ));
        let bad_len = PositionalStrategy::new(vec![0]);
        assert!(mdp.induced_chain(&bad_len).is_err());
    }

    #[test]
    fn reachable_states_from_initial() {
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "a", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "b", vec![(1, 1.0)]).unwrap();
        b.add_action(2, "c", vec![(2, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        assert_eq!(mdp.reachable_states(), vec![0, 1]);
    }

    #[test]
    fn add_state_extends_the_model() {
        let mut b = MdpBuilder::new(1);
        let s1 = b.add_state();
        assert_eq!(s1, 1);
        b.add_action(0, "a", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "b", vec![(0, 1.0)]).unwrap();
        assert_eq!(b.build(0).unwrap().num_states(), 2);
    }

    #[test]
    fn action_refs_enumerates_all_pairs() {
        let mdp = two_state_mdp();
        let refs: Vec<ActionRef> = mdp.action_refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(
            refs[0],
            ActionRef {
                state: 0,
                action: 0
            }
        );
        assert_eq!(
            refs[2],
            ActionRef {
                state: 1,
                action: 0
            }
        );
    }

    #[test]
    fn nested_and_streaming_builders_produce_identical_models() {
        let nested = two_state_mdp();
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        b.add_action("stay", &[(0, 1.0)]).unwrap();
        b.add_action("go", &[(1, 1.0)]).unwrap();
        b.begin_state();
        b.add_action("loop", &[(0, 0.25), (1, 0.75)]).unwrap();
        let streamed = b.finish(0).unwrap();
        assert_eq!(nested, streamed);
    }
}
