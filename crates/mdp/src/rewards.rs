//! Reward functions `r : S × A × S → ℝ` aligned with an MDP's transitions.

use crate::{Mdp, MdpError, PositionalStrategy};

/// A reward function over state-action-successor triples, stored aligned with
/// the transition lists of a particular [`Mdp`].
///
/// The selfish-mining analysis needs two base reward functions (`r_A` counting
/// adversarial finalized blocks and `r_H` counting honest finalized blocks)
/// and, inside the binary search of Algorithm 1, the combination
/// `r_β = r_A − β · (r_A + r_H)`. [`TransitionRewards::affine_combination`]
/// builds exactly that without touching the model again.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionRewards {
    /// `per[state][action][transition_index]`, aligned with
    /// `Mdp::transitions(state, action)`.
    per: Vec<Vec<Vec<f64>>>,
}

impl TransitionRewards {
    /// Builds rewards by evaluating `f(state, action, successor)` on every
    /// transition of the MDP.
    pub fn from_fn(mdp: &Mdp, mut f: impl FnMut(usize, usize, usize) -> f64) -> Self {
        let per = (0..mdp.num_states())
            .map(|state| {
                (0..mdp.num_actions(state))
                    .map(|action| {
                        mdp.transitions(state, action)
                            .iter()
                            .map(|&(target, _)| f(state, action, target))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        TransitionRewards { per }
    }

    /// Builds an all-zero reward structure for the given MDP.
    pub fn zeros(mdp: &Mdp) -> Self {
        Self::from_fn(mdp, |_, _, _| 0.0)
    }

    /// The reward of the `transition_index`-th successor of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn reward(&self, state: usize, action: usize, transition_index: usize) -> f64 {
        self.per[state][action][transition_index]
    }

    /// Mutable access to a single transition reward.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn reward_mut(&mut self, state: usize, action: usize, transition_index: usize) -> &mut f64 {
        &mut self.per[state][action][transition_index]
    }

    /// Expected one-step reward of taking `action` in `state`:
    /// `Σ_{s'} P(s'|s,a) · r(s,a,s')`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds or the reward structure does
    /// not match the MDP.
    pub fn expected_reward(&self, mdp: &Mdp, state: usize, action: usize) -> f64 {
        mdp.transitions(state, action)
            .iter()
            .zip(&self.per[state][action])
            .map(|(&(_, p), &r)| p * r)
            .sum()
    }

    /// Per-state expected rewards under a positional strategy, the reward
    /// vector of the induced Markov chain.
    ///
    /// # Errors
    ///
    /// Returns an error if the strategy shape does not match the MDP.
    pub fn strategy_rewards(
        &self,
        mdp: &Mdp,
        strategy: &PositionalStrategy,
    ) -> Result<Vec<f64>, MdpError> {
        if strategy.num_states() != mdp.num_states() {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "strategy covers {} states, MDP has {}",
                    strategy.num_states(),
                    mdp.num_states()
                ),
            });
        }
        if !self.matches(mdp) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "rewards do not match MDP shape".to_string(),
            });
        }
        (0..mdp.num_states())
            .map(|state| {
                let action = strategy.action(state);
                if action >= mdp.num_actions(state) {
                    return Err(MdpError::InvalidAction {
                        state,
                        action,
                        available: mdp.num_actions(state),
                    });
                }
                Ok(self.expected_reward(mdp, state, action))
            })
            .collect()
    }

    /// Builds the affine combination `alpha · self + beta · other` (entry-wise
    /// over all transitions). Used to form the paper's `r_β`:
    /// `r_β = 1·r_A − β·(r_A + r_H)`, i.e.
    /// `r_A.affine_combination(&r_total, 1.0, -beta)`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::RewardShapeMismatch`] if the two structures are not
    /// aligned with the same MDP shape.
    pub fn affine_combination(
        &self,
        other: &TransitionRewards,
        alpha: f64,
        beta: f64,
    ) -> Result<TransitionRewards, MdpError> {
        if !self.same_shape(other) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "affine combination of differently-shaped rewards".to_string(),
            });
        }
        let per = self
            .per
            .iter()
            .zip(&other.per)
            .map(|(sa, oa)| {
                sa.iter()
                    .zip(oa)
                    .map(|(sr, or)| {
                        sr.iter()
                            .zip(or)
                            .map(|(&a, &b)| alpha * a + beta * b)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Ok(TransitionRewards { per })
    }

    /// Entry-wise sum, a convenience wrapper around
    /// [`TransitionRewards::affine_combination`] with coefficients 1, 1.
    ///
    /// # Errors
    ///
    /// Same as [`TransitionRewards::affine_combination`].
    pub fn sum(&self, other: &TransitionRewards) -> Result<TransitionRewards, MdpError> {
        self.affine_combination(other, 1.0, 1.0)
    }

    /// Checks whether the reward structure matches the shape of `mdp`.
    pub fn matches(&self, mdp: &Mdp) -> bool {
        self.per.len() == mdp.num_states()
            && self.per.iter().enumerate().all(|(state, actions)| {
                actions.len() == mdp.num_actions(state)
                    && actions.iter().enumerate().all(|(action, rewards)| {
                        rewards.len() == mdp.transitions(state, action).len()
                    })
            })
    }

    /// Largest absolute reward value, used by solvers to bound value ranges.
    pub fn max_abs(&self) -> f64 {
        self.per
            .iter()
            .flatten()
            .flatten()
            .fold(0.0, |acc: f64, &v| acc.max(v.abs()))
    }

    fn same_shape(&self, other: &TransitionRewards) -> bool {
        self.per.len() == other.per.len()
            && self.per.iter().zip(&other.per).all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.len() == y.len())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MdpBuilder;

    fn mdp() -> Mdp {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(0, 0.5), (1, 0.5)]).unwrap();
        b.add_action(0, "b", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "c", vec![(0, 1.0)]).unwrap();
        b.build(0).unwrap()
    }

    #[test]
    fn from_fn_aligns_with_transitions() {
        let mdp = mdp();
        let r = TransitionRewards::from_fn(&mdp, |_, _, target| target as f64);
        assert_eq!(r.reward(0, 0, 0), 0.0);
        assert_eq!(r.reward(0, 0, 1), 1.0);
        assert_eq!(r.reward(0, 1, 0), 1.0);
        assert!(r.matches(&mdp));
    }

    #[test]
    fn expected_reward_weights_by_probability() {
        let mdp = mdp();
        let r = TransitionRewards::from_fn(&mdp, |_, _, target| target as f64 * 2.0);
        assert!((r.expected_reward(&mdp, 0, 0) - 1.0).abs() < 1e-15);
        assert!((r.expected_reward(&mdp, 0, 1) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn strategy_rewards_follow_choices() {
        let mdp = mdp();
        let r = TransitionRewards::from_fn(&mdp, |_, action, _| action as f64);
        let sigma = PositionalStrategy::new(vec![1, 0]);
        let rewards = r.strategy_rewards(&mdp, &sigma).unwrap();
        assert_eq!(rewards, vec![1.0, 0.0]);
        let bad = PositionalStrategy::new(vec![7, 0]);
        assert!(r.strategy_rewards(&mdp, &bad).is_err());
        let short = PositionalStrategy::new(vec![0]);
        assert!(r.strategy_rewards(&mdp, &short).is_err());
    }

    #[test]
    fn affine_combination_matches_manual_computation() {
        let mdp = mdp();
        let ra = TransitionRewards::from_fn(&mdp, |_, _, _| 1.0);
        let rh = TransitionRewards::from_fn(&mdp, |_, _, target| if target == 1 { 1.0 } else { 0.0 });
        let total = ra.sum(&rh).unwrap();
        let beta = 0.25;
        let r_beta = ra.affine_combination(&total, 1.0, -beta).unwrap();
        // On a transition to state 1: 1 - 0.25 * (1 + 1) = 0.5
        assert!((r_beta.reward(0, 1, 0) - 0.5).abs() < 1e-15);
        // On a transition to state 0: 1 - 0.25 * (1 + 0) = 0.75
        assert!((r_beta.reward(0, 0, 0) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn zeros_and_max_abs() {
        let mdp = mdp();
        let z = TransitionRewards::zeros(&mdp);
        assert_eq!(z.max_abs(), 0.0);
        let mut r = z.clone();
        *r.reward_mut(1, 0, 0) = -3.5;
        assert_eq!(r.max_abs(), 3.5);
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mdp = mdp();
        let mut other_builder = MdpBuilder::new(1);
        other_builder.add_action(0, "x", vec![(0, 1.0)]).unwrap();
        let other = other_builder.build(0).unwrap();
        let ra = TransitionRewards::zeros(&mdp);
        let rb = TransitionRewards::zeros(&other);
        assert!(ra.affine_combination(&rb, 1.0, 1.0).is_err());
        assert!(!rb.matches(&mdp));
    }
}
