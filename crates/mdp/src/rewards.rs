//! Reward functions `r : S × A × S → ℝ` aligned with an MDP's transitions.

use crate::{CsrLayout, Mdp, MdpError, PositionalStrategy};
use std::sync::Arc;

/// A reward function over state-action-successor triples, stored as **one
/// flat buffer** aligned with the CSR transition arena of a particular
/// [`Mdp`]: entry `k` of the buffer is the reward of arena transition `k`
/// (the one with successor `layout.col()[k]` and probability
/// `mdp.csr().probabilities()[k]`). The index arrays themselves are shared
/// with the MDP via [`Arc`], so alignment checks are pointer comparisons and
/// the `r_β` affine combinations are straight slice zips.
///
/// The selfish-mining analysis needs two base reward functions (`r_A` counting
/// adversarial finalized blocks and `r_H` counting honest finalized blocks)
/// and, inside the binary search of Algorithm 1, the combination
/// `r_β = r_A − β · (r_A + r_H)`. [`TransitionRewards::affine_combination`]
/// builds exactly that without touching the model again.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionRewards {
    /// The arena index arrays this buffer is aligned with.
    layout: Arc<CsrLayout>,
    /// One reward per arena transition, aligned with `layout.col()`.
    values: Vec<f64>,
}

impl TransitionRewards {
    /// Builds rewards by evaluating `f(state, action, successor)` on every
    /// transition of the MDP.
    pub fn from_fn(mdp: &Mdp, mut f: impl FnMut(usize, usize, usize) -> f64) -> Self {
        let layout = mdp.csr().layout_arc();
        let mut values = Vec::with_capacity(layout.num_transitions());
        for state in 0..layout.num_states() {
            for (action, pair) in layout.pair_range(state).enumerate() {
                for &target in &layout.col()[layout.transition_range(pair)] {
                    values.push(f(state, action, target as usize));
                }
            }
        }
        TransitionRewards { layout, values }
    }

    /// Builds an all-zero reward structure for the given MDP.
    pub fn zeros(mdp: &Mdp) -> Self {
        let layout = mdp.csr().layout_arc();
        let values = vec![0.0; layout.num_transitions()];
        TransitionRewards { layout, values }
    }

    /// Wraps an already-flat per-transition buffer (aligned with the arena in
    /// construction order). This is the zero-copy path used by model builders
    /// that stream rewards alongside transitions.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::RewardShapeMismatch`] if `values.len()` differs
    /// from the MDP's transition count.
    pub fn from_transition_values(mdp: &Mdp, values: Vec<f64>) -> Result<Self, MdpError> {
        let layout = mdp.csr().layout_arc();
        if values.len() != layout.num_transitions() {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "flat reward buffer has {} entries, arena has {} transitions",
                    values.len(),
                    layout.num_transitions()
                ),
            });
        }
        Ok(TransitionRewards { layout, values })
    }

    /// Builds rewards that are constant per state-action pair: transition `k`
    /// of pair `i` gets `per_pair[i]`. Since `Σ_{s'} P(s'|s,a) = 1`, the
    /// expected one-step reward of the pair equals `per_pair[i]`, which is how
    /// the selfish-mining model supplies expected block counts.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::RewardShapeMismatch`] if `per_pair.len()` differs
    /// from the MDP's state-action pair count.
    pub fn from_pair_values(mdp: &Mdp, per_pair: &[f64]) -> Result<Self, MdpError> {
        let layout = mdp.csr().layout_arc();
        if per_pair.len() != layout.num_pairs() {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "per-pair reward buffer has {} entries, arena has {} pairs",
                    per_pair.len(),
                    layout.num_pairs()
                ),
            });
        }
        let mut values = Vec::with_capacity(layout.num_transitions());
        for (pair, &value) in per_pair.iter().enumerate() {
            values.resize(values.len() + layout.transition_range(pair).len(), value);
        }
        Ok(TransitionRewards { layout, values })
    }

    /// The flat per-transition reward buffer, aligned with the arena.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the flat per-transition reward buffer, for callers
    /// that refill rewards in place (parametric re-instantiation). The
    /// buffer's length and its alignment with the arena are fixed; the values
    /// themselves carry no invariant.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The reward of the `transition_index`-th successor of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn reward(&self, state: usize, action: usize, transition_index: usize) -> f64 {
        let range = self
            .layout
            .transition_range(self.layout.pair_index(state, action));
        self.values[range][transition_index]
    }

    /// Mutable access to a single transition reward.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn reward_mut(&mut self, state: usize, action: usize, transition_index: usize) -> &mut f64 {
        let range = self
            .layout
            .transition_range(self.layout.pair_index(state, action));
        &mut self.values[range][transition_index]
    }

    /// Expected one-step reward of taking `action` in `state`:
    /// `Σ_{s'} P(s'|s,a) · r(s,a,s')`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds or the reward structure does
    /// not match the MDP.
    pub fn expected_reward(&self, mdp: &Mdp, state: usize, action: usize) -> f64 {
        let (_, probs) = mdp.csr().successors(state, action);
        let range = self
            .layout
            .transition_range(self.layout.pair_index(state, action));
        probs
            .iter()
            .zip(&self.values[range])
            .map(|(&p, &r)| p * r)
            .sum()
    }

    /// Expected one-step reward of *every* state-action pair, as one flat
    /// buffer indexed by arena pair offset: `out[pair] = Σ_{s'} P(s'|s,a) ·
    /// r(s,a,s')`. This is the precompute shared by the value-iteration
    /// sweeps, which afterwards only touch probabilities and value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the reward structure does not match the MDP (callers check
    /// [`TransitionRewards::matches`] first).
    pub fn expected_per_pair(&self, mdp: &Mdp) -> Vec<f64> {
        let csr = mdp.csr();
        let action_ptr = csr.layout().action_ptr();
        let prob = csr.probabilities();
        let mut expected = vec![0.0; csr.num_pairs()];
        for (pair, slot) in expected.iter_mut().enumerate() {
            let range = action_ptr[pair] as usize..action_ptr[pair + 1] as usize;
            *slot = prob[range.clone()]
                .iter()
                .zip(&self.values[range])
                .map(|(&p, &r)| p * r)
                .sum();
        }
        expected
    }

    /// Per-state expected rewards under a positional strategy, the reward
    /// vector of the induced Markov chain.
    ///
    /// # Errors
    ///
    /// Returns an error if the strategy shape does not match the MDP.
    pub fn strategy_rewards(
        &self,
        mdp: &Mdp,
        strategy: &PositionalStrategy,
    ) -> Result<Vec<f64>, MdpError> {
        if strategy.num_states() != mdp.num_states() {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "strategy covers {} states, MDP has {}",
                    strategy.num_states(),
                    mdp.num_states()
                ),
            });
        }
        if !self.matches(mdp) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "rewards do not match MDP shape".to_string(),
            });
        }
        (0..mdp.num_states())
            .map(|state| {
                let action = strategy.action(state);
                if action >= mdp.num_actions(state) {
                    return Err(MdpError::InvalidAction {
                        state,
                        action,
                        available: mdp.num_actions(state),
                    });
                }
                Ok(self.expected_reward(mdp, state, action))
            })
            .collect()
    }

    /// Builds the affine combination `alpha · self + beta · other` (entry-wise
    /// over all transitions). Used to form the paper's `r_β`:
    /// `r_β = 1·r_A − β·(r_A + r_H)`, i.e.
    /// `r_A.affine_combination(&r_total, 1.0, -beta)`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::RewardShapeMismatch`] if the two structures are not
    /// aligned with the same CSR arena.
    pub fn affine_combination(
        &self,
        other: &TransitionRewards,
        alpha: f64,
        beta: f64,
    ) -> Result<TransitionRewards, MdpError> {
        if !self.same_layout(other) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "affine combination of differently-shaped rewards".to_string(),
            });
        }
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| alpha * a + beta * b)
            .collect();
        Ok(TransitionRewards {
            layout: Arc::clone(&self.layout),
            values,
        })
    }

    /// Entry-wise sum, a convenience wrapper around
    /// [`TransitionRewards::affine_combination`] with coefficients 1, 1.
    ///
    /// # Errors
    ///
    /// Same as [`TransitionRewards::affine_combination`].
    pub fn sum(&self, other: &TransitionRewards) -> Result<TransitionRewards, MdpError> {
        self.affine_combination(other, 1.0, 1.0)
    }

    /// Checks whether the reward structure is aligned with the arena of
    /// `mdp`. Buffers built from the same `Mdp` (or a clone of it) share the
    /// layout by pointer, making this check O(1); otherwise the index arrays
    /// are compared structurally.
    pub fn matches(&self, mdp: &Mdp) -> bool {
        Arc::ptr_eq(&self.layout, &mdp.csr().layout_arc()) || *self.layout == *mdp.csr().layout()
    }

    /// Largest absolute reward value, used by solvers to bound value ranges.
    pub fn max_abs(&self) -> f64 {
        self.values
            .iter()
            .fold(0.0, |acc: f64, &v| acc.max(v.abs()))
    }

    fn same_layout(&self, other: &TransitionRewards) -> bool {
        Arc::ptr_eq(&self.layout, &other.layout) || *self.layout == *other.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MdpBuilder;

    fn mdp() -> Mdp {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(0, 0.5), (1, 0.5)]).unwrap();
        b.add_action(0, "b", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "c", vec![(0, 1.0)]).unwrap();
        b.build(0).unwrap()
    }

    #[test]
    fn from_fn_aligns_with_transitions() {
        let mdp = mdp();
        let r = TransitionRewards::from_fn(&mdp, |_, _, target| target as f64);
        assert_eq!(r.reward(0, 0, 0), 0.0);
        assert_eq!(r.reward(0, 0, 1), 1.0);
        assert_eq!(r.reward(0, 1, 0), 1.0);
        assert!(r.matches(&mdp));
        assert_eq!(r.values().len(), mdp.num_transitions());
    }

    #[test]
    fn expected_reward_weights_by_probability() {
        let mdp = mdp();
        let r = TransitionRewards::from_fn(&mdp, |_, _, target| target as f64 * 2.0);
        assert!((r.expected_reward(&mdp, 0, 0) - 1.0).abs() < 1e-15);
        assert!((r.expected_reward(&mdp, 0, 1) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn strategy_rewards_follow_choices() {
        let mdp = mdp();
        let r = TransitionRewards::from_fn(&mdp, |_, action, _| action as f64);
        let sigma = PositionalStrategy::new(vec![1, 0]);
        let rewards = r.strategy_rewards(&mdp, &sigma).unwrap();
        assert_eq!(rewards, vec![1.0, 0.0]);
        let bad = PositionalStrategy::new(vec![7, 0]);
        assert!(r.strategy_rewards(&mdp, &bad).is_err());
        let short = PositionalStrategy::new(vec![0]);
        assert!(r.strategy_rewards(&mdp, &short).is_err());
    }

    #[test]
    fn affine_combination_matches_manual_computation() {
        let mdp = mdp();
        let ra = TransitionRewards::from_fn(&mdp, |_, _, _| 1.0);
        let rh =
            TransitionRewards::from_fn(&mdp, |_, _, target| if target == 1 { 1.0 } else { 0.0 });
        let total = ra.sum(&rh).unwrap();
        let beta = 0.25;
        let r_beta = ra.affine_combination(&total, 1.0, -beta).unwrap();
        // On a transition to state 1: 1 - 0.25 * (1 + 1) = 0.5
        assert!((r_beta.reward(0, 1, 0) - 0.5).abs() < 1e-15);
        // On a transition to state 0: 1 - 0.25 * (1 + 0) = 0.75
        assert!((r_beta.reward(0, 0, 0) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn zeros_and_max_abs() {
        let mdp = mdp();
        let z = TransitionRewards::zeros(&mdp);
        assert_eq!(z.max_abs(), 0.0);
        let mut r = z.clone();
        *r.reward_mut(1, 0, 0) = -3.5;
        assert_eq!(r.max_abs(), 3.5);
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mdp = mdp();
        let mut other_builder = MdpBuilder::new(1);
        other_builder.add_action(0, "x", vec![(0, 1.0)]).unwrap();
        let other = other_builder.build(0).unwrap();
        let ra = TransitionRewards::zeros(&mdp);
        let rb = TransitionRewards::zeros(&other);
        assert!(ra.affine_combination(&rb, 1.0, 1.0).is_err());
        assert!(!rb.matches(&mdp));
    }

    #[test]
    fn flat_constructors_validate_lengths() {
        let mdp = mdp();
        let flat =
            TransitionRewards::from_transition_values(&mdp, vec![1.0; mdp.num_transitions()])
                .unwrap();
        assert_eq!(flat.reward(1, 0, 0), 1.0);
        assert!(TransitionRewards::from_transition_values(&mdp, vec![1.0; 2]).is_err());

        let per_pair = TransitionRewards::from_pair_values(&mdp, &[0.5, 1.5, 2.5]).unwrap();
        // Pair 0 has two transitions, both carrying its pair value.
        assert_eq!(per_pair.reward(0, 0, 0), 0.5);
        assert_eq!(per_pair.reward(0, 0, 1), 0.5);
        assert!((per_pair.expected_reward(&mdp, 0, 0) - 0.5).abs() < 1e-15);
        assert_eq!(per_pair.reward(0, 1, 0), 1.5);
        assert_eq!(per_pair.reward(1, 0, 0), 2.5);
        assert!(TransitionRewards::from_pair_values(&mdp, &[1.0]).is_err());
    }

    #[test]
    fn rewards_from_identical_models_are_compatible() {
        // Two separately built but identical MDPs do not share the layout Arc,
        // yet their reward structures must still be considered aligned.
        let a = mdp();
        let b = mdp();
        let ra = TransitionRewards::zeros(&a);
        assert!(ra.matches(&b));
        let rb = TransitionRewards::zeros(&b);
        assert!(ra.sum(&rb).is_ok());
    }
}
