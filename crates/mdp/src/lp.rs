//! Linear-programming formulation of the maximal mean-payoff problem.
//!
//! For a unichain MDP the optimal gain `g*` is the optimal value of
//!
//! ```text
//! minimise   g
//! subject to g + h(s) − Σ_{s'} P(s'|s,a) h(s')  ≥  r̄(s,a)   ∀ (s,a)
//!            h(s₀) = 0,   g and h free
//! ```
//!
//! This module builds that LP over the `sm-linalg` two-phase simplex and
//! extracts a greedy optimal strategy from the optimal bias vector. The LP
//! route is cubic-ish in practice and only used for small models — it exists
//! as an *independent* solver to cross-validate value and policy iteration,
//! and to exercise the simplex substrate on real workloads.

use crate::{Mdp, MdpError, PositionalStrategy, TransitionRewards};
use sm_linalg::{Comparison, LinearProgram, LpStatus, ObjectiveSense, SimplexSolver};

/// Mean-payoff optimisation via linear programming.
#[derive(Debug, Clone, Default)]
pub struct LinearProgrammingSolver {
    /// Simplex configuration.
    pub simplex: SimplexSolver,
}

impl LinearProgrammingSolver {
    /// Solves for the optimal gain and an optimal strategy.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::RewardShapeMismatch`] if the rewards do not match
    /// the model, [`MdpError::ConvergenceFailure`] if the LP is reported
    /// infeasible or unbounded (which cannot happen for a well-formed unichain
    /// model and therefore indicates a numerical problem), and propagates
    /// simplex errors.
    pub fn solve(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
    ) -> Result<(f64, PositionalStrategy), MdpError> {
        if !rewards.matches(mdp) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "rewards do not match MDP shape".to_string(),
            });
        }
        let n = mdp.num_states();
        let reference = mdp.initial_state();

        let mut lp = LinearProgram::new(ObjectiveSense::Minimize);
        let g = lp.add_free_variable(1.0);
        let h: Vec<usize> = (0..n).map(|_| lp.add_free_variable(0.0)).collect();

        // Pin the bias of the reference state to zero.
        lp.add_constraint(&[(h[reference], 1.0)], Comparison::Equal, 0.0)?;

        for state in 0..n {
            for action in 0..mdp.num_actions(state) {
                // g + h(s) − Σ P h(s') ≥ r̄(s,a)
                let mut coeffs: Vec<(usize, f64)> = vec![(g, 1.0), (h[state], 1.0)];
                for (t, p) in mdp.transitions(state, action) {
                    coeffs.push((h[t], -p));
                }
                let rhs = rewards.expected_reward(mdp, state, action);
                lp.add_constraint(&coeffs, Comparison::GreaterEq, rhs)?;
            }
        }

        let solution = self.simplex.solve(&lp)?;
        if solution.status != LpStatus::Optimal {
            return Err(MdpError::ConvergenceFailure {
                method: "mean-payoff linear program",
                iterations: 0,
            });
        }
        let gain = solution.values[g];
        let bias: Vec<f64> = h.iter().map(|&idx| solution.values[idx]).collect();

        // Greedy strategy with respect to the optimal bias.
        let mut choices = Vec::with_capacity(n);
        for state in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut best_action = 0;
            for action in 0..mdp.num_actions(state) {
                let mut value = rewards.expected_reward(mdp, state, action);
                let (targets, probs) = mdp.successors(state, action);
                for (&t, &p) in targets.iter().zip(probs) {
                    value += p * bias[t as usize];
                }
                if value > best {
                    best = value;
                    best_action = action;
                }
            }
            choices.push(best_action);
        }
        Ok((gain, PositionalStrategy::new(choices)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MdpBuilder, PolicyIteration, RelativeValueIteration};

    fn better_loop_mdp() -> (Mdp, TransitionRewards) {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "stay", vec![(0, 1.0)]).unwrap();
        b.add_action(0, "go", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "loop", vec![(1, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, _, _| if s == 1 { 4.0 } else { 1.0 });
        (mdp, r)
    }

    #[test]
    fn lp_finds_optimal_gain_and_strategy() {
        let (mdp, r) = better_loop_mdp();
        let (gain, sigma) = LinearProgrammingSolver::default().solve(&mdp, &r).unwrap();
        assert!((gain - 4.0).abs() < 1e-7, "gain {gain}");
        assert_eq!(sigma.action(0), 1);
    }

    #[test]
    fn lp_agrees_with_other_solvers_on_stochastic_model() {
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "a0", vec![(0, 0.2), (1, 0.8)]).unwrap();
        b.add_action(0, "a1", vec![(2, 1.0)]).unwrap();
        b.add_action(1, "b0", vec![(0, 0.5), (2, 0.5)]).unwrap();
        b.add_action(1, "b1", vec![(1, 0.9), (0, 0.1)]).unwrap();
        b.add_action(2, "c0", vec![(0, 0.3), (1, 0.3), (2, 0.4)])
            .unwrap();
        let mdp = b.build(0).unwrap();
        let rewards = TransitionRewards::from_fn(&mdp, |s, a, t| {
            0.4 * s as f64 - 0.3 * a as f64 + 0.2 * t as f64
        });
        let (lp_gain, _) = LinearProgrammingSolver::default()
            .solve(&mdp, &rewards)
            .unwrap();
        let (pi_gain, _) = PolicyIteration::default().solve(&mdp, &rewards).unwrap();
        let vi_gain = RelativeValueIteration::with_epsilon(1e-10)
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        assert!((lp_gain - pi_gain).abs() < 1e-6, "{lp_gain} vs {pi_gain}");
        assert!((lp_gain - vi_gain).abs() < 1e-6, "{lp_gain} vs {vi_gain}");
    }

    #[test]
    fn lp_handles_negative_rewards() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, "loop", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |_, _, _| -0.75);
        let (gain, _) = LinearProgrammingSolver::default().solve(&mdp, &r).unwrap();
        assert!((gain + 0.75).abs() < 1e-9);
    }

    #[test]
    fn lp_rejects_mismatched_rewards() {
        let (mdp, _) = better_loop_mdp();
        let mut other = MdpBuilder::new(1);
        other.add_action(0, "x", vec![(0, 1.0)]).unwrap();
        let other = other.build(0).unwrap();
        let wrong = TransitionRewards::zeros(&other);
        assert!(LinearProgrammingSolver::default()
            .solve(&mdp, &wrong)
            .is_err());
    }
}
