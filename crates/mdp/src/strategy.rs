//! Positional (memoryless deterministic) strategies.

use crate::MdpError;
use std::fmt;

/// A positional strategy: one action index per state.
///
/// Positional strategies suffice for optimal mean-payoff behaviour in finite
/// MDPs (Section 2.3 of the paper, citing Puterman), which is why the solvers
/// in this crate only ever produce this type.
///
/// # Example
///
/// ```
/// use sm_mdp::PositionalStrategy;
///
/// let sigma = PositionalStrategy::new(vec![0, 2, 1]);
/// assert_eq!(sigma.action(1), 2);
/// assert_eq!(sigma.num_states(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PositionalStrategy {
    choices: Vec<usize>,
}

impl PositionalStrategy {
    /// Creates a strategy from a per-state action-index vector.
    pub fn new(choices: Vec<usize>) -> Self {
        PositionalStrategy { choices }
    }

    /// Creates the strategy that picks action 0 in every one of `num_states` states.
    pub fn uniform_first_action(num_states: usize) -> Self {
        PositionalStrategy {
            choices: vec![0; num_states],
        }
    }

    /// Number of states the strategy covers.
    pub fn num_states(&self) -> usize {
        self.choices.len()
    }

    /// Action index chosen in `state`.
    ///
    /// This is the unchecked hot-path accessor used by the solver inner
    /// loops, which iterate over `0..num_states()` by construction. Use
    /// [`PositionalStrategy::get`] when the state index comes from outside
    /// data.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn action(&self, state: usize) -> usize {
        self.choices[state]
    }

    /// Action index chosen in `state`, or `None` if the strategy does not
    /// cover it — the checked counterpart of [`PositionalStrategy::action`]
    /// for state indices originating from user-supplied data.
    pub fn get(&self, state: usize) -> Option<usize> {
        self.choices.get(state).copied()
    }

    /// Replaces the action chosen in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds; use
    /// [`PositionalStrategy::try_set_action`] for untrusted indices.
    pub fn set_action(&mut self, state: usize, action: usize) {
        self.choices[state] = action;
    }

    /// Replaces the action chosen in `state`, rejecting out-of-bounds states
    /// with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidState`] if the strategy does not cover
    /// `state`.
    pub fn try_set_action(&mut self, state: usize, action: usize) -> Result<(), MdpError> {
        match self.choices.get_mut(state) {
            Some(slot) => {
                *slot = action;
                Ok(())
            }
            None => Err(MdpError::InvalidState {
                state,
                num_states: self.choices.len(),
            }),
        }
    }

    /// The underlying per-state action indices.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Number of states at which two strategies differ.
    ///
    /// # Panics
    ///
    /// Panics if the strategies cover a different number of states.
    pub fn hamming_distance(&self, other: &PositionalStrategy) -> usize {
        assert_eq!(
            self.num_states(),
            other.num_states(),
            "strategies cover different state counts"
        );
        self.choices
            .iter()
            .zip(&other.choices)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for PositionalStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "strategy[")?;
        for (state, action) in self.choices.iter().enumerate() {
            if state > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{state}->{action}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for PositionalStrategy {
    fn from(choices: Vec<usize>) -> Self {
        PositionalStrategy::new(choices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let mut sigma = PositionalStrategy::uniform_first_action(3);
        assert_eq!(sigma.choices(), &[0, 0, 0]);
        sigma.set_action(1, 4);
        assert_eq!(sigma.action(1), 4);
        assert_eq!(sigma.num_states(), 3);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a = PositionalStrategy::new(vec![0, 1, 2]);
        let b = PositionalStrategy::new(vec![0, 2, 2]);
        assert_eq!(a.hamming_distance(&b), 1);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "different state counts")]
    fn hamming_distance_panics_on_mismatch() {
        let a = PositionalStrategy::new(vec![0]);
        let b = PositionalStrategy::new(vec![0, 1]);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn display_lists_choices() {
        let sigma = PositionalStrategy::new(vec![1, 0]);
        assert_eq!(format!("{sigma}"), "strategy[0->1, 1->0]");
    }

    #[test]
    fn from_vec_conversion() {
        let sigma: PositionalStrategy = vec![2, 3].into();
        assert_eq!(sigma.action(0), 2);
    }

    #[test]
    fn checked_accessors_reject_out_of_bounds_states() {
        let mut sigma = PositionalStrategy::uniform_first_action(2);
        assert_eq!(sigma.get(1), Some(0));
        assert_eq!(sigma.get(2), None);
        sigma.try_set_action(1, 7).unwrap();
        assert_eq!(sigma.action(1), 7);
        assert!(matches!(
            sigma.try_set_action(2, 0),
            Err(MdpError::InvalidState {
                state: 2,
                num_states: 2
            })
        ));
    }
}
