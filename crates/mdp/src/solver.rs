//! Façade over the mean-payoff solvers.

use crate::{
    LinearProgrammingSolver, Mdp, MdpError, PolicyEvaluation, PolicyIteration, PositionalStrategy,
    RelativeValueIteration, SolverParallelism, SweepKernel, TransitionRewards,
};

/// Which algorithm a [`MeanPayoffSolver`] should use.
#[derive(Debug, Clone, PartialEq)]
pub enum MeanPayoffMethod {
    /// Relative value iteration (default): sparse sweeps, certified bounds,
    /// scales to the largest selfish-mining models.
    ValueIteration {
        /// Width of the certified gain interval on termination.
        epsilon: f64,
    },
    /// Howard policy iteration: exact evaluation via linear solves; cubic in
    /// the number of states, so intended for small and medium models.
    PolicyIteration,
    /// Linear-programming formulation over the built-in simplex solver;
    /// intended for small models and cross-validation.
    LinearProgramming,
}

impl Default for MeanPayoffMethod {
    fn default() -> Self {
        MeanPayoffMethod::ValueIteration { epsilon: 1e-7 }
    }
}

/// Result of a mean-payoff optimisation.
#[derive(Debug, Clone)]
pub struct MeanPayoffResult {
    /// Optimal gain estimate.
    pub gain: f64,
    /// Certified lower bound on the optimal gain (equals `gain` for the exact
    /// methods).
    pub gain_lower: f64,
    /// Certified upper bound on the optimal gain (equals `gain` for the exact
    /// methods).
    pub gain_upper: f64,
    /// An optimal (ε-optimal for value iteration) positional strategy.
    pub strategy: PositionalStrategy,
    /// Number of iterations/sweeps performed (0 for the LP method).
    pub iterations: usize,
}

/// Solver façade: builds the requested algorithm and normalises its output
/// into a [`MeanPayoffResult`].
///
/// # Example
///
/// ```
/// use sm_mdp::{MdpBuilder, MeanPayoffMethod, MeanPayoffSolver, TransitionRewards};
///
/// # fn main() -> Result<(), sm_mdp::MdpError> {
/// let mut b = MdpBuilder::new(1);
/// b.add_action(0, "loop", vec![(0, 1.0)])?;
/// let mdp = b.build(0)?;
/// let rewards = TransitionRewards::from_fn(&mdp, |_, _, _| 1.5);
/// let solver = MeanPayoffSolver::new(MeanPayoffMethod::PolicyIteration);
/// let result = solver.solve(&mdp, &rewards)?;
/// assert!((result.gain - 1.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MeanPayoffSolver {
    method: MeanPayoffMethod,
    parallelism: SolverParallelism,
    kernel: SweepKernel,
}

impl MeanPayoffSolver {
    /// Creates a solver using the given method.
    pub fn new(method: MeanPayoffMethod) -> Self {
        MeanPayoffSolver {
            method,
            parallelism: SolverParallelism::serial(),
            kernel: SweepKernel::Jacobi,
        }
    }

    /// Returns the solver with the given intra-solve parallelism for its
    /// sweep-based methods (currently value iteration; the exact methods run
    /// dense linear algebra and ignore the knob). Results are bit-identical
    /// for any setting — see [`RelativeValueIteration::parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: SolverParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns the solver with the given sweep kernel for its sweep-based
    /// methods (currently value iteration; the exact methods ignore the
    /// knob). Certified bounds only ever come from full Bellman sweeps, so
    /// every kernel returns a valid gain interval — see
    /// [`RelativeValueIteration::kernel`].
    #[must_use]
    pub fn with_kernel(mut self, kernel: SweepKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The method this solver dispatches to.
    pub fn method(&self) -> &MeanPayoffMethod {
        &self.method
    }

    /// The intra-solve parallelism applied to sweep-based methods.
    pub fn parallelism(&self) -> SolverParallelism {
        self.parallelism
    }

    /// The sweep kernel applied to sweep-based methods.
    pub fn kernel(&self) -> SweepKernel {
        self.kernel
    }

    /// Computes the maximal mean payoff of `mdp` under `rewards`.
    ///
    /// # Errors
    ///
    /// Propagates errors of the underlying algorithm (shape mismatches,
    /// convergence failures, singular policy evaluations).
    pub fn solve(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
    ) -> Result<MeanPayoffResult, MdpError> {
        self.solve_seeded(mdp, rewards, None)
            .map(|(result, _)| result)
    }

    /// [`MeanPayoffSolver::solve`] with warm-start plumbing for solve chains
    /// (parameter sweeps, Dinkelbach iterations): for the value-iteration
    /// method the solve is seeded with a previous bias vector and the final
    /// bias is returned for the next call. The exact methods ignore the seed
    /// and return an empty carry-over; a mis-shaped seed is ignored rather
    /// than rejected (it is an accelerator, not an input).
    ///
    /// # Errors
    ///
    /// Same as [`MeanPayoffSolver::solve`].
    pub fn solve_seeded(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
        seed: Option<&[f64]>,
    ) -> Result<(MeanPayoffResult, Vec<f64>), MdpError> {
        match &self.method {
            MeanPayoffMethod::ValueIteration { epsilon } => {
                let solver = RelativeValueIteration::with_epsilon(*epsilon)
                    .with_parallelism(self.parallelism)
                    .with_kernel(self.kernel);
                let outcome = match seed {
                    Some(bias) if bias.len() == mdp.num_states() => {
                        solver.solve_from(mdp, rewards, bias)?
                    }
                    _ => solver.solve(mdp, rewards)?,
                };
                Ok((
                    MeanPayoffResult {
                        gain: outcome.gain,
                        gain_lower: outcome.gain_lower,
                        gain_upper: outcome.gain_upper,
                        strategy: outcome.strategy,
                        iterations: outcome.iterations,
                    },
                    outcome.bias,
                ))
            }
            MeanPayoffMethod::PolicyIteration => {
                let (gain, strategy) = PolicyIteration::default().solve(mdp, rewards)?;
                Ok((
                    MeanPayoffResult {
                        gain,
                        gain_lower: gain,
                        gain_upper: gain,
                        strategy,
                        iterations: 0,
                    },
                    Vec::new(),
                ))
            }
            MeanPayoffMethod::LinearProgramming => {
                let (gain, strategy) = LinearProgrammingSolver::default().solve(mdp, rewards)?;
                Ok((
                    MeanPayoffResult {
                        gain,
                        gain_lower: gain,
                        gain_upper: gain,
                        strategy,
                        iterations: 0,
                    },
                    Vec::new(),
                ))
            }
        }
    }

    /// Evaluates a *fixed* strategy exactly (gain of the induced unichain).
    /// Convenience used by baselines and tests.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (mismatched shapes, singular systems).
    pub fn evaluate_strategy(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
        strategy: &PositionalStrategy,
    ) -> Result<f64, MdpError> {
        let eval = PolicyEvaluation::evaluate(mdp, rewards, strategy)?;
        Ok(eval.gain_at(mdp.initial_state()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MdpBuilder;

    fn model() -> (Mdp, TransitionRewards) {
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "a0", vec![(1, 0.6), (2, 0.4)]).unwrap();
        b.add_action(0, "a1", vec![(0, 0.5), (2, 0.5)]).unwrap();
        b.add_action(1, "b0", vec![(0, 1.0)]).unwrap();
        b.add_action(1, "b1", vec![(2, 1.0)]).unwrap();
        b.add_action(2, "c0", vec![(0, 0.5), (1, 0.5)]).unwrap();
        let mdp = b.build(0).unwrap();
        let rewards = TransitionRewards::from_fn(&mdp, |s, a, t| {
            0.3 * s as f64 + 0.7 * a as f64 - 0.1 * t as f64
        });
        (mdp, rewards)
    }

    #[test]
    fn all_methods_agree() {
        let (mdp, rewards) = model();
        let vi = MeanPayoffSolver::new(MeanPayoffMethod::ValueIteration { epsilon: 1e-9 })
            .solve(&mdp, &rewards)
            .unwrap();
        let pi = MeanPayoffSolver::new(MeanPayoffMethod::PolicyIteration)
            .solve(&mdp, &rewards)
            .unwrap();
        let lp = MeanPayoffSolver::new(MeanPayoffMethod::LinearProgramming)
            .solve(&mdp, &rewards)
            .unwrap();
        assert!((vi.gain - pi.gain).abs() < 1e-6);
        assert!((pi.gain - lp.gain).abs() < 1e-6);
        assert!(vi.gain_lower <= vi.gain + 1e-12 && vi.gain <= vi.gain_upper + 1e-12);
    }

    #[test]
    fn value_iteration_bounds_contain_exact_gain() {
        let (mdp, rewards) = model();
        let exact = MeanPayoffSolver::new(MeanPayoffMethod::PolicyIteration)
            .solve(&mdp, &rewards)
            .unwrap()
            .gain;
        let vi = MeanPayoffSolver::new(MeanPayoffMethod::ValueIteration { epsilon: 1e-4 })
            .solve(&mdp, &rewards)
            .unwrap();
        assert!(vi.gain_lower <= exact + 1e-9);
        assert!(exact <= vi.gain_upper + 1e-9);
        assert!(vi.gain_upper - vi.gain_lower <= 1e-4 + 1e-12);
    }

    #[test]
    fn evaluate_strategy_matches_optimum_for_optimal_strategy() {
        let (mdp, rewards) = model();
        let solver = MeanPayoffSolver::new(MeanPayoffMethod::PolicyIteration);
        let result = solver.solve(&mdp, &rewards).unwrap();
        let evaluated = solver
            .evaluate_strategy(&mdp, &rewards, &result.strategy)
            .unwrap();
        assert!((evaluated - result.gain).abs() < 1e-9);
    }

    #[test]
    fn seeded_solve_matches_cold_solve_and_returns_a_carry_bias() {
        let (mdp, rewards) = model();
        let solver = MeanPayoffSolver::new(MeanPayoffMethod::ValueIteration { epsilon: 1e-9 });
        let (cold, bias) = solver.solve_seeded(&mdp, &rewards, None).unwrap();
        assert_eq!(bias.len(), mdp.num_states());
        let (warm, _) = solver.solve_seeded(&mdp, &rewards, Some(&bias)).unwrap();
        assert!((warm.gain - cold.gain).abs() < 2e-9);
        assert_eq!(warm.strategy, cold.strategy);
        assert!(warm.iterations <= cold.iterations);
        // Mis-shaped seeds are ignored, not rejected.
        let (ignored, _) = solver.solve_seeded(&mdp, &rewards, Some(&[0.0])).unwrap();
        assert!((ignored.gain - cold.gain).abs() < 2e-9);
        // Exact methods return an empty carry-over.
        let exact = MeanPayoffSolver::new(MeanPayoffMethod::PolicyIteration);
        let (_, carry) = exact.solve_seeded(&mdp, &rewards, Some(&bias)).unwrap();
        assert!(carry.is_empty());
    }

    #[test]
    fn default_method_is_value_iteration() {
        let solver = MeanPayoffSolver::default();
        assert!(matches!(
            solver.method(),
            MeanPayoffMethod::ValueIteration { .. }
        ));
    }
}
