//! The flat compressed-sparse-row (CSR) transition arena underlying [`Mdp`].
//!
//! Every layer of the solver stack reads the same three index arrays:
//!
//! * `row_ptr[s] .. row_ptr[s + 1]` — the state-action *pairs* of state `s`,
//! * `action_ptr[pair] .. action_ptr[pair + 1]` — the transitions of a pair,
//! * `col[k]` / `prob[k]` — successor state and probability of transition `k`.
//!
//! The index arrays live in a shared [`CsrLayout`] (behind an [`Arc`]) so that
//! reward structures ([`crate::TransitionRewards`]) can be stored as flat
//! per-transition buffers aligned with the very same offsets, and so that
//! strategy-induced Markov chains can be extracted by copying already-sorted
//! row slices with no per-row staging or re-sorting. (The chain constructor
//! in `sm-markov` still runs its own one-pass validation of the copied CSR
//! arrays — crate boundaries keep that invariant checked, not assumed.)
//!
//! Action names are interned into a deduplicated string table: the
//! selfish-mining model reuses a handful of names (`mine`,
//! `release(d,f,len)`) across hundreds of thousands of states, so per-pair
//! `String`s would dominate the memory profile.

use crate::{Mdp, MdpError, PROBABILITY_TOLERANCE};
use sm_markov::MarkovChain;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Largest index or entry count the compact (`u32`) CSR arena can represent.
pub const COMPACT_ARENA_LIMIT: usize = u32::MAX as usize;

/// Checked `usize` → `u32` conversion for the compact arena build paths.
pub(crate) fn compact_index(value: usize) -> Result<u32, MdpError> {
    u32::try_from(value).map_err(|_| MdpError::IndexOverflow {
        value,
        limit: COMPACT_ARENA_LIMIT,
    })
}

/// [`compact_index`] over a whole vector, reusing no allocation (the widths
/// differ) but failing on the first oversized entry.
pub(crate) fn compact_indices(values: Vec<usize>) -> Result<Vec<u32>, MdpError> {
    values.into_iter().map(compact_index).collect()
}

/// The index arrays of the CSR transition arena, shared between the MDP and
/// every reward structure aligned with it.
///
/// All three arrays store compact `u32` entries: the selfish-mining arenas
/// this workspace targets stay well under `u32::MAX` states and transitions
/// (a d=4, f=3 topology has millions, not billions), and halving the index
/// width halves the memory traffic of every solver sweep — the sweeps are
/// memory-bound, so this is a direct throughput win. Build paths that start
/// from `usize` arrays go through checked conversions and fail with
/// [`MdpError::IndexOverflow`] rather than wrapping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsrLayout {
    /// State → state-action-pair range; length `num_states + 1`.
    row_ptr: Vec<u32>,
    /// Pair → transition range; length `num_pairs + 1`.
    action_ptr: Vec<u32>,
    /// Successor state per transition, sorted within each pair.
    col: Vec<u32>,
}

impl CsrLayout {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }

    /// Total number of state-action pairs.
    pub fn num_pairs(&self) -> usize {
        self.action_ptr.len().saturating_sub(1)
    }

    /// Total number of transitions (successor entries over all pairs).
    pub fn num_transitions(&self) -> usize {
        self.col.len()
    }

    /// The state → pair-range pointer array (length `num_states + 1`).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The pair → transition-range pointer array (length `num_pairs + 1`).
    pub fn action_ptr(&self) -> &[u32] {
        &self.action_ptr
    }

    /// Successor state of every transition (compact `u32` indices), aligned
    /// with the probability and reward buffers.
    pub fn col(&self) -> &[u32] {
        &self.col
    }

    /// Bytes resident in the three index arrays (capacity not counted): the
    /// structural footprint of the arena, reported by the memory benches.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<u32>() * (self.row_ptr.len() + self.action_ptr.len() + self.col.len())
    }

    /// Number of actions available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn num_actions(&self, state: usize) -> usize {
        (self.row_ptr[state + 1] - self.row_ptr[state]) as usize
    }

    /// The arena index of the `action`-th pair of `state`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn pair_index(&self, state: usize, action: usize) -> usize {
        assert!(
            action < self.num_actions(state),
            "action {action} out of bounds for state {state} ({} available)",
            self.num_actions(state)
        );
        self.row_ptr[state] as usize + action
    }

    /// The pair range of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn pair_range(&self, state: usize) -> Range<usize> {
        self.row_ptr[state] as usize..self.row_ptr[state + 1] as usize
    }

    /// The transition range of a pair.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is out of bounds.
    pub fn transition_range(&self, pair: usize) -> Range<usize> {
        self.action_ptr[pair] as usize..self.action_ptr[pair + 1] as usize
    }

    /// Assembles a layout directly from its three index arrays, validating the
    /// CSR invariants: both pointer arrays must start at 0, be monotone and
    /// end at the length of the array they index, and every successor in `col`
    /// must be a valid state.
    ///
    /// This is the construction path used by builders that assemble the index
    /// arrays themselves (e.g. the parametric selfish-mining arena, which
    /// shares one layout across every `(p, γ)` instantiation).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::IndexOverflow`] if any entry does not fit the
    /// compact `u32` storage (checked *before* any structural validation, so
    /// oversized inputs fail with the typed error rather than a shape
    /// complaint), [`MdpError::InvalidState`] for an out-of-range successor
    /// and [`MdpError::RewardShapeMismatch`] (with a description) for
    /// malformed pointer arrays.
    pub fn from_raw_parts(
        row_ptr: Vec<usize>,
        action_ptr: Vec<usize>,
        col: Vec<usize>,
    ) -> Result<CsrLayout, MdpError> {
        CsrLayout::from_raw_parts_u32(
            compact_indices(row_ptr)?,
            compact_indices(action_ptr)?,
            compact_indices(col)?,
        )
    }

    /// [`CsrLayout::from_raw_parts`] over already-compact `u32` arrays — the
    /// native path for builders that assemble compact arrays directly (no
    /// widening round-trip, no conversion pass).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidState`] for an out-of-range successor and
    /// [`MdpError::RewardShapeMismatch`] (with a description) for malformed
    /// pointer arrays.
    pub fn from_raw_parts_u32(
        row_ptr: Vec<u32>,
        action_ptr: Vec<u32>,
        col: Vec<u32>,
    ) -> Result<CsrLayout, MdpError> {
        let shape_error = |detail: String| MdpError::RewardShapeMismatch { detail };
        if row_ptr.first() != Some(&0) || action_ptr.first() != Some(&0) {
            return Err(shape_error(
                "CSR pointer arrays must be non-empty and start at 0".to_string(),
            ));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) || action_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(shape_error(
                "CSR pointer arrays must be monotonically non-decreasing".to_string(),
            ));
        }
        let num_pairs = action_ptr.len() - 1;
        if *row_ptr.last().expect("checked non-empty") as usize != num_pairs {
            return Err(shape_error(format!(
                "row_ptr ends at {} but the arena has {num_pairs} pairs",
                row_ptr.last().expect("checked non-empty")
            )));
        }
        if *action_ptr.last().expect("checked non-empty") as usize != col.len() {
            return Err(shape_error(format!(
                "action_ptr ends at {} but the arena has {} transitions",
                action_ptr.last().expect("checked non-empty"),
                col.len()
            )));
        }
        let num_states = row_ptr.len() - 1;
        if let Some(&target) = col.iter().find(|&&t| t as usize >= num_states) {
            return Err(MdpError::InvalidState {
                state: target as usize,
                num_states,
            });
        }
        Ok(CsrLayout {
            row_ptr,
            action_ptr,
            col,
        })
    }
}

/// A finite MDP stored as one flat CSR transition arena: index arrays in a
/// shared [`CsrLayout`], probabilities in a single `Vec<f64>` aligned with
/// `col`, and action names interned into a deduplicated table.
///
/// [`Mdp`] is a thin façade over this type; solvers that want raw slice
/// access use [`Mdp::csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMdp {
    layout: Arc<CsrLayout>,
    /// Transition probability per arena slot, aligned with `layout.col()`.
    prob: Vec<f64>,
    /// Interned action-name table.
    names: Vec<String>,
    /// Per-pair index into `names`.
    name_of_pair: Vec<u32>,
    initial_state: usize,
}

impl CsrMdp {
    /// Assembles an arena from an already-validated layout plus the aligned
    /// probability buffer and interned action-name table.
    ///
    /// This is the zero-rebuild path used by parametric model families: the
    /// layout (and the `Arc` it lives behind) is shared across every
    /// instantiation, only the probability buffer is fresh. Shapes are
    /// checked here; *distribution* validity (rows summing to 1) is the
    /// caller's responsibility — run [`CsrMdp::validate`] when in doubt.
    /// Zero-probability transitions are allowed: a parametric arena keeps
    /// masked branches (e.g. `γ = 0` race outcomes) structurally and masks
    /// them numerically.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::RewardShapeMismatch`] if `prob` or `name_of_pair`
    /// are not aligned with the layout or reference missing names, and
    /// [`MdpError::InvalidState`] for an out-of-range initial state.
    pub fn from_raw_parts(
        layout: Arc<CsrLayout>,
        prob: Vec<f64>,
        names: Vec<String>,
        name_of_pair: Vec<u32>,
        initial_state: usize,
    ) -> Result<CsrMdp, MdpError> {
        if prob.len() != layout.num_transitions() {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "probability buffer has {} entries, arena has {} transitions",
                    prob.len(),
                    layout.num_transitions()
                ),
            });
        }
        if name_of_pair.len() != layout.num_pairs() {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "name table covers {} pairs, arena has {}",
                    name_of_pair.len(),
                    layout.num_pairs()
                ),
            });
        }
        if let Some(&id) = name_of_pair.iter().find(|&&id| id as usize >= names.len()) {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "pair references action name {id}, table has {} entries",
                    names.len()
                ),
            });
        }
        if initial_state >= layout.num_states() {
            return Err(MdpError::InvalidState {
                state: initial_state,
                num_states: layout.num_states(),
            });
        }
        Ok(CsrMdp {
            layout,
            prob,
            names,
            name_of_pair,
            initial_state,
        })
    }

    /// Rewrites every transition probability in place: `weight(k)` is the new
    /// probability of arena transition `k` (the one targeting
    /// `layout.col()[k]`).
    ///
    /// The layout, action names and reward alignments are untouched, which is
    /// what lets a parametric model family re-instantiate an arena for new
    /// parameter values in one linear pass with no rebuild. The caller is
    /// responsible for keeping every per-pair distribution valid (summing to
    /// 1); [`CsrMdp::validate`] checks that invariant.
    pub fn reweight_in_place(&mut self, mut weight: impl FnMut(usize) -> f64) {
        for (k, p) in self.prob.iter_mut().enumerate() {
            *p = weight(k);
        }
        #[cfg(feature = "deep-checks")]
        debug_assert!(
            self.validate().is_ok(),
            "deep-checks: reweighted arena fails validation: {:?}",
            self.validate()
        );
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.layout.num_states()
    }

    /// The initial state `s₀`.
    pub fn initial_state(&self) -> usize {
        self.initial_state
    }

    /// Number of actions available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn num_actions(&self, state: usize) -> usize {
        self.layout.num_actions(state)
    }

    /// Total number of state-action pairs.
    pub fn num_pairs(&self) -> usize {
        self.layout.num_pairs()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.layout.num_transitions()
    }

    /// The shared index arrays of the arena.
    pub fn layout(&self) -> &CsrLayout {
        &self.layout
    }

    /// A clone of the [`Arc`] holding the index arrays, for structures that
    /// must stay aligned with this arena (reward buffers).
    pub fn layout_arc(&self) -> Arc<CsrLayout> {
        Arc::clone(&self.layout)
    }

    /// The flat probability buffer, aligned with [`CsrLayout::col`].
    pub fn probabilities(&self) -> &[f64] {
        &self.prob
    }

    /// The interned action-name table.
    pub fn action_names(&self) -> &[String] {
        &self.names
    }

    /// Name of the `action`-th action of `state`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn action_name(&self, state: usize, action: usize) -> &str {
        &self.names[self.name_of_pair[self.layout.pair_index(state, action)] as usize]
    }

    /// Successors of the `action`-th action of `state` as parallel slices of
    /// (compact `u32`) targets and probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn successors(&self, state: usize, action: usize) -> (&[u32], &[f64]) {
        let range = self
            .layout
            .transition_range(self.layout.pair_index(state, action));
        (&self.layout.col()[range.clone()], &self.prob[range])
    }

    /// Finds the index of an action by name in the given state.
    pub fn find_action(&self, state: usize, name: &str) -> Option<usize> {
        if state >= self.num_states() {
            return None;
        }
        let pairs = self.layout.pair_range(state);
        self.name_of_pair[pairs]
            .iter()
            .position(|&id| self.names[id as usize] == name)
    }

    /// Checks basic sanity of the arena: a non-empty model, at least one
    /// action per state, targets in bounds, and validated distributions.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`MdpError`] on the first violation found.
    pub fn validate(&self) -> Result<(), MdpError> {
        let n = self.num_states();
        if n == 0 {
            return Err(MdpError::EmptyModel);
        }
        for state in 0..n {
            if self.num_actions(state) == 0 {
                return Err(MdpError::NoActions { state });
            }
            for pair in self.layout.pair_range(state) {
                let range = self.layout.transition_range(pair);
                let cols = &self.layout.col()[range.clone()];
                let probs = &self.prob[range];
                let sum: f64 = probs.iter().sum();
                if (sum - 1.0).abs() > PROBABILITY_TOLERANCE || probs.iter().any(|&p| p < 0.0) {
                    return Err(MdpError::InvalidDistribution {
                        state,
                        action: self.names[self.name_of_pair[pair] as usize].clone(),
                        sum,
                    });
                }
                if let Some(&target) = cols.iter().find(|&&t| t as usize >= n) {
                    return Err(MdpError::InvalidState {
                        state: target as usize,
                        num_states: n,
                    });
                }
            }
        }
        Ok(())
    }

    /// The Markov chain induced by a positional strategy, extracted by copying
    /// the chosen row slices straight out of the arena (no per-row allocation,
    /// no re-sorting: arena rows are already sorted by successor). The chain
    /// constructor re-validates the assembled CSR arrays in one pass.
    ///
    /// Zero-probability transitions are dropped during the copy: arenas
    /// produced by the builders never contain them, but parametric
    /// instantiations keep masked branches (e.g. `γ = 0` race outcomes)
    /// structurally, and those must not register as edges of the induced
    /// chain (they would corrupt its recurrence classification).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidAction`] if the strategy selects an action
    /// that does not exist, or a shape error if the strategy does not cover
    /// every state.
    pub fn induced_chain(
        &self,
        strategy: &crate::PositionalStrategy,
    ) -> Result<MarkovChain, MdpError> {
        let n = self.num_states();
        if strategy.num_states() != n {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "strategy covers {} states, MDP has {}",
                    strategy.num_states(),
                    n
                ),
            });
        }
        let mut nnz = 0;
        for state in 0..n {
            let action = strategy.action(state);
            if action >= self.num_actions(state) {
                return Err(MdpError::InvalidAction {
                    state,
                    action,
                    available: self.num_actions(state),
                });
            }
            nnz += self
                .layout
                .transition_range(self.layout.pair_index(state, action))
                .len();
        }
        let mut row_ptr: Vec<u32> = Vec::with_capacity(n + 1);
        let mut col: Vec<u32> = Vec::with_capacity(nnz);
        let mut prob = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for state in 0..n {
            let range = self
                .layout
                .transition_range(self.layout.pair_index(state, strategy.action(state)));
            for (&target, &p) in self.layout.col()[range.clone()]
                .iter()
                .zip(&self.prob[range])
            {
                if p > 0.0 {
                    col.push(target);
                    prob.push(p);
                }
            }
            // The chain's transition count is bounded by the arena's, which
            // the compact layout already proved fits in u32.
            row_ptr.push(col.len() as u32);
        }
        Ok(MarkovChain::from_csr_parts_u32(row_ptr, col, prob)?)
    }

    /// States reachable from the initial state under *some* strategy, in
    /// breadth-first order.
    pub fn reachable_states(&self) -> Vec<usize> {
        let n = self.num_states();
        let mut seen = vec![false; n];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen[self.initial_state] = true;
        queue.push_back(self.initial_state);
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for pair in self.layout.pair_range(s) {
                let range = self.layout.transition_range(pair);
                for (&t, &p) in self.layout.col()[range.clone()]
                    .iter()
                    .zip(&self.prob[range])
                {
                    let t = t as usize;
                    if p > 0.0 && !seen[t] {
                        seen[t] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        order
    }
}

/// Streaming builder for the CSR arena: states are appended in index order
/// ([`CsrMdpBuilder::begin_state`]) and actions are appended to the *current*
/// state, which is exactly the order a breadth-first model exploration
/// discovers them in. Transitions may reference states that have not been
/// begun yet (forward edges); target bounds are checked in
/// [`CsrMdpBuilder::finish`].
///
/// # Example
///
/// ```
/// use sm_mdp::CsrMdpBuilder;
///
/// # fn main() -> Result<(), sm_mdp::MdpError> {
/// let mut b = CsrMdpBuilder::new();
/// b.begin_state(); // state 0
/// b.add_action("go", &[(1, 1.0)])?; // forward edge to state 1
/// b.begin_state(); // state 1
/// b.add_action("stay", &[(1, 0.5), (0, 0.5)])?;
/// let mdp = b.finish(0)?;
/// assert_eq!(mdp.num_states(), 2);
/// assert_eq!(mdp.csr().successors(1, 0), (&[0u32, 1][..], &[0.5f64, 0.5][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrMdpBuilder {
    row_ptr: Vec<u32>,
    action_ptr: Vec<u32>,
    col: Vec<u32>,
    prob: Vec<f64>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    name_of_pair: Vec<u32>,
    states: usize,
    /// Scratch buffer reused across `add_action` calls for sort-and-merge.
    scratch: Vec<(u32, f64)>,
}

impl CsrMdpBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        let mut builder = CsrMdpBuilder::default();
        builder.row_ptr.push(0);
        builder.action_ptr.push(0);
        builder
    }

    /// Creates a builder with pre-reserved capacity for roughly the given
    /// numbers of states, state-action pairs and transitions.
    pub fn with_capacity(states: usize, pairs: usize, transitions: usize) -> Self {
        let mut builder = CsrMdpBuilder {
            row_ptr: Vec::with_capacity(states + 1),
            action_ptr: Vec::with_capacity(pairs + 1),
            col: Vec::with_capacity(transitions),
            prob: Vec::with_capacity(transitions),
            name_of_pair: Vec::with_capacity(pairs),
            ..CsrMdpBuilder::default()
        };
        builder.row_ptr.push(0);
        builder.action_ptr.push(0);
        builder
    }

    /// Number of states begun so far.
    pub fn num_states(&self) -> usize {
        self.states
    }

    /// Total number of state-action pairs appended so far.
    pub fn num_pairs(&self) -> usize {
        self.name_of_pair.len()
    }

    /// Total number of transitions appended so far.
    pub fn num_transitions(&self) -> usize {
        self.col.len()
    }

    /// Opens the next state and returns its index. Subsequent
    /// [`CsrMdpBuilder::add_action`] calls append to this state.
    pub fn begin_state(&mut self) -> usize {
        // The pair count always fits u32: every pair goes through
        // `add_action`, which checks the count before appending.
        let pairs = self.num_pairs() as u32;
        if self.states > 0 {
            // Close the previous state's pair range.
            let last = self.row_ptr.len() - 1;
            self.row_ptr[last] = pairs;
        }
        self.row_ptr.push(pairs);
        self.states += 1;
        self.states - 1
    }

    /// Appends an action to the current state with the given successor
    /// distribution (duplicate targets are summed, zero-probability entries
    /// dropped, successors sorted). Returns the action's index within the
    /// state.
    ///
    /// Targets may reference states that do not exist *yet*; bounds are
    /// enforced by [`CsrMdpBuilder::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NoActions`]-style [`MdpError::InvalidState`] if no
    /// state has been begun, [`MdpError::InvalidDistribution`] if the
    /// probabilities are invalid or do not sum to 1, and
    /// [`MdpError::IndexOverflow`] if a target, the transition count or the
    /// pair count no longer fits the compact `u32` arena.
    pub fn add_action(
        &mut self,
        name: &str,
        transitions: &[(usize, f64)],
    ) -> Result<usize, MdpError> {
        if self.states == 0 {
            return Err(MdpError::InvalidState {
                state: 0,
                num_states: 0,
            });
        }
        let state = self.states - 1;
        let mut sum = 0.0;
        for &(_, p) in transitions {
            if !p.is_finite() || p < 0.0 {
                return Err(MdpError::InvalidDistribution {
                    state,
                    action: name.to_string(),
                    sum: p,
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > PROBABILITY_TOLERANCE {
            return Err(MdpError::InvalidDistribution {
                state,
                action: name.to_string(),
                sum,
            });
        }
        // Keep the running pair and transition counts inside the compact
        // range *before* appending, so a failed call leaves the builder
        // unchanged.
        compact_index(self.num_pairs() + 1)?;
        compact_index(self.col.len() + transitions.len())?;

        // Sort-and-merge into the arena, one entry per distinct successor.
        self.scratch.clear();
        for &(target, p) in transitions {
            self.scratch.push((compact_index(target)?, p));
        }
        self.scratch.sort_unstable_by_key(|&(t, _)| t);
        let action_start = self.col.len();
        for &(target, p) in &self.scratch {
            if p == 0.0 {
                continue;
            }
            match self.prob.last_mut() {
                Some(last_prob)
                    if self.col.len() > action_start && self.col.last() == Some(&target) =>
                {
                    *last_prob += p;
                }
                _ => {
                    self.col.push(target);
                    self.prob.push(p);
                }
            }
        }
        self.action_ptr.push(self.col.len() as u32);

        let name_id = match self.name_ids.get(name) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.names.len()).expect("more than u32::MAX action names");
                self.names.push(name.to_string());
                self.name_ids.insert(name.to_string(), id);
                id
            }
        };
        self.name_of_pair.push(name_id);
        Ok(self.num_pairs() - self.row_ptr[state] as usize - 1)
    }

    /// Finalises the arena into an [`Mdp`] with the given initial state.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is empty, the initial state or a
    /// transition target is out of range, or some state has no actions.
    pub fn finish(mut self, initial_state: usize) -> Result<Mdp, MdpError> {
        if self.states == 0 {
            return Err(MdpError::EmptyModel);
        }
        // Close the final state's pair range.
        let last = self.row_ptr.len() - 1;
        self.row_ptr[last] = self.num_pairs() as u32;
        if initial_state >= self.states {
            return Err(MdpError::InvalidState {
                state: initial_state,
                num_states: self.states,
            });
        }
        if let Some(state) = (0..self.states).find(|&s| self.row_ptr[s + 1] == self.row_ptr[s]) {
            return Err(MdpError::NoActions { state });
        }
        if let Some(&target) = self.col.iter().find(|&&t| t as usize >= self.states) {
            return Err(MdpError::InvalidState {
                state: target as usize,
                num_states: self.states,
            });
        }
        let layout = CsrLayout {
            row_ptr: self.row_ptr,
            action_ptr: self.action_ptr,
            col: self.col,
        };
        let csr = CsrMdp {
            layout: Arc::new(layout),
            prob: self.prob,
            names: self.names,
            name_of_pair: self.name_of_pair,
            initial_state,
        };
        #[cfg(feature = "deep-checks")]
        debug_assert!(
            csr.validate().is_ok(),
            "deep-checks: finished arena fails validation: {:?}",
            csr.validate()
        );
        Ok(Mdp::from_csr(csr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_builder_produces_expected_layout() {
        let mut b = CsrMdpBuilder::new();
        assert_eq!(b.begin_state(), 0);
        b.add_action("a", &[(0, 0.5), (1, 0.5)]).unwrap();
        b.add_action("b", &[(1, 1.0)]).unwrap();
        assert_eq!(b.begin_state(), 1);
        b.add_action("a", &[(0, 1.0)]).unwrap();
        let mdp = b.finish(0).unwrap();
        let csr = mdp.csr();
        assert_eq!(csr.num_states(), 2);
        assert_eq!(csr.num_pairs(), 3);
        assert_eq!(csr.num_transitions(), 4);
        assert_eq!(csr.layout().row_ptr(), &[0, 2, 3]);
        assert_eq!(csr.layout().action_ptr(), &[0, 2, 3, 4]);
        assert_eq!(csr.layout().col(), &[0, 1, 1, 0]);
        // The name table is interned: "a" appears once.
        assert_eq!(csr.action_names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(csr.action_name(1, 0), "a");
    }

    #[test]
    fn duplicate_targets_are_merged_and_zeros_dropped() {
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        b.add_action("a", &[(0, 0.25), (0, 0.5), (0, 0.25), (0, 0.0)])
            .unwrap();
        let mdp = b.finish(0).unwrap();
        assert_eq!(mdp.csr().successors(0, 0), (&[0u32][..], &[1.0f64][..]));
    }

    #[test]
    fn merge_does_not_leak_across_actions() {
        // Two consecutive actions both ending/starting at the same target
        // must not be merged together.
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        b.add_action("a", &[(0, 1.0)]).unwrap();
        b.add_action("b", &[(0, 1.0)]).unwrap();
        let mdp = b.finish(0).unwrap();
        assert_eq!(mdp.num_state_action_pairs(), 2);
        assert_eq!(mdp.csr().successors(0, 0), (&[0u32][..], &[1.0f64][..]));
        assert_eq!(mdp.csr().successors(0, 1), (&[0u32][..], &[1.0f64][..]));
    }

    #[test]
    fn forward_references_are_allowed_until_finish() {
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        b.add_action("go", &[(5, 1.0)]).unwrap();
        let err = b.finish(0).unwrap_err();
        assert!(matches!(err, MdpError::InvalidState { state: 5, .. }));
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = CsrMdpBuilder::new();
        assert!(matches!(
            b.add_action("early", &[(0, 1.0)]),
            Err(MdpError::InvalidState { .. })
        ));
        b.begin_state();
        assert!(matches!(
            b.add_action("bad", &[(0, 0.5)]),
            Err(MdpError::InvalidDistribution { .. })
        ));
        assert!(matches!(
            b.add_action("nan", &[(0, f64::NAN)]),
            Err(MdpError::InvalidDistribution { .. })
        ));
        assert!(matches!(
            CsrMdpBuilder::new().finish(0),
            Err(MdpError::EmptyModel)
        ));
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        assert!(matches!(b.finish(0), Err(MdpError::NoActions { state: 0 })));
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        b.add_action("a", &[(0, 1.0)]).unwrap();
        assert!(matches!(b.finish(7), Err(MdpError::InvalidState { .. })));
    }

    #[test]
    fn layout_from_raw_parts_validates_invariants() {
        // A valid 2-state layout round-trips.
        let layout = CsrLayout::from_raw_parts(vec![0, 1, 2], vec![0, 1, 2], vec![1, 0]).unwrap();
        assert_eq!(layout.num_states(), 2);
        assert_eq!(layout.num_pairs(), 2);
        assert_eq!(layout.num_transitions(), 2);
        // Pointer arrays must start at 0...
        assert!(CsrLayout::from_raw_parts(vec![1, 2], vec![0], vec![]).is_err());
        assert!(CsrLayout::from_raw_parts(vec![], vec![0], vec![]).is_err());
        // ...be monotone...
        assert!(CsrLayout::from_raw_parts(vec![0, 2, 1], vec![0, 1, 2], vec![0, 0]).is_err());
        // ...and end at the right totals.
        assert!(CsrLayout::from_raw_parts(vec![0, 1], vec![0, 1, 2], vec![0, 0]).is_err());
        assert!(CsrLayout::from_raw_parts(vec![0, 1], vec![0, 3], vec![0, 0]).is_err());
        // Successors must be in range.
        assert!(matches!(
            CsrLayout::from_raw_parts(vec![0, 1], vec![0, 1], vec![5]),
            Err(MdpError::InvalidState { state: 5, .. })
        ));
    }

    #[test]
    fn mdp_from_raw_parts_checks_shapes_and_allows_masked_zeros() {
        let layout = Arc::new(
            CsrLayout::from_raw_parts(vec![0, 1, 2], vec![0, 2, 3], vec![0, 1, 0]).unwrap(),
        );
        // Zero-probability ("masked") entries are allowed as long as rows
        // still sum to 1.
        let csr = CsrMdp::from_raw_parts(
            Arc::clone(&layout),
            vec![1.0, 0.0, 1.0],
            vec!["a".to_string()],
            vec![0, 0],
            0,
        )
        .unwrap();
        csr.validate().unwrap();
        assert_eq!(csr.successors(0, 0), (&[0u32, 1][..], &[1.0f64, 0.0][..]));

        // Misaligned probability buffer, name table and initial state fail.
        assert!(CsrMdp::from_raw_parts(
            Arc::clone(&layout),
            vec![1.0],
            vec!["a".to_string()],
            vec![0, 0],
            0
        )
        .is_err());
        assert!(CsrMdp::from_raw_parts(
            Arc::clone(&layout),
            vec![1.0, 0.0, 1.0],
            vec!["a".to_string()],
            vec![0],
            0
        )
        .is_err());
        assert!(CsrMdp::from_raw_parts(
            Arc::clone(&layout),
            vec![1.0, 0.0, 1.0],
            vec!["a".to_string()],
            vec![0, 7],
            0
        )
        .is_err());
        assert!(CsrMdp::from_raw_parts(
            layout,
            vec![1.0, 0.0, 1.0],
            vec!["a".to_string()],
            vec![0, 0],
            9
        )
        .is_err());
    }

    #[test]
    fn reweight_in_place_rewrites_the_probability_buffer() {
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        b.add_action("a", &[(0, 0.25), (1, 0.75)]).unwrap();
        b.begin_state();
        b.add_action("b", &[(0, 1.0)]).unwrap();
        let mut mdp = b.finish(0).unwrap();
        let new_probs = [0.5, 0.5, 1.0];
        mdp.csr_mut().reweight_in_place(|k| new_probs[k]);
        assert_eq!(mdp.csr().probabilities(), &new_probs);
        mdp.validate().unwrap();
    }

    #[test]
    fn induced_chain_drops_masked_zero_probability_entries() {
        let layout = Arc::new(
            CsrLayout::from_raw_parts(vec![0, 1, 2], vec![0, 2, 3], vec![0, 1, 1]).unwrap(),
        );
        // State 0's only action keeps a masked (probability-0) edge to the
        // absorbing state 1; the induced chain must not contain that edge, so
        // state 0 is correctly classified as its own recurrent class.
        let csr = CsrMdp::from_raw_parts(
            layout,
            vec![1.0, 0.0, 1.0],
            vec!["a".to_string()],
            vec![0, 0],
            0,
        )
        .unwrap();
        let strategy = crate::PositionalStrategy::uniform_first_action(2);
        let chain = csr.induced_chain(&strategy).unwrap();
        assert_eq!(chain.successors(0), (&[0u32][..], &[1.0f64][..]));
        let scc = chain.classify();
        assert_eq!(scc.recurrent_classes().len(), 2);
    }

    #[test]
    fn with_capacity_matches_default_semantics() {
        let mut b = CsrMdpBuilder::with_capacity(2, 3, 4);
        b.begin_state();
        b.add_action("x", &[(1, 1.0)]).unwrap();
        b.begin_state();
        b.add_action("y", &[(0, 1.0)]).unwrap();
        let mdp = b.finish(1).unwrap();
        assert_eq!(mdp.initial_state(), 1);
        assert!(mdp.validate().is_ok());
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversized_indices_fail_with_the_typed_overflow_error() {
        let too_big = u32::MAX as usize + 1;
        // The conversion runs *before* structural validation, so the typed
        // overflow error wins over the out-of-range-successor complaint —
        // and the inputs stay tiny, no arena-sized allocation happens.
        let err = CsrLayout::from_raw_parts(vec![0, 1], vec![0, 1], vec![too_big]).unwrap_err();
        assert!(matches!(
            err,
            MdpError::IndexOverflow { value, limit }
                if value == too_big && limit == COMPACT_ARENA_LIMIT
        ));
        // The streaming builder rejects oversized targets before mutating
        // its buffers.
        let mut b = CsrMdpBuilder::new();
        b.begin_state();
        let err = b.add_action("big", &[(too_big, 1.0)]).unwrap_err();
        assert!(matches!(err, MdpError::IndexOverflow { .. }));
        assert_eq!(b.num_transitions(), 0);
    }

    #[test]
    fn usize_and_u32_raw_part_paths_are_bit_identical() {
        use crate::{Mdp, RelativeValueIteration, TransitionRewards};
        use std::collections::BTreeSet;
        // Deterministic xorshift so the property test needs no RNG crate.
        let mut rng_state = 0x5ee9_b10c_dead_beef_u64;
        let mut rng = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for _case in 0..25 {
            let num_states = 2 + (rng() % 6) as usize;
            let mut row_ptr = vec![0usize];
            let mut action_ptr = vec![0usize];
            let mut col: Vec<usize> = Vec::new();
            let mut prob: Vec<f64> = Vec::new();
            for s in 0..num_states {
                for _a in 0..1 + (rng() % 3) as usize {
                    // Every action reaches the next state on the cycle, so
                    // any strategy induces a unichain and RVI converges.
                    let mut targets: BTreeSet<usize> = BTreeSet::new();
                    targets.insert((s + 1) % num_states);
                    for _ in 0..rng() % 3 {
                        targets.insert((rng() % num_states as u64) as usize);
                    }
                    let weights: Vec<f64> =
                        targets.iter().map(|_| 1.0 + (rng() % 8) as f64).collect();
                    let total: f64 = weights.iter().sum();
                    for (&t, &w) in targets.iter().zip(&weights) {
                        col.push(t);
                        prob.push(w / total);
                    }
                    action_ptr.push(col.len());
                }
                row_ptr.push(action_ptr.len() - 1);
            }

            let widened =
                CsrLayout::from_raw_parts(row_ptr.clone(), action_ptr.clone(), col.clone())
                    .unwrap();
            let compact = CsrLayout::from_raw_parts_u32(
                row_ptr.iter().map(|&v| v as u32).collect(),
                action_ptr.iter().map(|&v| v as u32).collect(),
                col.iter().map(|&v| v as u32).collect(),
            )
            .unwrap();
            assert_eq!(widened, compact);

            let solve = |layout: CsrLayout| {
                let num_pairs = layout.num_pairs();
                let csr = CsrMdp::from_raw_parts(
                    Arc::new(layout),
                    prob.clone(),
                    vec!["act".to_string()],
                    vec![0; num_pairs],
                    0,
                )
                .unwrap();
                let mdp = Mdp::from_csr(csr);
                let rewards = TransitionRewards::from_fn(&mdp, |s, a, t| {
                    0.4 * s as f64 + 0.9 * a as f64 - 0.2 * t as f64
                });
                RelativeValueIteration::with_epsilon(1e-7)
                    .solve(&mdp, &rewards)
                    .unwrap()
            };
            let from_widened = solve(widened);
            let from_compact = solve(compact);
            assert_eq!(from_widened.gain.to_bits(), from_compact.gain.to_bits());
            assert_eq!(
                from_widened.gain_lower.to_bits(),
                from_compact.gain_lower.to_bits()
            );
            assert_eq!(
                from_widened.gain_upper.to_bits(),
                from_compact.gain_upper.to_bits()
            );
            assert_eq!(from_widened.strategy, from_compact.strategy);
        }
    }
}
