//! Error type for MDP construction and solving.

use sm_linalg::LinalgError;
use sm_markov::MarkovError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or solving an MDP.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// A state index is out of range.
    InvalidState {
        /// The offending state index.
        state: usize,
        /// The number of states in the MDP.
        num_states: usize,
    },
    /// A transition distribution does not sum to 1 or contains invalid values.
    InvalidDistribution {
        /// State the action belongs to.
        state: usize,
        /// Name of the offending action.
        action: String,
        /// Sum of the provided probabilities.
        sum: f64,
    },
    /// A state has no available action (the MDP would deadlock).
    NoActions {
        /// The deadlocking state.
        state: usize,
    },
    /// An action index is out of range for the given state.
    InvalidAction {
        /// The state.
        state: usize,
        /// The requested action index.
        action: usize,
        /// The number of actions available in the state.
        available: usize,
    },
    /// A reward structure does not match the MDP shape.
    RewardShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// An iterative solver failed to converge within its budget.
    ConvergenceFailure {
        /// The solver that failed.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// An index or entry count does not fit the compact (`u32`) CSR arena
    /// storage. Raised by the checked `usize` → `u32` build paths instead of
    /// silently wrapping; arenas this large need a wider index type, not a
    /// truncated one.
    IndexOverflow {
        /// The index or count that did not fit.
        value: usize,
        /// The largest representable value.
        limit: usize,
    },
    /// The MDP is empty.
    EmptyModel,
    /// An invalid parameter was supplied to a solver.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        constraint: &'static str,
    },
    /// An internal structural invariant was violated — a "cannot happen"
    /// condition surfaced as a typed error instead of a panic, so library
    /// callers can recover (or at least report) rather than unwind.
    InvariantViolation {
        /// Description of the violated invariant.
        detail: &'static str,
    },
    /// An underlying Markov-chain computation failed.
    Markov(MarkovError),
    /// An underlying linear-algebra computation failed.
    Linalg(LinalgError),
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::InvalidState { state, num_states } => {
                write!(f, "state {state} out of range (num states {num_states})")
            }
            MdpError::InvalidDistribution { state, action, sum } => write!(
                f,
                "action '{action}' in state {state} has probabilities summing to {sum}"
            ),
            MdpError::NoActions { state } => write!(f, "state {state} has no actions"),
            MdpError::InvalidAction {
                state,
                action,
                available,
            } => write!(
                f,
                "action index {action} invalid in state {state} ({available} available)"
            ),
            MdpError::RewardShapeMismatch { detail } => {
                write!(f, "reward shape mismatch: {detail}")
            }
            MdpError::ConvergenceFailure { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
            MdpError::IndexOverflow { value, limit } => write!(
                f,
                "index or count {value} exceeds the compact CSR arena limit {limit}"
            ),
            MdpError::EmptyModel => write!(f, "MDP has no states"),
            MdpError::InvalidParameter { name, constraint } => {
                write!(f, "parameter {name} violates constraint: {constraint}")
            }
            MdpError::InvariantViolation { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
            MdpError::Markov(err) => write!(f, "markov error: {err}"),
            MdpError::Linalg(err) => write!(f, "linear algebra error: {err}"),
        }
    }
}

impl Error for MdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MdpError::Markov(err) => Some(err),
            MdpError::Linalg(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MarkovError> for MdpError {
    fn from(err: MarkovError) -> Self {
        MdpError::Markov(err)
    }
}

impl From<LinalgError> for MdpError {
    fn from(err: LinalgError) -> Self {
        MdpError::Linalg(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let err = MdpError::InvalidDistribution {
            state: 2,
            action: "mine".to_string(),
            sum: 0.9,
        };
        let s = err.to_string();
        assert!(s.contains("mine") && s.contains('2') && s.contains("0.9"));
    }

    #[test]
    fn overflow_display_names_both_sides() {
        let err = MdpError::IndexOverflow {
            value: 5_000_000_000,
            limit: u32::MAX as usize,
        };
        let s = err.to_string();
        assert!(s.contains("5000000000") && s.contains(&u32::MAX.to_string()));
    }

    #[test]
    fn conversions_preserve_source() {
        let err: MdpError = MarkovError::EmptyChain.into();
        assert!(Error::source(&err).is_some());
        let err: MdpError = LinalgError::SingularMatrix.into();
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MdpError>();
    }
}
