//! Relative value iteration for the maximal mean-payoff objective.
//!
//! This is the workhorse solver of the reproduction: it touches each
//! transition a constant number of times per sweep, so it scales to the large
//! state spaces produced by the selfish-mining model at higher attack depths.

use crate::{Mdp, MdpError, PositionalStrategy, TransitionRewards};
use sm_markov::{
    mass_balanced_blocks, mass_capped_threads, priority_blocks, sweep_scope, SolverParallelism,
    SweepKernel,
};
use std::sync::{Mutex, PoisonError, RwLock};

/// Relative value iteration (RVI) with the standard aperiodicity ("lazy")
/// transformation, for unichain MDPs under the *maximal* mean-payoff
/// objective.
///
/// The solver maintains a bias estimate `h` and repeatedly applies the Bellman
/// operator of the transformed MDP `P' = (1−τ)·I + τ·P` (which has the same
/// gain and the same optimal strategies as the original for every τ ∈ (0,1]).
/// The per-sweep increments `Δ(s) = (T h)(s) − h(s)` sandwich the optimal
/// gain: `min_s Δ(s) ≤ g* ≤ max_s Δ(s)`, which is what provides the certified
/// lower/upper bounds reported in the result.
///
/// # Example
///
/// ```
/// use sm_mdp::{MdpBuilder, RelativeValueIteration, TransitionRewards};
///
/// # fn main() -> Result<(), sm_mdp::MdpError> {
/// let mut b = MdpBuilder::new(1);
/// b.add_action(0, "loop", vec![(0, 1.0)])?;
/// let mdp = b.build(0)?;
/// let rewards = TransitionRewards::from_fn(&mdp, |_, _, _| 2.5);
/// let result = RelativeValueIteration::default().solve(&mdp, &rewards)?;
/// assert!((result.gain - 2.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RelativeValueIteration {
    /// Convergence threshold on the span of the increment vector. The
    /// certified gain interval has width at most this value on termination.
    pub epsilon: f64,
    /// Maximum number of sweeps before giving up (full Bellman sweeps and
    /// evaluation sweeps both count).
    pub max_iterations: usize,
    /// Laziness parameter τ of the aperiodicity transformation, in `(0, 1]`.
    pub laziness: f64,
    /// Number of *policy-restricted evaluation sweeps* interleaved after each
    /// full Bellman sweep (modified policy iteration, Puterman §10.3): the
    /// greedy action of the last full sweep is held fixed and only its
    /// transitions are swept, which costs a fraction of a full sweep (one
    /// action per state instead of all of them) while contracting the bias
    /// just as fast. Certified gain bounds are only ever taken from full
    /// Bellman sweeps — valid from any bias vector — so the interleaving
    /// never weakens the returned interval. `0` recovers plain relative
    /// value iteration.
    pub evaluation_sweeps: usize,
    /// Intra-solve parallelism: how many threads each sweep may fan its
    /// row blocks over. Results (gain bounds, strategy, bias, sweep counts)
    /// are **bit-identical for any setting** — every state runs exactly the
    /// serial arithmetic against the same previous iterate and the span
    /// statistics are folded in block order — so this knob only trades
    /// wall-clock time for cores. Models below the
    /// [`sm_markov::MIN_BLOCK_MASS`] transition threshold run serially
    /// regardless.
    pub parallelism: SolverParallelism,
    /// Sweep kernel for the interleaved evaluation sweeps. The certifying
    /// full Bellman sweeps — the only sweeps the gain interval is ever taken
    /// from — stay plain Jacobi for every kernel; the non-Jacobi kernels
    /// only replace the policy-restricted evaluation sweeps with in-place
    /// Gauss-Seidel passes (optionally skipping row blocks whose local
    /// residual is already below a threshold). Those sweeps propagate value
    /// information within a single pass instead of one step per pass, so
    /// warm-started solves need fewer rounds. Non-Jacobi kernels run
    /// serially; the [`Self::parallelism`] knob is ignored for them.
    ///
    /// The returned *strategy* is kernel-independent as well, but for a
    /// different reason: it is not the raw argmax of the last sweep (whose
    /// choice in exactly-tied states flips with the last bits of the
    /// iterate's numerical history) but a canonical extraction from the
    /// final bias — the lowest-indexed action within `epsilon` of each
    /// state's best Bellman value. Near the fixed point every optimal action
    /// sits within the convergence span of the maximum while strictly
    /// suboptimal actions stay separated by their macroscopic value gap, so
    /// the rule lands on the same choice from any bias vector the solver can
    /// terminate with — for any kernel, warm start or thread count.
    pub kernel: SweepKernel,
}

impl Default for RelativeValueIteration {
    fn default() -> Self {
        RelativeValueIteration {
            epsilon: 1e-8,
            max_iterations: 2_000_000,
            laziness: 0.95,
            evaluation_sweeps: 8,
            parallelism: SolverParallelism::serial(),
            kernel: SweepKernel::Jacobi,
        }
    }
}

/// Result of a relative value iteration run (also reused by the façade in
/// [`crate::MeanPayoffSolver`]).
#[derive(Debug, Clone)]
pub struct ValueIterationOutcome {
    /// Gain estimate (midpoint of the certified interval).
    pub gain: f64,
    /// Certified lower bound on the optimal gain.
    pub gain_lower: f64,
    /// Certified upper bound on the optimal gain.
    pub gain_upper: f64,
    /// Greedy strategy extracted from the final bias vector by the canonical
    /// tolerance rule (lowest-indexed action within `epsilon` of the
    /// per-state maximum), so it does not depend on the iterate's numerical
    /// history — see [`RelativeValueIteration::kernel`].
    pub strategy: PositionalStrategy,
    /// Final (relative) bias vector.
    pub bias: Vec<f64>,
    /// Number of sweeps performed.
    pub iterations: usize,
}

/// Book-keeping of the borderline-tie refinement phase shared by the sweep
/// loops: once a solve has converged but its canonical extraction is
/// borderline (see [`RelativeValueIteration::STRATEGY_TIE_GUARD`]), the loop
/// keeps sweeping with a halved span target per round until the guard band
/// clears or the refinement budget — twice the sweeps the solve needed to
/// converge — runs out. The first converged outcome is kept as a fallback so
/// a solve that hits `max_iterations` mid-refinement still returns its
/// certified result instead of a convergence failure.
struct TieRefinement {
    /// Residual-span target of the next refinement round (`∞` until the
    /// first borderline extraction).
    target: f64,
    /// Sweep count at which refinement gives up (`usize::MAX` until the
    /// first borderline extraction).
    deadline: usize,
    /// Most recent converged outcome, returned if the sweep budget runs out.
    fallback: Option<ValueIterationOutcome>,
}

impl TieRefinement {
    fn new() -> Self {
        TieRefinement {
            target: f64::INFINITY,
            deadline: usize::MAX,
            fallback: None,
        }
    }

    /// Whether the refinement budget is spent and the current extraction
    /// must be exported as-is.
    fn exhausted(&self, sweeps: usize, max_iterations: usize) -> bool {
        sweeps >= self.deadline || sweeps >= max_iterations
    }

    /// Records a borderline converged outcome and tightens the span target
    /// for the next round.
    fn continue_past(&mut self, outcome: ValueIterationOutcome, span: f64, sweeps: usize) {
        if self.deadline == usize::MAX {
            self.deadline = sweeps.saturating_mul(2);
        }
        self.target = 0.5 * span;
        self.fallback = Some(outcome);
    }
}

impl RelativeValueIteration {
    /// Near-tie tolerance of the canonical strategy extraction, as a multiple
    /// of [`Self::epsilon`]. Converged bias vectors differ across sweep
    /// kernels (and across warm-start histories) by up to roughly one
    /// `epsilon` in the action values they induce, so a cutoff at exactly
    /// `epsilon` is maximally fragile: a state whose runner-up action sits at
    /// a gap of about `epsilon` flips in and out of the tie set depending on
    /// which kernel produced the bias. Placing the cutoff a comfortable
    /// multiple above that jitter makes the discrete tie set — and with it
    /// the exported strategy — stable across kernels, while the admitted
    /// actions stay within `32·epsilon` of optimal in bias units (negligible
    /// against the analysis-level certification width, which is two orders
    /// of magnitude above the solver `epsilon`).
    pub const STRATEGY_TIE_TOLERANCE: f64 = 32.0;

    /// Guard-band factor of the borderline check, as a multiple of the
    /// residual span at extraction time. No fixed cutoff alone can make the
    /// tie set kernel-invariant: the gap spectrum of a large MDP is dense
    /// enough that some state's true gap eventually lands within iterate
    /// jitter of *any* cutoff. So after convergence the extraction also
    /// reports whether any action's gap falls within `guard · span` of the
    /// cutoff; if one does, the solve keeps sweeping — halving the residual
    /// span, and with it the guard band, each round — until the band clears
    /// or the refinement budget runs out. Decisions are then made by the
    /// *true* gap's side of the cutoff (a kernel-invariant quantity) rather
    /// than by each kernel's jitter. The factor comfortably dominates the
    /// observed gap-estimation error (about twice the residual span) and
    /// stays below [`Self::STRATEGY_TIE_TOLERANCE`], so exact ties — whose
    /// estimated gaps sit near zero, far from the cutoff — never trigger
    /// refinement.
    pub const STRATEGY_TIE_GUARD: f64 = 8.0;

    /// Creates a solver with the given precision and default iteration budget.
    pub fn with_epsilon(epsilon: f64) -> Self {
        RelativeValueIteration {
            epsilon,
            ..RelativeValueIteration::default()
        }
    }

    /// Returns the solver with the given intra-solve parallelism (see the
    /// [`RelativeValueIteration::parallelism`] field).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: SolverParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns the solver with the given sweep kernel (see the
    /// [`RelativeValueIteration::kernel`] field).
    #[must_use]
    pub fn with_kernel(mut self, kernel: SweepKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Runs the iteration on `mdp` with rewards `rewards`, starting from the
    /// all-zero bias vector.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::RewardShapeMismatch`] if the reward structure does
    /// not match the model, [`MdpError::InvalidParameter`] for a bad `epsilon`
    /// or `laziness`, [`MdpError::NoActions`] if some state has an empty
    /// action range, and [`MdpError::ConvergenceFailure`] if the iteration
    /// budget is exhausted before the requested precision is reached.
    pub fn solve(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
    ) -> Result<ValueIterationOutcome, MdpError> {
        self.solve_inner(mdp, rewards, None)
    }

    /// Runs the iteration warm-started from a previous bias vector.
    ///
    /// Any finite vector is a valid starting point (the certified gain bounds
    /// come from the per-sweep increments, which sandwich the optimal gain
    /// regardless of the initial bias), but a bias from a *nearby* problem —
    /// the same MDP under a slightly different reward combination, or the
    /// arena instantiated at a neighbouring parameter point — cuts the sweep
    /// count substantially. This is the entry point the parameterized sweep
    /// engine uses to chain solves across a `(p, γ)` grid.
    ///
    /// # Errors
    ///
    /// Like [`RelativeValueIteration::solve`], plus
    /// [`MdpError::RewardShapeMismatch`] if `initial_bias` does not cover
    /// every state and [`MdpError::InvalidParameter`] if it contains
    /// non-finite entries.
    pub fn solve_from(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
        initial_bias: &[f64],
    ) -> Result<ValueIterationOutcome, MdpError> {
        if initial_bias.len() != mdp.num_states() {
            return Err(MdpError::RewardShapeMismatch {
                detail: format!(
                    "warm-start bias covers {} states, MDP has {}",
                    initial_bias.len(),
                    mdp.num_states()
                ),
            });
        }
        if initial_bias.iter().any(|v| !v.is_finite()) {
            return Err(MdpError::InvalidParameter {
                name: "initial_bias",
                constraint: "must contain only finite values",
            });
        }
        self.solve_inner(mdp, rewards, Some(initial_bias))
    }

    fn solve_inner(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
        initial_bias: Option<&[f64]>,
    ) -> Result<ValueIterationOutcome, MdpError> {
        if self.epsilon.is_nan() || self.epsilon <= 0.0 {
            return Err(MdpError::InvalidParameter {
                name: "epsilon",
                constraint: "must be positive",
            });
        }
        if !(self.laziness > 0.0 && self.laziness <= 1.0) {
            return Err(MdpError::InvalidParameter {
                name: "laziness",
                constraint: "must lie in (0, 1]",
            });
        }
        if !rewards.matches(mdp) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "rewards do not match MDP shape".to_string(),
            });
        }
        let n = mdp.num_states();

        // A state with an empty action range would silently leave its Bellman
        // value at -inf and poison the whole bias vector; fail loudly instead.
        let row_ptr = mdp.csr().layout().row_ptr();
        if let Some(state) = (0..n).find(|&s| row_ptr[s + 1] == row_ptr[s]) {
            return Err(MdpError::NoActions { state });
        }

        let expected = rewards.expected_per_pair(mdp);
        let h = match initial_bias {
            Some(bias) => bias.to_vec(),
            None => vec![0.0; n],
        };
        if !self.kernel.is_jacobi() {
            return self.sweep_serial_kernel(mdp, &expected, h);
        }
        let transitions = mdp.csr().layout().col().len();
        let threads = mass_capped_threads(self.parallelism.thread_count(), transitions);
        if threads > 1 {
            self.sweep_parallel(mdp, &expected, h, threads)
        } else {
            self.sweep_serial(mdp, &expected, h)
        }
    }

    /// Canonical greedy extraction from a converged bias vector: for every
    /// state, the *lowest-indexed* action whose Bellman value lies within
    /// [`Self::STRATEGY_TIE_TOLERANCE`]`·`[`Self::epsilon`] of the state's
    /// maximum. The aperiodicity term `(1−τ)·h(s)` is identical for all
    /// actions of a state, so it is dropped from the comparison. See
    /// [`Self::kernel`] for why this — and not the raw argmax of the final
    /// sweep — is what the solver exports.
    ///
    /// Also reports whether the extraction is *borderline*: some action's
    /// gap to its state's maximum lies within `margin` of the tie cutoff, so
    /// the discrete tie set could differ under a bias produced by a
    /// different sweep schedule. Callers refine (keep sweeping) while this
    /// holds — see [`Self::STRATEGY_TIE_GUARD`].
    fn canonical_strategy(
        &self,
        mdp: &Mdp,
        expected: &[f64],
        h: &[f64],
        margin: f64,
    ) -> (PositionalStrategy, bool) {
        let csr = mdp.csr();
        let layout = csr.layout();
        let row_ptr = layout.row_ptr();
        let action_ptr = layout.action_ptr();
        let col = layout.col();
        let prob = csr.probabilities();
        let tau = self.laziness;
        let cutoff_gap = Self::STRATEGY_TIE_TOLERANCE * self.epsilon;
        let n = mdp.num_states();
        let mut choices = vec![0usize; n];
        let mut borderline = false;
        // Per-state action values, buffered so the arena is swept once.
        let mut values: Vec<f64> = Vec::new();
        for (s, choice) in choices.iter_mut().enumerate() {
            let pair_start = row_ptr[s] as usize;
            let pair_end = row_ptr[s + 1] as usize;
            values.clear();
            let mut best = f64::NEG_INFINITY;
            for pair in pair_start..pair_end {
                let mut acc = 0.0;
                for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                    acc += prob[k] * h[col[k] as usize];
                }
                let value = expected[pair] + tau * acc;
                values.push(value);
                best = best.max(value);
            }
            let cutoff = best - cutoff_gap;
            let mut chosen = false;
            for (a, &value) in values.iter().enumerate() {
                if (best - value - cutoff_gap).abs() <= margin {
                    borderline = true;
                }
                if !chosen && value >= cutoff {
                    *choice = a;
                    chosen = true;
                }
            }
        }
        (PositionalStrategy::new(choices), borderline)
    }

    /// The historical single-threaded sweep loop.
    fn sweep_serial(
        &self,
        mdp: &Mdp,
        expected: &[f64],
        mut h: Vec<f64>,
    ) -> Result<ValueIterationOutcome, MdpError> {
        let n = mdp.num_states();
        let tau = self.laziness;

        // The whole sweep runs over the flat CSR arena: four shared slices
        // (row_ptr, action_ptr, col, prob) plus the precomputed per-pair
        // expected rewards, so the inner loop only touches probabilities and
        // the bias vector.
        let csr = mdp.csr();
        let layout = csr.layout();
        let row_ptr = layout.row_ptr();
        let action_ptr = layout.action_ptr();
        let col = layout.col();
        let prob = csr.probabilities();

        let mut next = vec![0.0; n];
        let mut best_action = vec![0usize; n];
        let reference = mdp.initial_state();
        let mut sweeps = 0usize;
        let mut refine = TieRefinement::new();

        while sweeps < self.max_iterations {
            // Full Bellman sweep: refreshes the greedy strategy and yields
            // the certified `min Δ ≤ g* ≤ max Δ` sandwich (valid for the
            // current h no matter how it was produced).
            sweeps += 1;
            let mut min_delta = f64::INFINITY;
            let mut max_delta = f64::NEG_INFINITY;
            for s in 0..n {
                let mut best = f64::NEG_INFINITY;
                let mut best_a = 0;
                let pair_start = row_ptr[s] as usize;
                let lazy = (1.0 - tau) * h[s];
                for pair in pair_start..row_ptr[s + 1] as usize {
                    let mut acc = 0.0;
                    for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                        acc += prob[k] * h[col[k] as usize];
                    }
                    let value = expected[pair] + tau * acc + lazy;
                    if value > best {
                        best = value;
                        best_a = pair - pair_start;
                    }
                }
                next[s] = best;
                best_action[s] = best_a;
                let delta = best - h[s];
                min_delta = min_delta.min(delta);
                max_delta = max_delta.max(delta);
            }
            // Relative step: renormalise so the reference state stays at 0.
            let offset = next[reference];
            for s in 0..n {
                h[s] = next[s] - offset;
            }
            if max_delta - min_delta < self.epsilon.min(refine.target) {
                let span = max_delta - min_delta;
                let (strategy, borderline) =
                    self.canonical_strategy(mdp, expected, &h, Self::STRATEGY_TIE_GUARD * span);
                if !borderline || refine.exhausted(sweeps, self.max_iterations) {
                    return Ok(ValueIterationOutcome {
                        gain: 0.5 * (min_delta + max_delta),
                        gain_lower: min_delta,
                        gain_upper: max_delta,
                        strategy,
                        bias: h,
                        iterations: sweeps,
                    });
                }
                // The clone only happens on the rare borderline path.
                let outcome = ValueIterationOutcome {
                    gain: 0.5 * (min_delta + max_delta),
                    gain_lower: min_delta,
                    gain_upper: max_delta,
                    strategy,
                    bias: h.clone(),
                    iterations: sweeps,
                };
                refine.continue_past(outcome, span, sweeps);
            }

            // Policy-restricted evaluation sweeps: hold the greedy strategy
            // fixed and sweep only its transitions — a fraction of the full
            // sweep's cost with the same per-sweep contraction of the bias.
            for _ in 0..self.evaluation_sweeps {
                if sweeps >= self.max_iterations {
                    break;
                }
                sweeps += 1;
                for s in 0..n {
                    let pair = row_ptr[s] as usize + best_action[s];
                    let mut acc = 0.0;
                    for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                        acc += prob[k] * h[col[k] as usize];
                    }
                    next[s] = expected[pair] + tau * acc + (1.0 - tau) * h[s];
                }
                let offset = next[reference];
                for s in 0..n {
                    h[s] = next[s] - offset;
                }
            }
        }
        if let Some(outcome) = refine.fallback {
            return Ok(outcome);
        }
        Err(MdpError::ConvergenceFailure {
            method: "relative value iteration",
            iterations: self.max_iterations,
        })
    }

    /// Sweep loop for the non-Jacobi kernels: the certifying full Bellman
    /// sweeps are unchanged plain Jacobi — the gain interval only ever comes
    /// from them, and the `min Δ ≤ g* ≤ max Δ`
    /// sandwich holds for *any* finite bias vector, however it was produced —
    /// while the interleaved evaluation sweeps become in-place Gauss-Seidel
    /// passes over the greedy policy. Each pass subtracts the current gain
    /// estimate so the iterate contracts toward a bias vector instead of
    /// growing by the gain per application, and re-anchors the reference
    /// state at zero afterwards. The prioritized kernel additionally skips
    /// row blocks whose local increment span fell below its threshold; the
    /// block partition is a pure function of the transition mass (see
    /// [`sm_markov::priority_blocks`]), so the skip pattern is deterministic.
    fn sweep_serial_kernel(
        &self,
        mdp: &Mdp,
        expected: &[f64],
        mut h: Vec<f64>,
    ) -> Result<ValueIterationOutcome, MdpError> {
        let n = mdp.num_states();
        let tau = self.laziness;
        let threshold = match self.kernel {
            SweepKernel::Prioritized { threshold } => threshold,
            _ => 0.0,
        };
        let csr = mdp.csr();
        let layout = csr.layout();
        let row_ptr = layout.row_ptr();
        let action_ptr = layout.action_ptr();
        let col = layout.col();
        let prob = csr.probabilities();

        let cumulative: Vec<usize> = (0..=n)
            .map(|s| action_ptr[row_ptr[s] as usize] as usize)
            .collect();
        let blocks = priority_blocks(&cumulative);
        // Local increment span per block, refreshed by every sweep that
        // touches the block. Starts at infinity so no block is skipped
        // before its first certifying sweep.
        let mut residual = vec![f64::INFINITY; blocks.len()];

        let mut next = vec![0.0; n];
        let mut best_action = vec![0usize; n];
        let reference = mdp.initial_state();
        let mut sweeps = 0usize;
        let mut refine = TieRefinement::new();

        while sweeps < self.max_iterations {
            // Certifying full Bellman sweep (plain Jacobi), iterated block by
            // block so the per-block residuals are refreshed as a side effect.
            sweeps += 1;
            let mut min_delta = f64::INFINITY;
            let mut max_delta = f64::NEG_INFINITY;
            for (bi, range) in blocks.iter().enumerate() {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for s in range.clone() {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_a = 0;
                    let pair_start = row_ptr[s] as usize;
                    let lazy = (1.0 - tau) * h[s];
                    for pair in pair_start..row_ptr[s + 1] as usize {
                        let mut acc = 0.0;
                        for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                            acc += prob[k] * h[col[k] as usize];
                        }
                        let value = expected[pair] + tau * acc + lazy;
                        if value > best {
                            best = value;
                            best_a = pair - pair_start;
                        }
                    }
                    next[s] = best;
                    best_action[s] = best_a;
                    let delta = best - h[s];
                    lo = lo.min(delta);
                    hi = hi.max(delta);
                }
                residual[bi] = hi - lo;
                min_delta = min_delta.min(lo);
                max_delta = max_delta.max(hi);
            }
            let offset = next[reference];
            for s in 0..n {
                h[s] = next[s] - offset;
            }
            if max_delta - min_delta < self.epsilon.min(refine.target) {
                let span = max_delta - min_delta;
                let (strategy, borderline) =
                    self.canonical_strategy(mdp, expected, &h, Self::STRATEGY_TIE_GUARD * span);
                if !borderline || refine.exhausted(sweeps, self.max_iterations) {
                    return Ok(ValueIterationOutcome {
                        gain: 0.5 * (min_delta + max_delta),
                        gain_lower: min_delta,
                        gain_upper: max_delta,
                        strategy,
                        bias: h,
                        iterations: sweeps,
                    });
                }
                // The clone only happens on the rare borderline path.
                let outcome = ValueIterationOutcome {
                    gain: 0.5 * (min_delta + max_delta),
                    gain_lower: min_delta,
                    gain_upper: max_delta,
                    strategy,
                    bias: h.clone(),
                    iterations: sweeps,
                };
                refine.continue_past(outcome, span, sweeps);
            }
            let gain_estimate = 0.5 * (min_delta + max_delta);

            // Accelerator sweeps: in-place Gauss-Seidel over the greedy
            // policy, with the gain estimate subtracted so the iterate heads
            // for a bias vector rather than drifting by the gain per pass.
            for _ in 0..self.evaluation_sweeps {
                if sweeps >= self.max_iterations {
                    break;
                }
                sweeps += 1;
                for (bi, range) in blocks.iter().enumerate() {
                    if residual[bi] < threshold {
                        continue;
                    }
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for s in range.clone() {
                        let pair = row_ptr[s] as usize + best_action[s];
                        let mut acc = 0.0;
                        for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                            acc += prob[k] * h[col[k] as usize];
                        }
                        let value = expected[pair] - gain_estimate + tau * acc + (1.0 - tau) * h[s];
                        let delta = value - h[s];
                        lo = lo.min(delta);
                        hi = hi.max(delta);
                        h[s] = value;
                    }
                    residual[bi] = hi - lo;
                }
                let offset = h[reference];
                for value in h.iter_mut().take(n) {
                    *value -= offset;
                }
            }
        }
        if let Some(outcome) = refine.fallback {
            return Ok(outcome);
        }
        Err(MdpError::ConvergenceFailure {
            method: "relative value iteration",
            iterations: self.max_iterations,
        })
    }

    /// Row-block parallel sweep loop: the state range is partitioned into
    /// contiguous blocks balanced by transition mass, every sweep fans the
    /// blocks over a scoped pool (kept alive across all sweeps of the
    /// solve), each block writes a disjoint slice of the next iterate, and
    /// the span statistics are reduced per block and folded in block order.
    /// Each state runs exactly the serial arithmetic against the same
    /// previous iterate, so the outcome — gain bounds, strategy, bias and
    /// sweep count — is bit-identical to [`RelativeValueIteration::sweep_serial`]
    /// for any thread count.
    fn sweep_parallel(
        &self,
        mdp: &Mdp,
        expected: &[f64],
        h: Vec<f64>,
        threads: usize,
    ) -> Result<ValueIterationOutcome, MdpError> {
        let n = mdp.num_states();
        let tau = self.laziness;
        let csr = mdp.csr();
        let layout = csr.layout();
        let row_ptr = layout.row_ptr();
        let action_ptr = layout.action_ptr();
        let col = layout.col();
        let prob = csr.probabilities();
        let reference = mdp.initial_state();

        // Per-state sweep cost is its transition count: cumulative mass at
        // state s is the arena offset of its first transition.
        let cumulative: Vec<usize> = (0..=n)
            .map(|s| action_ptr[row_ptr[s] as usize] as usize)
            .collect();
        let blocks = mass_balanced_blocks(&cumulative, threads);
        if blocks.len() <= 1 {
            return self.sweep_serial(mdp, expected, h);
        }

        struct Chunk {
            next: Vec<f64>,
            best: Vec<usize>,
        }
        struct BlockStats {
            min_delta: f64,
            max_delta: f64,
            /// The new value of the reference state, reported by the one
            /// block that contains it.
            reference: Option<f64>,
        }
        #[derive(Clone, Copy)]
        enum SweepKind {
            /// Full Bellman sweep: maximise over all actions, refresh the
            /// greedy strategy, report span statistics.
            Bellman,
            /// Policy-restricted evaluation sweep over the block's own last
            /// greedy actions.
            Evaluation,
        }

        let h = RwLock::new(h);
        let chunks: Vec<Mutex<Chunk>> = blocks
            .iter()
            .map(|range| {
                Mutex::new(Chunk {
                    next: vec![0.0; range.len()],
                    best: vec![0usize; range.len()],
                })
            })
            .collect();

        let run_block = |block: usize, kind: &SweepKind| -> BlockStats {
            let range = blocks[block].clone();
            // Lock poisoning only means another block's worker panicked; the
            // buffers hold plain numeric data written in disjoint slices, so
            // recovery is sound — the originating panic still propagates
            // through the sweep scope's join.
            let h_read = h.read().unwrap_or_else(PoisonError::into_inner);
            let h_read = &h_read[..];
            let mut chunk = chunks[block].lock().unwrap_or_else(PoisonError::into_inner);
            let chunk = &mut *chunk;
            let mut stats = BlockStats {
                min_delta: f64::INFINITY,
                max_delta: f64::NEG_INFINITY,
                reference: None,
            };
            match kind {
                SweepKind::Bellman => {
                    for s in range.clone() {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_a = 0;
                        let pair_start = row_ptr[s] as usize;
                        let lazy = (1.0 - tau) * h_read[s];
                        for pair in pair_start..row_ptr[s + 1] as usize {
                            let mut acc = 0.0;
                            for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                                acc += prob[k] * h_read[col[k] as usize];
                            }
                            let value = expected[pair] + tau * acc + lazy;
                            if value > best {
                                best = value;
                                best_a = pair - pair_start;
                            }
                        }
                        chunk.next[s - range.start] = best;
                        chunk.best[s - range.start] = best_a;
                        let delta = best - h_read[s];
                        stats.min_delta = stats.min_delta.min(delta);
                        stats.max_delta = stats.max_delta.max(delta);
                        if s == reference {
                            stats.reference = Some(best);
                        }
                    }
                }
                SweepKind::Evaluation => {
                    for s in range.clone() {
                        let pair = row_ptr[s] as usize + chunk.best[s - range.start];
                        let mut acc = 0.0;
                        for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                            acc += prob[k] * h_read[col[k] as usize];
                        }
                        let value = expected[pair] + tau * acc + (1.0 - tau) * h_read[s];
                        chunk.next[s - range.start] = value;
                        if s == reference {
                            stats.reference = Some(value);
                        }
                    }
                }
            }
            stats
        };

        // Renormalise exactly like the serial relative step: every state of
        // the new iterate shifted so the reference state stays at 0.
        let apply_renormalised = |offset: f64| {
            let mut h_write = h.write().unwrap_or_else(PoisonError::into_inner);
            for (range, chunk) in blocks.iter().zip(&chunks) {
                let chunk = chunk.lock().unwrap_or_else(PoisonError::into_inner);
                for (i, &value) in chunk.next.iter().enumerate() {
                    h_write[range.start + i] = value - offset;
                }
            }
        };
        // The blocks partition `0..n` and `reference < n`, so exactly one
        // block reports the reference value; a missing report is a broken
        // partition and surfaces as a typed error instead of a panic.
        let reference_offset = |round: &[BlockStats]| -> Result<f64, MdpError> {
            round
                .iter()
                .find_map(|stats| stats.reference)
                .ok_or(MdpError::InvariantViolation {
                    detail: "no sweep block contains the reference state",
                })
        };

        sweep_scope(blocks.len() - 1, run_block, |pool| {
            let mut sweeps = 0usize;
            let mut refine = TieRefinement::new();
            while sweeps < self.max_iterations {
                sweeps += 1;
                let round = pool.round(SweepKind::Bellman);
                let mut min_delta = f64::INFINITY;
                let mut max_delta = f64::NEG_INFINITY;
                for stats in &round {
                    min_delta = min_delta.min(stats.min_delta);
                    max_delta = max_delta.max(stats.max_delta);
                }
                apply_renormalised(reference_offset(&round)?);
                if max_delta - min_delta < self.epsilon.min(refine.target) {
                    let span = max_delta - min_delta;
                    let bias = h.read().unwrap_or_else(PoisonError::into_inner).clone();
                    // The canonical extraction runs serially over the final
                    // bias — a per-state pure function of `bias`, so it (and
                    // the borderline check plus any refinement rounds it
                    // triggers) is trivially identical to the serial path's.
                    let (strategy, borderline) = self.canonical_strategy(
                        mdp,
                        expected,
                        &bias,
                        Self::STRATEGY_TIE_GUARD * span,
                    );
                    let outcome = ValueIterationOutcome {
                        gain: 0.5 * (min_delta + max_delta),
                        gain_lower: min_delta,
                        gain_upper: max_delta,
                        strategy,
                        bias,
                        iterations: sweeps,
                    };
                    if !borderline || refine.exhausted(sweeps, self.max_iterations) {
                        return Ok(outcome);
                    }
                    refine.continue_past(outcome, span, sweeps);
                }
                for _ in 0..self.evaluation_sweeps {
                    if sweeps >= self.max_iterations {
                        break;
                    }
                    sweeps += 1;
                    let round = pool.round(SweepKind::Evaluation);
                    apply_renormalised(reference_offset(&round)?);
                }
            }
            if let Some(outcome) = refine.fallback {
                return Ok(outcome);
            }
            Err(MdpError::ConvergenceFailure {
                method: "relative value iteration",
                iterations: self.max_iterations,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MdpBuilder;

    fn solve(mdp: &Mdp, rewards: &TransitionRewards) -> ValueIterationOutcome {
        RelativeValueIteration::with_epsilon(1e-9)
            .solve(mdp, rewards)
            .unwrap()
    }

    #[test]
    fn single_state_gain_is_reward() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, "loop", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |_, _, _| -1.25);
        let out = solve(&mdp, &r);
        assert!((out.gain + 1.25).abs() < 1e-8);
        assert!(out.gain_lower <= out.gain && out.gain <= out.gain_upper);
    }

    #[test]
    fn chooses_the_better_loop() {
        // State 0 can stay (reward 1) or go to state 1 (reward 0) where the
        // chain loops with reward 3. Optimal gain is 3.
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "stay", vec![(0, 1.0)]).unwrap();
        b.add_action(0, "go", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "loop", vec![(1, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, a, _| match (s, a) {
            (0, 0) => 1.0,
            (0, 1) => 0.0,
            (1, 0) => 3.0,
            _ => unreachable!(),
        });
        let out = solve(&mdp, &r);
        assert!((out.gain - 3.0).abs() < 1e-7);
        assert_eq!(
            out.strategy.action(0),
            1,
            "should leave for the better loop"
        );
    }

    #[test]
    fn periodic_chain_converges_thanks_to_laziness() {
        // A deterministic 2-cycle alternating rewards 0 and 1: gain 0.5.
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "b", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, _, _| s as f64);
        let out = solve(&mdp, &r);
        assert!((out.gain - 0.5).abs() < 1e-7);
    }

    #[test]
    fn stochastic_mdp_matches_hand_computation() {
        // Single action: stay in 0 w.p. 0.75 earning 2, move to 1 earning 0;
        // from 1 return to 0 w.p. 1 earning 0. Stationary distribution is
        // (0.8, 0.2); expected reward in state 0 is 0.75*2 = 1.5, so the gain
        // is 0.8 * 1.5 = 1.2.
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(0, 0.75), (1, 0.25)]).unwrap();
        b.add_action(1, "b", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r =
            TransitionRewards::from_fn(&mdp, |s, _, t| if s == 0 && t == 0 { 2.0 } else { 0.0 });
        let out = solve(&mdp, &r);
        assert!((out.gain - 1.2).abs() < 1e-7, "gain {}", out.gain);
    }

    #[test]
    fn rejects_invalid_parameters_and_shapes() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, "loop", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::zeros(&mdp);

        let bad_eps = RelativeValueIteration {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            bad_eps.solve(&mdp, &r),
            Err(MdpError::InvalidParameter {
                name: "epsilon",
                ..
            })
        ));

        let bad_tau = RelativeValueIteration {
            laziness: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            bad_tau.solve(&mdp, &r),
            Err(MdpError::InvalidParameter {
                name: "laziness",
                ..
            })
        ));

        let mut other = MdpBuilder::new(2);
        other.add_action(0, "x", vec![(1, 1.0)]).unwrap();
        other.add_action(1, "y", vec![(0, 1.0)]).unwrap();
        let other = other.build(0).unwrap();
        let wrong = TransitionRewards::zeros(&other);
        assert!(matches!(
            RelativeValueIteration::default().solve(&mdp, &wrong),
            Err(MdpError::RewardShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_action_range_fails_loudly() {
        use crate::csr::{CsrLayout, CsrMdp};
        use std::sync::Arc;
        // State 1 has no actions — only constructible through the raw-parts
        // path (the builders reject it); the solver must not propagate -inf.
        let layout = CsrLayout::from_raw_parts(vec![0, 1, 1], vec![0, 1], vec![0]).unwrap();
        let csr = CsrMdp::from_raw_parts(
            Arc::new(layout),
            vec![1.0],
            vec!["loop".to_string()],
            vec![0],
            0,
        )
        .unwrap();
        let mdp = crate::Mdp::from(csr);
        let rewards = TransitionRewards::zeros(&mdp);
        assert!(matches!(
            RelativeValueIteration::default().solve(&mdp, &rewards),
            Err(MdpError::NoActions { state: 1 })
        ));
    }

    #[test]
    fn warm_start_validates_and_matches_cold_result() {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(0, 0.75), (1, 0.25)]).unwrap();
        b.add_action(1, "b", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r =
            TransitionRewards::from_fn(&mdp, |s, _, t| if s == 0 && t == 0 { 2.0 } else { 0.0 });
        let solver = RelativeValueIteration::with_epsilon(1e-9);
        let cold = solver.solve(&mdp, &r).unwrap();
        let warm = solver.solve_from(&mdp, &r, &cold.bias).unwrap();
        assert!((warm.gain - cold.gain).abs() < 2e-9);
        assert_eq!(warm.strategy, cold.strategy);
        assert!(warm.iterations <= cold.iterations);

        assert!(matches!(
            solver.solve_from(&mdp, &r, &[0.0]),
            Err(MdpError::RewardShapeMismatch { .. })
        ));
        assert!(matches!(
            solver.solve_from(&mdp, &r, &[0.0, f64::NAN]),
            Err(MdpError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn interleaved_evaluation_sweeps_match_plain_value_iteration() {
        // Modified policy iteration (evaluation sweeps interleaved) and plain
        // RVI must certify the same gain and strategy.
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "a0", vec![(1, 0.6), (2, 0.4)]).unwrap();
        b.add_action(0, "a1", vec![(0, 0.5), (2, 0.5)]).unwrap();
        b.add_action(1, "b0", vec![(0, 1.0)]).unwrap();
        b.add_action(1, "b1", vec![(2, 1.0)]).unwrap();
        b.add_action(2, "c0", vec![(0, 0.5), (1, 0.5)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, a, t| {
            0.3 * s as f64 + 0.7 * a as f64 - 0.1 * t as f64
        });
        let plain = RelativeValueIteration {
            epsilon: 1e-10,
            evaluation_sweeps: 0,
            ..Default::default()
        }
        .solve(&mdp, &r)
        .unwrap();
        let interleaved = RelativeValueIteration {
            epsilon: 1e-10,
            evaluation_sweeps: 8,
            ..Default::default()
        }
        .solve(&mdp, &r)
        .unwrap();
        assert!((plain.gain - interleaved.gain).abs() < 1e-9);
        assert_eq!(plain.strategy, interleaved.strategy);
        assert!(interleaved.gain_lower <= interleaved.gain_upper);
    }

    #[test]
    fn sweep_kernels_certify_the_same_result() {
        // Gauss-Seidel and prioritized accelerator sweeps must land on the
        // same certified gain interval width and the same greedy strategy as
        // plain Jacobi — the certificates only ever come from full Bellman
        // sweeps, which are identical across kernels.
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "a0", vec![(1, 0.6), (2, 0.4)]).unwrap();
        b.add_action(0, "a1", vec![(0, 0.5), (2, 0.5)]).unwrap();
        b.add_action(1, "b0", vec![(0, 1.0)]).unwrap();
        b.add_action(1, "b1", vec![(2, 1.0)]).unwrap();
        b.add_action(2, "c0", vec![(0, 0.5), (1, 0.5)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, a, t| {
            0.3 * s as f64 + 0.7 * a as f64 - 0.1 * t as f64
        });
        let base = RelativeValueIteration::with_epsilon(1e-10);
        let jacobi = base.clone().solve(&mdp, &r).unwrap();
        for kernel in [
            sm_markov::SweepKernel::GaussSeidel,
            sm_markov::SweepKernel::Prioritized { threshold: 1e-12 },
        ] {
            let solver = base.clone().with_kernel(kernel);
            let out = solver.solve(&mdp, &r).unwrap();
            assert!(
                (out.gain - jacobi.gain).abs() < 1e-9,
                "{kernel:?}: gain {} vs jacobi {}",
                out.gain,
                jacobi.gain
            );
            assert_eq!(out.strategy, jacobi.strategy, "{kernel:?}");
            assert!(out.gain_upper - out.gain_lower < 1e-10);
            // Warm starts remain valid entry points under every kernel.
            let warm = solver.solve_from(&mdp, &r, &jacobi.bias).unwrap();
            assert_eq!(warm.strategy, jacobi.strategy, "{kernel:?} warm");
            assert!(warm.iterations <= out.iterations);
        }
    }

    #[test]
    fn iteration_budget_is_respected() {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "b", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, _, _| s as f64);
        let solver = RelativeValueIteration {
            epsilon: 1e-14,
            max_iterations: 2,
            ..Default::default()
        };
        assert!(matches!(
            solver.solve(&mdp, &r),
            Err(MdpError::ConvergenceFailure { .. })
        ));
    }
}
