//! Discounted-reward value iteration.
//!
//! The selfish-mining analysis itself uses mean-payoff objectives, but a
//! discounted solver is useful in two places: as a vanishing-discount sanity
//! check of the mean-payoff solvers (for discount factors close to 1,
//! `(1 − γ) · V_γ(s) → g*`), and as a building block for ablation experiments
//! on alternative adversary objectives (short-horizon revenue).

use crate::{Mdp, MdpError, PositionalStrategy, TransitionRewards};
use sm_markov::{
    mass_balanced_blocks, mass_capped_threads, priority_blocks, sweep_scope, SolverParallelism,
    SweepKernel,
};
use std::sync::{Mutex, RwLock};

/// Number of policy-restricted accelerator sweeps a non-Jacobi kernel runs
/// between two certifying Bellman sweeps (mirrors the fused gain kernel in
/// `sm-markov`).
const ACCELERATOR_SWEEPS_PER_ROUND: usize = 4;

/// Result of a discounted value-iteration run.
#[derive(Debug, Clone)]
pub struct DiscountedResult {
    /// Optimal discounted value per state.
    pub values: Vec<f64>,
    /// Greedy optimal strategy.
    pub strategy: PositionalStrategy,
    /// Number of sweeps performed.
    pub iterations: usize,
}

/// Standard value iteration for the expected total discounted reward
/// objective `E[Σ γⁿ rₙ]`.
///
/// # Example
///
/// ```
/// use sm_mdp::{DiscountedValueIteration, MdpBuilder, TransitionRewards};
///
/// # fn main() -> Result<(), sm_mdp::MdpError> {
/// let mut b = MdpBuilder::new(1);
/// b.add_action(0, "loop", vec![(0, 1.0)])?;
/// let mdp = b.build(0)?;
/// let rewards = TransitionRewards::from_fn(&mdp, |_, _, _| 1.0);
/// let result = DiscountedValueIteration::new(0.5).solve(&mdp, &rewards)?;
/// assert!((result.values[0] - 2.0).abs() < 1e-6); // geometric series 1/(1-0.5)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiscountedValueIteration {
    /// Discount factor γ ∈ [0, 1).
    pub discount: f64,
    /// Convergence threshold on the sup-norm difference of successive iterates.
    pub epsilon: f64,
    /// Maximum number of sweeps.
    pub max_iterations: usize,
    /// Intra-solve parallelism for the sweeps. Like the mean-payoff solver,
    /// results are bit-identical for any setting (each state runs the serial
    /// arithmetic; the sup-norm statistic folds in block order) — only the
    /// wall-clock time changes.
    pub parallelism: SolverParallelism,
    /// Sweep kernel. Convergence is only ever judged on full Bellman
    /// (Jacobi) sweeps; the non-Jacobi kernels interleave in-place
    /// Gauss-Seidel passes over the current greedy policy between them
    /// (the prioritized variant skips row blocks whose local residual is
    /// below its threshold). Non-Jacobi kernels run serially; the
    /// [`Self::parallelism`] knob is ignored for them.
    pub kernel: SweepKernel,
}

impl DiscountedValueIteration {
    /// Creates a solver with the given discount factor and default precision.
    pub fn new(discount: f64) -> Self {
        DiscountedValueIteration {
            discount,
            epsilon: 1e-10,
            max_iterations: 1_000_000,
            parallelism: SolverParallelism::serial(),
            kernel: SweepKernel::Jacobi,
        }
    }

    /// Returns the solver with the given intra-solve parallelism.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: SolverParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns the solver with the given sweep kernel (see the
    /// [`DiscountedValueIteration::kernel`] field).
    #[must_use]
    pub fn with_kernel(mut self, kernel: SweepKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Runs value iteration.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidParameter`] if the discount factor is not in
    /// `[0, 1)` or the precision is not positive,
    /// [`MdpError::RewardShapeMismatch`] for mismatched rewards, and
    /// [`MdpError::ConvergenceFailure`] if the iteration budget is exhausted.
    pub fn solve(
        &self,
        mdp: &Mdp,
        rewards: &TransitionRewards,
    ) -> Result<DiscountedResult, MdpError> {
        if !(0.0..1.0).contains(&self.discount) {
            return Err(MdpError::InvalidParameter {
                name: "discount",
                constraint: "must lie in [0, 1)",
            });
        }
        if self.epsilon.is_nan() || self.epsilon <= 0.0 {
            return Err(MdpError::InvalidParameter {
                name: "epsilon",
                constraint: "must be positive",
            });
        }
        if !rewards.matches(mdp) {
            return Err(MdpError::RewardShapeMismatch {
                detail: "rewards do not match MDP shape".to_string(),
            });
        }
        // A state with an empty action range would leave its Bellman value
        // at -inf, making `max_diff` infinite forever — the solver would
        // spin its whole iteration budget and report a misleading
        // convergence failure; fail loudly instead (mirrors the mean-payoff
        // solvers).
        let row_ptr = mdp.csr().layout().row_ptr();
        if let Some(state) = (0..mdp.num_states()).find(|&s| row_ptr[s + 1] == row_ptr[s]) {
            return Err(MdpError::NoActions { state });
        }
        let transitions = mdp.csr().layout().col().len();
        let threads = mass_capped_threads(self.parallelism.thread_count(), transitions);
        let expected = rewards.expected_per_pair(mdp);
        if !self.kernel.is_jacobi() {
            return self.sweep_serial_kernel(mdp, &expected);
        }
        if threads > 1 {
            self.sweep_parallel(mdp, &expected, threads)
        } else {
            self.sweep_serial(mdp, &expected)
        }
    }

    /// The historical single-threaded sweep loop.
    fn sweep_serial(&self, mdp: &Mdp, expected: &[f64]) -> Result<DiscountedResult, MdpError> {
        let n = mdp.num_states();
        // Sweep over the flat CSR arena, mirroring the mean-payoff solver.
        let csr = mdp.csr();
        let layout = csr.layout();
        let row_ptr = layout.row_ptr();
        let action_ptr = layout.action_ptr();
        let col = layout.col();
        let prob = csr.probabilities();
        let mut values = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut best_action = vec![0usize; n];
        for iteration in 1..=self.max_iterations {
            let mut max_diff: f64 = 0.0;
            for s in 0..n {
                let mut best = f64::NEG_INFINITY;
                let mut best_a = 0;
                let pair_start = row_ptr[s] as usize;
                for pair in pair_start..row_ptr[s + 1] as usize {
                    let mut acc = 0.0;
                    for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                        acc += prob[k] * values[col[k] as usize];
                    }
                    let value = expected[pair] + self.discount * acc;
                    if value > best {
                        best = value;
                        best_a = pair - pair_start;
                    }
                }
                next[s] = best;
                best_action[s] = best_a;
                max_diff = max_diff.max((best - values[s]).abs());
            }
            std::mem::swap(&mut values, &mut next);
            if max_diff < self.epsilon {
                return Ok(DiscountedResult {
                    values,
                    strategy: PositionalStrategy::new(best_action),
                    iterations: iteration,
                });
            }
        }
        Err(MdpError::ConvergenceFailure {
            method: "discounted value iteration",
            iterations: self.max_iterations,
        })
    }

    /// Sweep loop for the non-Jacobi kernels. Each round runs one full
    /// Bellman sweep — plain Jacobi, the only sweep convergence is ever
    /// judged on — followed by a handful of in-place Gauss-Seidel passes
    /// over the greedy policy it produced. The discounted operator is a
    /// γ-contraction, so the in-place passes contract toward the policy's
    /// value function directly; no renormalisation is needed. The
    /// prioritized kernel skips row blocks whose local residual fell below
    /// its threshold; the block partition is a pure function of the
    /// transition mass (see [`sm_markov::priority_blocks`]), so the skip
    /// pattern is deterministic.
    fn sweep_serial_kernel(
        &self,
        mdp: &Mdp,
        expected: &[f64],
    ) -> Result<DiscountedResult, MdpError> {
        let n = mdp.num_states();
        let threshold = match self.kernel {
            SweepKernel::Prioritized { threshold } => threshold,
            _ => 0.0,
        };
        let csr = mdp.csr();
        let layout = csr.layout();
        let row_ptr = layout.row_ptr();
        let action_ptr = layout.action_ptr();
        let col = layout.col();
        let prob = csr.probabilities();

        let cumulative: Vec<usize> = (0..=n)
            .map(|s| action_ptr[row_ptr[s] as usize] as usize)
            .collect();
        let blocks = priority_blocks(&cumulative);
        let mut residual = vec![f64::INFINITY; blocks.len()];

        let mut values = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut best_action = vec![0usize; n];
        let mut iteration = 0usize;
        while iteration < self.max_iterations {
            // Certifying full Bellman sweep (plain Jacobi), refreshing the
            // greedy strategy and the per-block residuals.
            iteration += 1;
            let mut max_diff: f64 = 0.0;
            for (bi, range) in blocks.iter().enumerate() {
                let mut block_diff: f64 = 0.0;
                for s in range.clone() {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_a = 0;
                    let pair_start = row_ptr[s] as usize;
                    for pair in pair_start..row_ptr[s + 1] as usize {
                        let mut acc = 0.0;
                        for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                            acc += prob[k] * values[col[k] as usize];
                        }
                        let value = expected[pair] + self.discount * acc;
                        if value > best {
                            best = value;
                            best_a = pair - pair_start;
                        }
                    }
                    next[s] = best;
                    best_action[s] = best_a;
                    block_diff = block_diff.max((best - values[s]).abs());
                }
                residual[bi] = block_diff;
                max_diff = max_diff.max(block_diff);
            }
            std::mem::swap(&mut values, &mut next);
            if max_diff < self.epsilon {
                return Ok(DiscountedResult {
                    values,
                    strategy: PositionalStrategy::new(best_action),
                    iterations: iteration,
                });
            }

            // Accelerator sweeps: in-place Gauss-Seidel over the greedy
            // policy; later states see earlier states' fresh values within
            // the same pass.
            for _ in 0..ACCELERATOR_SWEEPS_PER_ROUND {
                if iteration >= self.max_iterations {
                    break;
                }
                iteration += 1;
                for (bi, range) in blocks.iter().enumerate() {
                    if residual[bi] < threshold {
                        continue;
                    }
                    let mut block_diff: f64 = 0.0;
                    for s in range.clone() {
                        let pair = row_ptr[s] as usize + best_action[s];
                        let mut acc = 0.0;
                        for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                            acc += prob[k] * values[col[k] as usize];
                        }
                        let value = expected[pair] + self.discount * acc;
                        block_diff = block_diff.max((value - values[s]).abs());
                        values[s] = value;
                    }
                    residual[bi] = block_diff;
                }
            }
        }
        Err(MdpError::ConvergenceFailure {
            method: "discounted value iteration",
            iterations: self.max_iterations,
        })
    }

    /// Row-block parallel sweep loop; bit-identical to
    /// [`DiscountedValueIteration::sweep_serial`] for any thread count (see
    /// [`crate::RelativeValueIteration`] for the argument — the sweeps here
    /// are plain Jacobi iterations too).
    fn sweep_parallel(
        &self,
        mdp: &Mdp,
        expected: &[f64],
        threads: usize,
    ) -> Result<DiscountedResult, MdpError> {
        let n = mdp.num_states();
        let csr = mdp.csr();
        let layout = csr.layout();
        let row_ptr = layout.row_ptr();
        let action_ptr = layout.action_ptr();
        let col = layout.col();
        let prob = csr.probabilities();
        let cumulative: Vec<usize> = (0..=n)
            .map(|s| action_ptr[row_ptr[s] as usize] as usize)
            .collect();
        let blocks = mass_balanced_blocks(&cumulative, threads);
        if blocks.len() <= 1 {
            return self.sweep_serial(mdp, expected);
        }

        struct Chunk {
            next: Vec<f64>,
            best: Vec<usize>,
        }
        let values = RwLock::new(vec![0.0; n]);
        let chunks: Vec<Mutex<Chunk>> = blocks
            .iter()
            .map(|range| {
                Mutex::new(Chunk {
                    next: vec![0.0; range.len()],
                    best: vec![0usize; range.len()],
                })
            })
            .collect();

        let run_block = |block: usize, _job: &()| -> f64 {
            let range = blocks[block].clone();
            let values_read = values.read().expect("value lock poisoned");
            let values_read = &values_read[..];
            let mut chunk = chunks[block].lock().expect("sweep chunk poisoned");
            let chunk = &mut *chunk;
            let mut max_diff: f64 = 0.0;
            for s in range.clone() {
                let mut best = f64::NEG_INFINITY;
                let mut best_a = 0;
                let pair_start = row_ptr[s] as usize;
                for pair in pair_start..row_ptr[s + 1] as usize {
                    let mut acc = 0.0;
                    for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                        acc += prob[k] * values_read[col[k] as usize];
                    }
                    let value = expected[pair] + self.discount * acc;
                    if value > best {
                        best = value;
                        best_a = pair - pair_start;
                    }
                }
                chunk.next[s - range.start] = best;
                chunk.best[s - range.start] = best_a;
                max_diff = max_diff.max((best - values_read[s]).abs());
            }
            max_diff
        };

        sweep_scope(blocks.len() - 1, run_block, |pool| {
            for iteration in 1..=self.max_iterations {
                let round = pool.round(());
                let max_diff = round.iter().fold(0.0f64, |acc, &diff| acc.max(diff));
                {
                    let mut values_write = values.write().expect("value lock poisoned");
                    for (range, chunk) in blocks.iter().zip(&chunks) {
                        let chunk = chunk.lock().expect("sweep chunk poisoned");
                        values_write[range.start..range.end].copy_from_slice(&chunk.next);
                    }
                }
                if max_diff < self.epsilon {
                    let mut best_action = Vec::with_capacity(n);
                    for chunk in &chunks {
                        best_action
                            .extend_from_slice(&chunk.lock().expect("sweep chunk poisoned").best);
                    }
                    return Ok(DiscountedResult {
                        values: values.read().expect("value lock poisoned").clone(),
                        strategy: PositionalStrategy::new(best_action),
                        iterations: iteration,
                    });
                }
            }
            Err(MdpError::ConvergenceFailure {
                method: "discounted value iteration",
                iterations: self.max_iterations,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MdpBuilder, RelativeValueIteration};

    #[test]
    fn geometric_series_value() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, "loop", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |_, _, _| 3.0);
        let out = DiscountedValueIteration::new(0.9).solve(&mdp, &r).unwrap();
        assert!((out.values[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn prefers_immediate_reward_with_low_discount() {
        // Action "now" yields 1 then loops with 0; action "later" yields 0 now
        // and 10 next step, then loops with 0. With a very low discount the
        // immediate reward wins; with a high discount the delayed one wins.
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "now", vec![(2, 1.0)]).unwrap();
        b.add_action(0, "later", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "collect", vec![(2, 1.0)]).unwrap();
        b.add_action(2, "sink", vec![(2, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, a, _| match (s, a) {
            (0, 0) => 1.0,
            (1, 0) => 10.0,
            _ => 0.0,
        });
        let myopic = DiscountedValueIteration::new(0.01).solve(&mdp, &r).unwrap();
        assert_eq!(myopic.strategy.action(0), 0);
        let patient = DiscountedValueIteration::new(0.9).solve(&mdp, &r).unwrap();
        assert_eq!(patient.strategy.action(0), 1);
    }

    #[test]
    fn vanishing_discount_approaches_mean_payoff() {
        let mut b = MdpBuilder::new(2);
        b.add_action(0, "a", vec![(0, 0.75), (1, 0.25)]).unwrap();
        b.add_action(1, "b", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r =
            TransitionRewards::from_fn(&mdp, |s, _, t| if s == 0 && t == 0 { 2.0 } else { 0.0 });
        let gain = RelativeValueIteration::with_epsilon(1e-10)
            .solve(&mdp, &r)
            .unwrap()
            .gain;
        let discount = 0.9999;
        let discounted = DiscountedValueIteration::new(discount)
            .solve(&mdp, &r)
            .unwrap();
        let normalized = (1.0 - discount) * discounted.values[0];
        assert!(
            (normalized - gain).abs() < 1e-3,
            "vanishing discount {normalized} vs gain {gain}"
        );
    }

    #[test]
    fn empty_action_range_fails_loudly() {
        use crate::csr::{CsrLayout, CsrMdp};
        use std::sync::Arc;
        // State 1 has no actions — only constructible through the raw-parts
        // path (the builders reject it); without the guard the sweep would
        // spin its whole iteration budget on an infinite max_diff.
        let layout = CsrLayout::from_raw_parts(vec![0, 1, 1], vec![0, 1], vec![0]).unwrap();
        let csr = CsrMdp::from_raw_parts(
            Arc::new(layout),
            vec![1.0],
            vec!["loop".to_string()],
            vec![0],
            0,
        )
        .unwrap();
        let mdp = crate::Mdp::from(csr);
        let rewards = TransitionRewards::zeros(&mdp);
        assert!(matches!(
            DiscountedValueIteration::new(0.9).solve(&mdp, &rewards),
            Err(MdpError::NoActions { state: 1 })
        ));
    }

    #[test]
    fn sweep_kernels_agree_with_jacobi() {
        let mut b = MdpBuilder::new(3);
        b.add_action(0, "now", vec![(2, 1.0)]).unwrap();
        b.add_action(0, "later", vec![(1, 1.0)]).unwrap();
        b.add_action(1, "collect", vec![(2, 0.5), (0, 0.5)])
            .unwrap();
        b.add_action(2, "sink", vec![(2, 0.9), (1, 0.1)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::from_fn(&mdp, |s, a, t| {
            0.4 * s as f64 + 0.6 * a as f64 + 0.2 * t as f64
        });
        let jacobi = DiscountedValueIteration::new(0.9).solve(&mdp, &r).unwrap();
        for kernel in [
            sm_markov::SweepKernel::GaussSeidel,
            sm_markov::SweepKernel::Prioritized { threshold: 1e-12 },
        ] {
            let out = DiscountedValueIteration::new(0.9)
                .with_kernel(kernel)
                .solve(&mdp, &r)
                .unwrap();
            assert_eq!(out.strategy, jacobi.strategy, "{kernel:?}");
            for (s, (&v, &w)) in out.values.iter().zip(&jacobi.values).enumerate() {
                assert!(
                    (v - w).abs() < 1e-8,
                    "{kernel:?}: value mismatch at state {s}: {v} vs {w}"
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_discount() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, "loop", vec![(0, 1.0)]).unwrap();
        let mdp = b.build(0).unwrap();
        let r = TransitionRewards::zeros(&mdp);
        assert!(matches!(
            DiscountedValueIteration::new(1.0).solve(&mdp, &r),
            Err(MdpError::InvalidParameter { .. })
        ));
        assert!(matches!(
            DiscountedValueIteration::new(-0.1).solve(&mdp, &r),
            Err(MdpError::InvalidParameter { .. })
        ));
    }
}
