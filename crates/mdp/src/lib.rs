//! Finite-state Markov decision processes and mean-payoff solvers.
//!
//! The PODC 2024 selfish-mining analysis reduces the expected-relative-revenue
//! objective to a family of *mean-payoff* MDP problems and solves each of them
//! with an off-the-shelf probabilistic model checker (Storm). This crate is
//! the reproduction's replacement for that model checker. It provides:
//!
//! * [`Mdp`] / [`MdpBuilder`] — the finite MDP `(S, A, P, s₀)` of Section 2.3,
//!   with validated probabilistic transition functions. Internally the model
//!   is one flat compressed-sparse-row transition arena ([`CsrMdp`], built
//!   incrementally via [`CsrMdpBuilder`]); rewards and induced Markov chains
//!   share its index arrays, which is what makes the solver sweeps
//!   cache-friendly slice walks instead of nested-`Vec` pointer chases.
//! * [`TransitionRewards`] — reward functions `r : S × A × S → ℝ`, and the
//!   linear combinations needed for the paper's `r_β = r_A − β(r_A + r_H)`.
//! * [`PositionalStrategy`] — memoryless deterministic strategies, which are
//!   sufficient for mean-payoff optimality (Puterman, Thm. 9.1.8).
//! * Solvers for the *maximal mean payoff*:
//!   [`RelativeValueIteration`] (sparse, scales to the large selfish-mining
//!   models), [`PolicyIteration`] (Howard's algorithm, exact via linear
//!   solves) and [`LinearProgrammingSolver`] (gain LP over the `sm-linalg`
//!   simplex), plus [`DiscountedValueIteration`] for discounted objectives.
//! * [`MeanPayoffSolver`] — a façade that picks a solver and returns a
//!   [`MeanPayoffResult`] with certified lower/upper bounds on the optimal
//!   gain together with an optimal (up to the requested precision) strategy.
//!
//! # Example
//!
//! ```
//! use sm_mdp::{MdpBuilder, MeanPayoffSolver, TransitionRewards};
//!
//! # fn main() -> Result<(), sm_mdp::MdpError> {
//! // A two-state MDP: in state 0 the action `stay` earns 1 and loops,
//! // the action `leave` earns 0 and moves to state 1, from which the only
//! // action returns to 0 earning 0.5. Optimal mean payoff is 1 (keep staying).
//! let mut builder = MdpBuilder::new(2);
//! builder.add_action(0, "stay", vec![(0, 1.0)])?;
//! builder.add_action(0, "leave", vec![(1, 1.0)])?;
//! builder.add_action(1, "back", vec![(0, 1.0)])?;
//! let mdp = builder.build(0)?;
//! let rewards = TransitionRewards::from_fn(&mdp, |state, action, _target| {
//!     match (state, mdp.action_name(state, action)) {
//!         (0, "stay") => 1.0,
//!         (1, _) => 0.5,
//!         _ => 0.0,
//!     }
//! });
//! let result = MeanPayoffSolver::default().solve(&mdp, &rewards)?;
//! assert!((result.gain - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
mod discounted;
mod error;
mod lp;
mod model;
mod policy_iteration;
mod rewards;
mod solver;
mod strategy;
mod value_iteration;

pub use csr::{CsrLayout, CsrMdp, CsrMdpBuilder, COMPACT_ARENA_LIMIT};
pub use discounted::{DiscountedResult, DiscountedValueIteration};
pub use error::MdpError;
pub use lp::LinearProgrammingSolver;
pub use model::{ActionRef, Mdp, MdpBuilder};
pub use policy_iteration::{PolicyEvaluation, PolicyIteration};
pub use rewards::TransitionRewards;
pub use solver::{MeanPayoffMethod, MeanPayoffResult, MeanPayoffSolver};
pub use strategy::PositionalStrategy;
pub use value_iteration::{RelativeValueIteration, ValueIterationOutcome};

// Intra-solve parallelism and sweep-kernel vocabulary, shared with the
// chain-evaluation sweeps: re-exported so solver users configure everything
// from one crate.
pub use sm_markov::{SolverParallelism, SweepKernel};

/// Tolerance used when validating transition probability distributions.
pub const PROBABILITY_TOLERANCE: f64 = 1e-9;
