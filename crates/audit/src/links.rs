//! Dependency-free relative-link checker for the workspace's Markdown
//! documentation.
//!
//! The docs CI job runs [`check_markdown_links`] over the repository (via
//! the `check_links` binary) so a renamed file or section can never leave a
//! dangling `[text](relative/path.md)` behind. The pass is deliberately
//! lexical — inline links outside fenced code blocks — matching how the
//! workspace's Markdown is actually written; external (`http(s)://`,
//! `mailto:`) and same-document (`#…`) targets are out of scope.

use std::io;
use std::path::{Path, PathBuf};

/// One dangling relative link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFinding {
    /// Markdown file containing the link, relative to the scanned root.
    pub file: String,
    /// 1-based line number of the link.
    pub line: usize,
    /// The link target as written.
    pub target: String,
    /// The path the target resolved to, which does not exist.
    pub resolved: String,
}

impl std::fmt::Display for LinkFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: dangling link ({} -> {})",
            self.file, self.line, self.target, self.resolved
        )
    }
}

/// Directories never descended into: build output, VCS metadata and
/// generated artifact trees carry no hand-written documentation.
const SKIPPED_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Checks every `*.md` file under `root` (recursively, skipping build and
/// VCS directories) for inline relative links whose target does not exist.
/// Findings come back in deterministic (path-sorted) order.
///
/// # Errors
///
/// Propagates filesystem errors from walking `root` or reading a file.
pub fn check_markdown_links(root: &Path) -> io::Result<Vec<LinkFinding>> {
    let mut files = Vec::new();
    collect_markdown(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let contents = std::fs::read_to_string(file)?;
        let relative = file
            .strip_prefix(root)
            .unwrap_or(file)
            .display()
            .to_string();
        let dir = file.parent().unwrap_or(root);
        let mut in_fence = false;
        for (index, line) in contents.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in inline_link_targets(line) {
                let Some(path) = relative_target_path(&target) else {
                    continue;
                };
                let resolved = dir.join(&path);
                if !resolved.exists() {
                    findings.push(LinkFinding {
                        file: relative.clone(),
                        line: index + 1,
                        target: target.clone(),
                        resolved: resolved.display().to_string(),
                    });
                }
            }
        }
    }
    Ok(findings)
}

/// Recursively collects `*.md` files under `dir`, skipping [`SKIPPED_DIRS`]
/// and hidden directories.
fn collect_markdown(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|name| name.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIPPED_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_markdown(&path, files)?;
        } else if name.ends_with(".md") {
            files.push(path);
        }
    }
    Ok(())
}

/// Extracts the targets of every inline Markdown link `[text](target)` on
/// one line (images included — the leading `!` sits outside the scanned
/// `](…)` core). Inline code spans are not parsed; a code span containing a
/// literal `](` would need a matching existing path to stay quiet, which in
/// practice never occurs in this repository's docs.
fn inline_link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find("](") {
        let Some(tail) = rest.get(open + 2..) else {
            break;
        };
        let Some(close) = tail.find(')') else {
            break;
        };
        if let Some(target) = tail.get(..close) {
            targets.push(target.trim().to_string());
        }
        rest = tail.get(close + 1..).unwrap_or("");
    }
    targets
}

/// The filesystem path of a link target that is in scope for the checker:
/// relative, non-empty, with any `#fragment` and `"title"` suffix removed.
/// Returns `None` for external, anchor-only and empty targets.
fn relative_target_path(target: &str) -> Option<String> {
    let bare = target.split_whitespace().next().unwrap_or("");
    if bare.is_empty()
        || bare.starts_with('#')
        || bare.starts_with("http://")
        || bare.starts_with("https://")
        || bare.starts_with("mailto:")
    {
        return None;
    }
    let path = bare.split('#').next().unwrap_or(bare);
    if path.is_empty() {
        None
    } else {
        Some(path.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sm-links-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dangling_relative_links_are_found_and_valid_ones_pass() {
        let dir = scratch("basic");
        std::fs::write(dir.join("OTHER.md"), "# other\n").unwrap();
        std::fs::write(
            dir.join("README.md"),
            "[ok](OTHER.md) [ok too](OTHER.md#section)\n\
             [web](https://example.com/x.md) [anchor](#here)\n\
             [broken](MISSING.md)\n",
        )
        .unwrap();
        let findings = check_markdown_links(&dir).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].target, "MISSING.md");
        assert_eq!(findings[0].line, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn code_fences_subdirectories_and_skip_dirs_are_respected() {
        let dir = scratch("fences");
        std::fs::create_dir_all(dir.join("docs")).unwrap();
        std::fs::create_dir_all(dir.join("target")).unwrap();
        // Links inside fenced blocks are ignored...
        std::fs::write(
            dir.join("docs/GUIDE.md"),
            "```\n[ignored](NOPE.md)\n```\n[up](../REAL.md)\n",
        )
        .unwrap();
        std::fs::write(dir.join("REAL.md"), "x\n").unwrap();
        // ...and build-output trees are never scanned.
        std::fs::write(dir.join("target/JUNK.md"), "[broken](GONE.md)\n").unwrap();
        assert!(check_markdown_links(&dir).unwrap().is_empty());
        // A dangling link in a subdirectory reports a root-relative path.
        std::fs::write(dir.join("docs/BAD.md"), "[x](nested/none.md)\n").unwrap();
        let findings = check_markdown_links(&dir).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "docs/BAD.md");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
