//! Source-level determinism and panic-hygiene lint for the workspace.
//!
//! The codebase enforces several rules only by convention: solver paths
//! must not iterate hash containers (iteration order would leak into
//! results), library code must not panic on recoverable conditions, index
//! casts must be checked, and `unsafe` blocks need a `SAFETY:` argument.
//! This module makes the conventions checkable: a comment/string-stripping
//! scanner plus five textual rules and a committed allowlist that turns
//! every pre-existing justified site into an explicit, reviewable line.
//!
//! The scanner is deliberately lexical (no type information): it
//! over-approximates, and the allowlist file — see `lint_allowlist.txt` and
//! the crate README — is where a human signs off each site. Rules:
//!
//! * `hash-iter` — iteration over an identifier bound to a `HashMap` /
//!   `HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in`).
//! * `panic-site` — `.unwrap()` / `.expect(` outside test code.
//! * `direct-index` — `expr[…]` indexing outside test code.
//! * `unchecked-cast` — `as usize` / `as u32` narrowing or widening index
//!   casts outside test code.
//! * `unsafe-no-safety` — an `unsafe` token with no `SAFETY:` comment within
//!   the three preceding lines.
//!
//! Code under `#[cfg(test)]` is skipped entirely (unit tests may unwrap).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// The rule identifiers, in report order.
pub const RULES: [&str; 5] = [
    "hash-iter",
    "panic-site",
    "direct-index",
    "unchecked-cast",
    "unsafe-no-safety",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule (one of [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Result of linting a file tree against an allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintOutcome {
    /// Findings not covered by the allowlist — any entry here fails the
    /// gate.
    pub findings: Vec<Finding>,
    /// Number of findings the allowlist covered.
    pub allowlisted: usize,
    /// Allowlist entries (`"rule path"`) that matched no finding: candidates
    /// for removal, reported so the allowlist can only shrink.
    pub stale: Vec<String>,
}

/// Parses the allowlist format: one `rule path` pair per line,
/// whitespace-separated, `#` comments and blank lines ignored.
///
/// # Errors
///
/// Returns a description of the first malformed line or unknown rule.
pub fn parse_allowlist(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut entries = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let rule = parts.next().unwrap_or_default();
        let path = parts
            .next()
            .ok_or_else(|| format!("allowlist line {}: expected `rule path`", index + 1))?;
        if parts.next().is_some() {
            return Err(format!(
                "allowlist line {}: trailing tokens after `rule path`",
                index + 1
            ));
        }
        if !RULES.contains(&rule) {
            return Err(format!(
                "allowlist line {}: unknown rule {rule:?} (expected one of {RULES:?})",
                index + 1
            ));
        }
        entries.push((rule.to_string(), path.to_string()));
    }
    Ok(entries)
}

/// Replaces comments and the contents of string/char literals with spaces
/// (newlines preserved), so the textual rules cannot match inside them.
/// Byte-oriented: all Rust syntax is ASCII and non-ASCII bytes can only
/// occur inside literals, comments or identifiers.
fn mask_source(source: &str) -> String {
    let bytes = source.as_bytes();
    let len = bytes.len();
    let mut out = Vec::with_capacity(len);
    let at = |i: usize| bytes.get(i).copied().unwrap_or(0);
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut i = 0;
    while i < len {
        let b = at(i);
        // Raw (byte) strings: r"…", r#"…"#, br"…", … — opener only when the
        // `r` does not continue an identifier.
        let raw_start = if (b == b'r' || (b == b'b' && at(i + 1) == b'r'))
            && (i == 0 || !is_ident(at(i.wrapping_sub(1))))
        {
            let mut j = i + if b == b'b' { 2 } else { 1 };
            let hash_start = j;
            while at(j) == b'#' {
                j += 1;
            }
            (at(j) == b'"').then_some((j, j - hash_start))
        } else {
            None
        };
        if let Some((quote, hashes)) = raw_start {
            // Copy the prefix, mask to the closing `"` + hashes.
            for k in i..=quote {
                out.push(at(k));
            }
            let mut j = quote + 1;
            loop {
                if j >= len {
                    break;
                }
                if at(j) == b'"' && (1..=hashes).all(|h| at(j + h) == b'#') {
                    out.resize(out.len() + 1 + hashes, b' ');
                    j += 1 + hashes;
                    break;
                }
                out.push(if at(j) == b'\n' { b'\n' } else { b' ' });
                j += 1;
            }
            i = j;
        } else if b == b'/' && at(i + 1) == b'/' {
            while i < len && at(i) != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if b == b'/' && at(i + 1) == b'*' {
            let mut depth = 0usize;
            while i < len {
                if at(i) == b'/' && at(i + 1) == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if at(i) == b'*' && at(i + 1) == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if at(i) == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if b == b'"' {
            out.push(b'"');
            i += 1;
            while i < len {
                match at(i) {
                    b'\\' => {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    }
                    b'"' => {
                        out.push(b'"');
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        out.push(b'\n');
                        i += 1;
                    }
                    _ => {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
        } else if b == b'\'' {
            // Char/byte literal vs lifetime: a literal closes with `'` after
            // one (possibly escaped or multi-byte) character.
            let close = if at(i + 1) == b'\\' {
                // Escaped: scan to the terminating quote (bounded — `\u{…}`
                // escapes are the longest).
                (i + 2..(i + 12).min(len)).find(|&j| at(j) == b'\'')
            } else {
                let step = match at(i + 1) {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => 1,
                };
                (at(i + 1 + step) == b'\'').then_some(i + 1 + step)
            };
            if let Some(close) = close {
                out.push(b'\'');
                out.resize(out.len() + (close - i - 1), b' ');
                out.push(b'\'');
                i = close + 1;
            } else {
                // A lifetime; copy verbatim.
                out.push(b);
                i += 1;
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    // Masking only ever replaces bytes with ASCII spaces, so the result is
    // valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

/// Byte ranges of `#[cfg(test)]`-gated items (attribute through matching
/// closing brace, or through `;` for brace-less items), found on the masked
/// text so literals cannot fake an attribute.
fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(offset) = masked.get(from..).and_then(|s| s.find("#[cfg(test)]")) {
        let start = from + offset;
        let mut i = start + "#[cfg(test)]".len();
        // Find the item's opening brace (or `;` for brace-less items).
        let mut open = None;
        while i < bytes.len() {
            match bytes.get(i) {
                Some(b'{') => {
                    open = Some(i);
                    break;
                }
                Some(b';') => break,
                _ => i += 1,
            }
        }
        let end = match open {
            Some(open) => {
                let mut depth = 0usize;
                let mut j = open;
                loop {
                    match bytes.get(j) {
                        Some(b'{') => depth += 1,
                        Some(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                break j + 1;
                            }
                        }
                        None => break j,
                        _ => {}
                    }
                    j += 1;
                }
            }
            None => i + 1,
        };
        regions.push((start, end));
        from = end.max(start + 1);
    }
    regions
}

/// Identifiers the file binds to `HashMap` / `HashSet` values: `let` (and
/// `let mut`) bindings and `name: HashMap<…>` field/parameter declarations.
fn hash_bound_idents(masked: &str) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in masked.lines() {
        if !line.contains("HashMap") && !line.contains("HashSet") {
            continue;
        }
        if let Some(after_let) = line.split("let ").nth(1) {
            let after_let = after_let.strip_prefix("mut ").unwrap_or(after_let);
            let ident: String = after_let
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                idents.insert(ident);
            }
        }
        // `name: HashMap<…>` — the ident immediately before the first `:`
        // that precedes the container type.
        if let Some(colon) = line.find(':') {
            let (head, tail) = line.split_at(colon);
            if tail.contains("HashMap") || tail.contains("HashSet") {
                let ident: String = head
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    idents.insert(ident);
                }
            }
        }
    }
    idents
}

/// Whether `line` contains `needle` as a whole word (non-identifier
/// characters, or line edges, on both sides). Distinguishes the `unsafe`
/// keyword from `unsafe_code` in `#![forbid(unsafe_code)]` attributes.
fn whole_word(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(offset) = line.get(from..).and_then(|s| s.find(needle)) {
        let at = from + offset;
        let before_ok = at == 0
            || !line.as_bytes()[at - 1].is_ascii_alphanumeric() && line.as_bytes()[at - 1] != b'_';
        let after = line
            .as_bytes()
            .get(at + needle.len())
            .copied()
            .unwrap_or(b' ');
        if before_ok && !(after.is_ascii_alphanumeric() || after == b'_') {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Whether `needle` occurs in `line` starting at a non-identifier boundary.
fn word_start_occurrence(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(offset) = line.get(from..).and_then(|s| s.find(needle)) {
        let at = from + offset;
        let boundary = at == 0
            || !line.as_bytes()[at - 1].is_ascii_alphanumeric() && line.as_bytes()[at - 1] != b'_';
        if boundary {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Whether the masked line iterates one of the hash-bound identifiers.
fn iterates_hash(line: &str, idents: &BTreeSet<String>) -> bool {
    const ITER_METHODS: [&str; 10] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
        ".retain(",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
    ];
    for ident in idents {
        for method in ITER_METHODS {
            if word_start_occurrence(line, &format!("{ident}{method}")) {
                return true;
            }
        }
        for prefix in ["in ", "in &", "in &mut "] {
            let pattern = format!("{prefix}{ident}");
            let mut from = 0;
            while let Some(offset) = line.get(from..).and_then(|s| s.find(&pattern)) {
                let at = from + offset;
                let before_ok = at == 0
                    || !line.as_bytes()[at - 1].is_ascii_alphanumeric()
                        && line.as_bytes()[at - 1] != b'_';
                let end = at + pattern.len();
                let after = line.as_bytes().get(end).copied().unwrap_or(b' ');
                // `map.keys()` style is caught above; here only bare
                // iteration (`for k in map {`, `in map;`, end of line).
                let after_ok = !(after.is_ascii_alphanumeric() || after == b'_' || after == b'.');
                if before_ok && after_ok {
                    return true;
                }
                from = at + 1;
            }
        }
    }
    false
}

/// Whether the masked line contains `expr[` indexing (an identifier, `)` or
/// `]` immediately followed by `[`).
fn has_direct_index(line: &str) -> bool {
    let bytes = line.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        b == b'['
            && i > 0
            && matches!(bytes[i - 1], b')' | b']' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
    })
}

/// Whether the masked line contains an `as usize` / `as u32` cast.
fn has_unchecked_cast(line: &str) -> bool {
    for needle in ["as usize", "as u32"] {
        let mut from = 0;
        while let Some(offset) = line.get(from..).and_then(|s| s.find(needle)) {
            let at = from + offset;
            let before_ok = at == 0
                || !line.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && line.as_bytes()[at - 1] != b'_';
            let end = at + needle.len();
            let after = line.as_bytes().get(end).copied().unwrap_or(b' ');
            let after_ok = !(after.is_ascii_alphanumeric() || after == b'_');
            if before_ok && after_ok {
                return true;
            }
            from = at + 1;
        }
    }
    false
}

/// Lints one file's source, returning findings with `path` as given.
pub fn lint_source(source: &str, path: &str) -> Vec<Finding> {
    let masked = mask_source(source);
    let regions = test_regions(&masked);
    let idents = hash_bound_idents(&masked);
    let original_lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    let mut offset = 0usize;
    for (index, line) in masked.lines().enumerate() {
        let line_start = offset;
        offset += line.len() + 1;
        let in_test = regions
            .iter()
            .any(|&(start, end)| line_start < end && start < line_start + line.len().max(1));
        if in_test {
            continue;
        }
        let snippet = original_lines
            .get(index)
            .map(|l| {
                let trimmed = l.trim();
                trimmed.chars().take(120).collect::<String>()
            })
            .unwrap_or_default();
        let mut push = |rule: &'static str| {
            findings.push(Finding {
                rule,
                path: path.to_string(),
                line: index + 1,
                snippet: snippet.clone(),
            });
        };
        if iterates_hash(line, &idents) {
            push("hash-iter");
        }
        if line.contains(".unwrap()") || line.contains(".expect(") {
            push("panic-site");
        }
        if has_direct_index(line) {
            push("direct-index");
        }
        if has_unchecked_cast(line) {
            push("unchecked-cast");
        }
        if whole_word(line, "unsafe") {
            let lookback = index.saturating_sub(3);
            let documented = (lookback..=index)
                .any(|i| original_lines.get(i).is_some_and(|l| l.contains("SAFETY:")));
            if !documented {
                push("unsafe-no-safety");
            }
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// The source roots the workspace lint scans, relative to the repo root:
/// every member crate's `src` tree plus the umbrella crate's `src`.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut members: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            collect_rs_files(&member.join("src"), &mut files);
        }
    }
    collect_rs_files(&root.join("src"), &mut files);
    files
}

/// Lints every member crate's `src` tree (plus the umbrella `src`) under
/// `root` against an allowlist (see [`parse_allowlist`] for the format).
///
/// # Errors
///
/// Returns a description if the allowlist is malformed or a source file
/// cannot be read.
pub fn lint_workspace(root: &Path, allowlist_text: &str) -> Result<LintOutcome, String> {
    let allowlist = parse_allowlist(allowlist_text)?;
    let mut all_findings = Vec::new();
    for file in workspace_sources(root) {
        let source = fs::read_to_string(&file)
            .map_err(|err| format!("cannot read {}: {err}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        all_findings.extend(lint_source(&source, &rel));
    }
    let mut used: Vec<bool> = vec![false; allowlist.len()];
    let mut findings = Vec::new();
    let mut allowlisted = 0usize;
    for finding in all_findings {
        match allowlist
            .iter()
            .position(|(rule, path)| *rule == finding.rule && *path == finding.path)
        {
            Some(index) => {
                used[index] = true;
                allowlisted += 1;
            }
            None => findings.push(finding),
        }
    }
    let stale = allowlist
        .iter()
        .zip(&used)
        .filter(|(_, &was_used)| !was_used)
        .map(|((rule, path), _)| format!("{rule} {path}"))
        .collect();
    Ok(LintOutcome {
        findings,
        allowlisted,
        stale,
    })
}

/// Renders findings as stable `rule path` allowlist lines (deduplicated,
/// sorted) — the `--list` mode of the lint binary, for reviewing or
/// regenerating the allowlist.
pub fn allowlist_lines(findings: &[Finding]) -> Vec<String> {
    let set: BTreeSet<String> = findings
        .iter()
        .map(|f| format!("{} {}", f.rule, f.path))
        .collect();
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(source: &str) -> Vec<&'static str> {
        lint_source(source, "x.rs")
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_unwrap_and_expect_outside_tests() {
        assert_eq!(rules_of("fn f() { x.unwrap(); }"), vec!["panic-site"]);
        assert_eq!(
            rules_of("fn f() { x.expect(\"msg\"); }"),
            vec!["panic-site"]
        );
        assert!(rules_of("fn f() { x.unwrap_or_else(g); }").is_empty());
        assert!(rules_of("fn f() { x.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn skips_cfg_test_modules() {
        let source = "fn f() { g(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(rules_of(source).is_empty());
        let outside = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(rules_of(outside), vec!["panic-site"]);
    }

    #[test]
    fn masks_strings_comments_and_chars() {
        assert!(rules_of("fn f() { g(\"call .unwrap() ok\"); } // x.unwrap()").is_empty());
        assert!(rules_of("/* x.unwrap() */ fn f() {}").is_empty());
        assert!(rules_of("fn f() { let c = '['; }").is_empty());
        assert!(rules_of("fn f() -> &'static str { r#\"a[0].unwrap()\"# }").is_empty());
        // A lifetime tick must not swallow the rest of the line.
        assert_eq!(
            rules_of("fn f<'a>(x: &'a Foo) { y.unwrap(); }"),
            vec!["panic-site"]
        );
    }

    #[test]
    fn flags_direct_indexing_and_casts() {
        assert_eq!(rules_of("fn f() { let y = xs[0]; }"), vec!["direct-index"]);
        assert_eq!(rules_of("fn f() { let y = g()[k]; }"), vec!["direct-index"]);
        assert!(rules_of("fn f(xs: &[u32]) { let y = xs.get(0); }").is_empty());
        assert!(rules_of("#[derive(Debug)]\nstruct S;").is_empty());
        assert_eq!(
            rules_of("fn f() { let y = x as usize; }"),
            vec!["unchecked-cast"]
        );
        assert_eq!(
            rules_of("fn f() { let y = x as u32; }"),
            vec!["unchecked-cast"]
        );
        assert!(rules_of("fn f() { let y = x as u64; }").is_empty());
        assert!(rules_of("fn has_usize() {}").is_empty());
    }

    #[test]
    fn flags_hash_iteration_but_not_lookup() {
        let iterating = "use std::collections::HashMap;\n\
                         fn f() {\n    let mut ids: HashMap<u32, u32> = HashMap::new();\n\
                         \x20   for k in ids.keys() { g(k); }\n}\n";
        assert!(rules_of(iterating).contains(&"hash-iter"));
        let lookup = "use std::collections::HashMap;\n\
                      fn f() {\n    let ids: HashMap<u32, u32> = HashMap::new();\n\
                      \x20   let v = ids.get(&3);\n}\n";
        assert!(!rules_of(lookup).contains(&"hash-iter"));
        let for_loop = "fn f(pool: HashSet<u32>) {\n    for x in &pool { g(x); }\n}\n";
        assert!(rules_of(for_loop).contains(&"hash-iter"));
    }

    #[test]
    fn flags_undocumented_unsafe_only() {
        let documented =
            "fn f() {\n    // SAFETY: the slice outlives the call.\n    unsafe { g() }\n}\n";
        assert!(!rules_of(documented).contains(&"unsafe-no-safety"));
        let bare = "fn f() {\n    unsafe { g() }\n}\n";
        assert!(rules_of(bare).contains(&"unsafe-no-safety"));
        // `unsafe_code` in a forbid attribute is not the `unsafe` keyword.
        assert!(!rules_of("#![forbid(unsafe_code)]\n").contains(&"unsafe-no-safety"));
    }

    #[test]
    fn allowlist_parses_and_rejects_unknown_rules() {
        let parsed = parse_allowlist("# comment\npanic-site crates/x/src/lib.rs\n\n").unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parse_allowlist("no-such-rule crates/x/src/lib.rs").is_err());
        assert!(parse_allowlist("panic-site").is_err());
        assert!(parse_allowlist("panic-site a b").is_err());
    }

    #[test]
    fn allowlist_lines_are_sorted_and_deduplicated() {
        let findings = vec![
            Finding {
                rule: "panic-site",
                path: "b.rs".to_string(),
                line: 2,
                snippet: String::new(),
            },
            Finding {
                rule: "panic-site",
                path: "a.rs".to_string(),
                line: 1,
                snippet: String::new(),
            },
            Finding {
                rule: "panic-site",
                path: "b.rs".to_string(),
                line: 9,
                snippet: String::new(),
            },
        ];
        assert_eq!(
            allowlist_lines(&findings),
            vec!["panic-site a.rs", "panic-site b.rs"]
        );
    }
}
