//! `sm-audit` — independent static checks for the selfish-mining solver
//! stack. Three passes, none of which import any solver machinery on their
//! checking path:
//!
//! 1. **Certificate audit** ([`audit_certificate`]): re-validates a
//!    serialized [`CertificateArtifact`] (bracket, strategy, bias witness)
//!    against an arena with plain Jacobi Bellman-residual sweeps — no
//!    relative value iteration, no Dinkelbach, no warm starts. Soundness
//!    rests on the residual sandwich `min Δ ≤ g*(β) ≤ max Δ`, which holds
//!    for *any* finite bias vector; see [`certificate`] for the argument.
//! 2. **Arena invariant analysis** ([`audit_model`], [`audit_parametric`],
//!    [`audit_scenario_restriction`]): proves CSR layouts, probability
//!    mass, reward buffers, symbolic term tables and scenario action-subset
//!    relations well-formed without solving anything.
//! 3. **Source lint** ([`lint`] and the `lint_source` binary): a
//!    dependency-free scan of the workspace for determinism and panic
//!    hygiene (hash-container iteration, `unwrap()`/indexing/casts outside
//!    tests, undocumented `unsafe`), gated by a committed allowlist.
//!
//! The crate deliberately depends only on `sm-core` and `sm-mdp` (for the
//! arena types), keeping the trusted base of the audit small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod artifact;
pub mod certificate;
pub mod fingerprint;
pub mod json;
pub mod links;
pub mod lint;
pub mod report;

pub use arena::{
    audit_mdp, audit_model, audit_parametric, audit_rewards, audit_scenario_restriction,
};
pub use artifact::{CertificateArtifact, ARTIFACT_SCHEMA};
pub use certificate::{audit_certificate, derive_tolerances, AuditConfig, AuditTolerances};
pub use fingerprint::{model_fingerprint, Fnv1a};
pub use lint::{lint_source, lint_workspace, Finding, LintOutcome};
pub use report::{AuditReport, Obligation, ObligationOutcome};
