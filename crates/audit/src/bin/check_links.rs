//! Relative Markdown link gate: scans every `*.md` file in the repository
//! for inline links to paths that do not exist and exits non-zero on any
//! finding.
//!
//! ```text
//! cargo run -p sm-audit --bin check_links [-- --root DIR]
//! ```

use sm_audit::links::check_markdown_links;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn default_root() -> PathBuf {
    // The crate lives at <root>/crates/audit.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let mut root = default_root();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(value) => root = PathBuf::from(value),
                None => {
                    eprintln!("check_links: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("check_links: unknown argument {other:?}");
                eprintln!("usage: check_links [--root DIR]");
                return ExitCode::FAILURE;
            }
        }
    }
    let findings = match check_markdown_links(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("check_links: {err}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("check_links: all relative Markdown links resolve");
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            eprintln!("{finding}");
        }
        eprintln!("check_links: {} dangling link(s)", findings.len());
        ExitCode::FAILURE
    }
}
