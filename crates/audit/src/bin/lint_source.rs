//! Workspace lint gate: scans every member crate's sources against the
//! committed allowlist and exits non-zero on any new finding.
//!
//! ```text
//! cargo run -p sm-audit --bin lint_source [-- --root DIR] [--allowlist FILE] [--list]
//! ```
//!
//! `--list` prints every finding (ignoring the allowlist) as `rule path`
//! allowlist lines — the format of `crates/audit/lint_allowlist.txt`.

use sm_audit::lint::{allowlist_lines, lint_workspace};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn default_root() -> PathBuf {
    // The crate lives at <root>/crates/audit.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let mut root = default_root();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut list_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(value) => root = PathBuf::from(value),
                None => {
                    eprintln!("lint_source: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--allowlist" => match args.next() {
                Some(value) => allowlist_path = Some(PathBuf::from(value)),
                None => {
                    eprintln!("lint_source: --allowlist needs a file");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => list_mode = true,
            other => {
                eprintln!("lint_source: unknown argument {other:?}");
                eprintln!("usage: lint_source [--root DIR] [--allowlist FILE] [--list]");
                return ExitCode::FAILURE;
            }
        }
    }
    let allowlist_path =
        allowlist_path.unwrap_or_else(|| root.join("crates/audit/lint_allowlist.txt"));

    if list_mode {
        // Ignore the allowlist: dump every finding as an allowlist line.
        let outcome = match lint_workspace(&root, "") {
            Ok(outcome) => outcome,
            Err(err) => {
                eprintln!("lint_source: {err}");
                return ExitCode::FAILURE;
            }
        };
        for line in allowlist_lines(&outcome.findings) {
            println!("{line}");
        }
        return ExitCode::SUCCESS;
    }

    let allowlist_text = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "lint_source: cannot read allowlist {}: {err}",
                allowlist_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let outcome = match lint_workspace(&root, &allowlist_text) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("lint_source: {err}");
            return ExitCode::FAILURE;
        }
    };
    for entry in &outcome.stale {
        eprintln!("lint_source: stale allowlist entry (no matching finding): {entry}");
    }
    if outcome.findings.is_empty() {
        println!(
            "lint_source: clean ({} allowlisted site(s), {} stale allowlist entr(ies))",
            outcome.allowlisted,
            outcome.stale.len()
        );
        return ExitCode::SUCCESS;
    }
    for finding in &outcome.findings {
        eprintln!(
            "{}:{}: [{}] {}",
            finding.path, finding.line, finding.rule, finding.snippet
        );
    }
    eprintln!(
        "lint_source: {} finding(s) not covered by {}",
        outcome.findings.len(),
        allowlist_path.display()
    );
    ExitCode::FAILURE
}
