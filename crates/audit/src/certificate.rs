//! The independent certificate checker: ~300 lines of plain arithmetic that
//! re-validate a certified `[β_low, β_up]` bracket with three single Jacobi
//! Bellman-residual passes over the arena — no relative value iteration, no
//! Dinkelbach loop, no warm starts, no solver imports.
//!
//! # Why single passes suffice
//!
//! For the mean-payoff MDP with rewards `r_β = r_A − β(r_A + r_H)` the lazy
//! Bellman operator `T_τ h = (1−τ) h + τ T h` satisfies the *residual
//! sandwich*
//!
//! ```text
//!     min_s (T_τ h − h)(s)  ≤  g*(β)  ≤  max_s (T_τ h − h)(s)
//! ```
//!
//! for **any** finite bias vector `h` (`g*` is the optimal gain; the lazy
//! chain has the same stationary distribution and the same gain as the
//! original). The certificate carries the producer's final bias as a
//! witness; one residual pass over it at `β_low` proves `g*(β_low) ≥ −tol`
//! (so `ERRev* ≥ β_low` up to tolerance), one pass at `β_up` proves
//! `g*(β_up) ≤ tol` (so `ERRev* ≤ β_up`), and one *policy-restricted* pass
//! under the exported strategy at `β = strategy_revenue` proves the
//! strategy's gain at its own claimed revenue is zero — which pins the
//! claimed revenue to the strategy's actual expected relative revenue.
//!
//! Soundness does not depend on the quality of the witness: a dishonest
//! bracket forces the corresponding residual check to fail for *every*
//! bias. The witness quality only affects completeness — how tight the
//! tolerance can be while honest certificates still pass — which is why the
//! bias the producer converged to is the natural thing to ship.

use crate::artifact::CertificateArtifact;
use crate::fingerprint::model_fingerprint;
use crate::report::{AuditReport, Obligation, ObligationOutcome};
use selfish_mining::SelfishMiningModel;
use sm_mdp::Mdp;

/// Configuration of the certificate audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Laziness `τ` of the residual operator. The sandwich holds for any
    /// `τ ∈ (0, 1]`; matching the producer's relative-value-iteration
    /// laziness (0.95) keeps the audited residuals on the same scale the
    /// producer converged on, so the default tolerance stays tight.
    pub laziness: f64,
    /// Multiplier on the derived residual tolerances. 1.0 audits at the
    /// tolerance the producer's `ε` justifies; raising it trades rejection
    /// power for slack, lowering it rejects honest certificates.
    pub tolerance_scale: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            laziness: 0.95,
            tolerance_scale: 1.0,
        }
    }
}

/// The residual tolerances one audit runs with, derived from the artifact's
/// `ε` and the arena's reward magnitudes (see [`derive_tolerances`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditTolerances {
    /// Bound-pass tolerance: `LowerBound` requires `min Δ(β_low) ≥ −bound`,
    /// `UpperBound` requires `max Δ(β_up) ≤ bound`, and `BiasResidualSpan`
    /// requires `max Δ(β_low) − min Δ(β_low) ≤ bound`.
    pub bound: f64,
    /// Chain-pass tolerance: `RevenueConsistent` requires the restricted
    /// residuals at `β = strategy_revenue` to straddle zero within it.
    pub chain: f64,
}

/// Derives the audit tolerances for a certificate of precision `epsilon` on
/// an arena whose per-pair expected total reward (`r_A + r_H`) peaks at
/// `r_total_max`.
///
/// The producer's witness was converged (residual span ≤ `ε/100`) at a
/// Dinkelbach β within `ε` of `β_low` and within `2ε` of `β_up`; shifting β
/// by `δ` shifts each state's residual by at most `δ · r_total_max`. The
/// chain pass additionally tolerates the strategy-extraction tie cutoff
/// (`32 · ε/100`). Everything is scaled by [`AuditConfig::tolerance_scale`].
pub fn derive_tolerances(epsilon: f64, r_total_max: f64, config: &AuditConfig) -> AuditTolerances {
    let scale = config.tolerance_scale;
    AuditTolerances {
        bound: scale * epsilon * (0.05 + 2.0 * r_total_max),
        chain: scale * epsilon * (0.4 + 2.0 * r_total_max),
    }
}

/// Min/max residual of one full (max-over-actions) lazy Bellman pass:
/// `Δ(s) = max_a [ e_β(s, a) + τ Σ_t P(t | s, a) h(t) + (1 − τ) h(s) ] − h(s)`.
///
/// This replicates the producer's sweep arithmetic (same lazy operator,
/// same per-pair expected rewards) in ~25 lines; residuals are invariant
/// under adding a constant to `h`, so no renormalisation is needed.
fn bellman_residuals(mdp: &Mdp, expected: &[f64], h: &[f64], tau: f64) -> (f64, f64) {
    let csr = mdp.csr();
    let layout = csr.layout();
    let row_ptr = layout.row_ptr();
    let action_ptr = layout.action_ptr();
    let col = layout.col();
    let prob = csr.probabilities();
    let mut min_delta = f64::INFINITY;
    let mut max_delta = f64::NEG_INFINITY;
    for s in 0..mdp.num_states() {
        let h_s = h[s];
        let lazy = (1.0 - tau) * h_s;
        let mut best = f64::NEG_INFINITY;
        for pair in row_ptr[s] as usize..row_ptr[s + 1] as usize {
            let mut acc = 0.0;
            for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
                acc += prob[k] * h[col[k] as usize];
            }
            let value = expected[pair] + tau * acc + lazy;
            best = best.max(value);
        }
        let delta = best - h_s;
        min_delta = min_delta.min(delta);
        max_delta = max_delta.max(delta);
    }
    (min_delta, max_delta)
}

/// Min/max residual of one policy-restricted lazy pass: as
/// [`bellman_residuals`], but each state contributes only its chosen
/// action's value — the residuals of the Markov chain the strategy induces.
fn chain_residuals(
    mdp: &Mdp,
    expected: &[f64],
    h: &[f64],
    tau: f64,
    strategy: &[u32],
) -> (f64, f64) {
    let csr = mdp.csr();
    let layout = csr.layout();
    let row_ptr = layout.row_ptr();
    let action_ptr = layout.action_ptr();
    let col = layout.col();
    let prob = csr.probabilities();
    let mut min_delta = f64::INFINITY;
    let mut max_delta = f64::NEG_INFINITY;
    for s in 0..mdp.num_states() {
        let h_s = h[s];
        let pair = row_ptr[s] as usize + strategy[s] as usize;
        let mut acc = 0.0;
        for k in action_ptr[pair] as usize..action_ptr[pair + 1] as usize {
            acc += prob[k] * h[col[k] as usize];
        }
        let delta = expected[pair] + tau * acc + (1.0 - tau) * h_s - h_s;
        min_delta = min_delta.min(delta);
        max_delta = max_delta.max(delta);
    }
    (min_delta, max_delta)
}

/// Audits one certificate against the arena it claims to certify, checking
/// every [`Obligation`] and returning the typed verdict. The checking path
/// reads only the artifact and the arena (layout, probabilities, reward
/// buffers) — none of the solver machinery.
///
/// The caller re-instantiates the model from the artifact's coordinates
/// (`ParametricModel::build(depth, f, l)` + `instantiate(p, γ)`); the
/// `Fingerprint` obligation then proves the instantiation is bit-identical
/// to the arena the certificate was produced on.
pub fn audit_certificate(
    artifact: &CertificateArtifact,
    model: &SelfishMiningModel,
    config: &AuditConfig,
) -> AuditReport {
    let mdp = model.mdp();
    let n = mdp.num_states();
    let mut outcomes = Vec::with_capacity(Obligation::ALL.len());
    let mut record = |obligation: Obligation, passed: bool, detail: String| {
        outcomes.push(ObligationOutcome {
            obligation,
            passed,
            detail,
        });
        passed
    };

    // Obligation 1: the arena is the one the certificate was produced on.
    let expected_fingerprint =
        model_fingerprint(mdp, model.adversary_rewards(), model.honest_rewards());
    let params = model.params();
    let identity_ok = artifact.fingerprint == expected_fingerprint
        && artifact.scenario == model.scenario().label()
        && artifact.depth == params.depth
        && artifact.forks_per_block == params.forks_per_block
        && artifact.max_fork_length == params.max_fork_length
        && artifact.p.to_bits() == params.p.to_bits()
        && artifact.gamma.to_bits() == params.gamma.to_bits()
        && artifact.epsilon.is_finite()
        && artifact.epsilon > 0.0;
    record(
        Obligation::Fingerprint,
        identity_ok,
        if identity_ok {
            format!("arena digest {:016x}", expected_fingerprint)
        } else {
            format!(
                "artifact {:016x} vs arena {:016x} (or parameter mismatch)",
                artifact.fingerprint, expected_fingerprint
            )
        },
    );

    // Obligation 2: the strategy chooses one in-range action per state.
    let strategy_ok = artifact.strategy.len() == n
        && artifact
            .strategy
            .iter()
            .enumerate()
            .all(|(s, &a)| (a as usize) < mdp.num_actions(s));
    record(
        Obligation::StrategyTotality,
        strategy_ok,
        if strategy_ok {
            format!("{n} states, all choices in range")
        } else if artifact.strategy.len() != n {
            format!("strategy covers {} of {n} states", artifact.strategy.len())
        } else {
            "some choice indexes a non-existent action".to_string()
        },
    );

    // Obligation 3: the bias witness has one finite entry per state.
    let bias_ok = artifact.bias.len() == n && artifact.bias.iter().all(|h| h.is_finite());
    record(
        Obligation::BiasShape,
        bias_ok,
        if bias_ok {
            format!("{n} finite entries")
        } else {
            format!(
                "{} entries ({} non-finite) for {n} states",
                artifact.bias.len(),
                artifact.bias.iter().filter(|h| !h.is_finite()).count()
            )
        },
    );

    // Obligation 4: the bracket is ordered, inside [0, 1], no wider than ε.
    let width = artifact.beta_up - artifact.beta_low;
    let interval_ok = artifact.beta_low.is_finite()
        && artifact.beta_up.is_finite()
        && artifact.beta_low >= 0.0
        && artifact.beta_up <= 1.0
        && width >= 0.0
        && width <= artifact.epsilon * (1.0 + 1e-12);
    record(
        Obligation::BetaInterval,
        interval_ok,
        format!(
            "[{:.6}, {:.6}], width {:.3e} (ε = {:.1e})",
            artifact.beta_low, artifact.beta_up, width, artifact.epsilon
        ),
    );

    // Obligation 5: the claimed revenue lies inside the bracket.
    let revenue_ok = artifact.strategy_revenue >= artifact.beta_low
        && artifact.strategy_revenue <= artifact.beta_up;
    record(
        Obligation::RevenueInBracket,
        revenue_ok,
        format!(
            "ρ = {:.6} vs [{:.6}, {:.6}]",
            artifact.strategy_revenue, artifact.beta_low, artifact.beta_up
        ),
    );

    // The residual passes need a fingerprint-verified arena, a total
    // strategy and a well-shaped bias; without them there is nothing sound
    // to compute, so the remaining obligations fail as skipped.
    if !(identity_ok && strategy_ok && bias_ok) {
        for obligation in [
            Obligation::BiasResidualSpan,
            Obligation::LowerBound,
            Obligation::UpperBound,
            Obligation::RevenueConsistent,
        ] {
            record(
                obligation,
                false,
                "skipped: prerequisite obligation failed".to_string(),
            );
        }
        return AuditReport { outcomes };
    }

    // Per-pair expected rewards of both objectives — the only precomputation
    // the passes share. `e_β = e_A − β (e_A + e_H)` per pair.
    let expected_adv = model.adversary_rewards().expected_per_pair(mdp);
    let expected_hon = model.honest_rewards().expected_per_pair(mdp);
    let r_total_max = expected_adv
        .iter()
        .zip(&expected_hon)
        .fold(0.0_f64, |acc, (&a, &h)| acc.max(a + h));
    let tolerances = derive_tolerances(artifact.epsilon, r_total_max, config);
    let tau = config.laziness;
    let expected_at = |beta: f64| -> Vec<f64> {
        expected_adv
            .iter()
            .zip(&expected_hon)
            .map(|(&a, &h)| a - beta * (a + h))
            .collect()
    };

    // Pass A, at β_low: span of the witness + the lower bound.
    let (low_min, low_max) =
        bellman_residuals(mdp, &expected_at(artifact.beta_low), &artifact.bias, tau);
    let span = low_max - low_min;
    record(
        Obligation::BiasResidualSpan,
        span <= tolerances.bound,
        format!("span {:.3e} vs tolerance {:.3e}", span, tolerances.bound),
    );
    record(
        Obligation::LowerBound,
        low_min >= -tolerances.bound,
        format!(
            "min Δ(β_low) = {:.3e} vs -{:.3e}",
            low_min, tolerances.bound
        ),
    );

    // Pass B, at β_up: the upper bound.
    let (_, up_max) = bellman_residuals(mdp, &expected_at(artifact.beta_up), &artifact.bias, tau);
    record(
        Obligation::UpperBound,
        up_max <= tolerances.bound,
        format!("max Δ(β_up) = {:.3e} vs {:.3e}", up_max, tolerances.bound),
    );

    // Pass C, restricted to the exported strategy at β = ρ. For an honest
    // certificate the witness is converged *for this chain* at β ≈ ρ, so
    // every restricted residual is near zero; the sandwich then pins the
    // chain's gain at ρ to `[min Δ, max Δ] ⊆ [−tol, tol]`, i.e. the claimed
    // revenue is the strategy's actual revenue. Requiring only that the
    // residuals straddle zero would be weaker: a foreign strategy's wide
    // residual interval straddles zero without certifying anything.
    let (chain_min, chain_max) = chain_residuals(
        mdp,
        &expected_at(artifact.strategy_revenue),
        &artifact.bias,
        tau,
        &artifact.strategy,
    );
    record(
        Obligation::RevenueConsistent,
        chain_min >= -tolerances.chain && chain_max <= tolerances.chain,
        format!(
            "restricted Δ(ρ) ∈ [{:.3e}, {:.3e}] vs ±{:.3e}",
            chain_min, chain_max, tolerances.chain
        ),
    );

    AuditReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerances_scale_with_epsilon_and_rewards() {
        let config = AuditConfig::default();
        let t1 = derive_tolerances(1e-3, 2.0, &config);
        let t2 = derive_tolerances(1e-2, 2.0, &config);
        assert!(t2.bound > t1.bound);
        assert!(t1.chain > t1.bound);
        let scaled = derive_tolerances(
            1e-3,
            2.0,
            &AuditConfig {
                tolerance_scale: 2.0,
                ..AuditConfig::default()
            },
        );
        assert!((scaled.bound - 2.0 * t1.bound).abs() < 1e-15);
    }
}
