//! Model fingerprinting: a 64-bit FNV-1a digest over everything the
//! certificate audit's arithmetic reads — the CSR layout, the probability
//! buffer, both reward buffers and the initial state. Two models with the
//! same fingerprint present bit-identical inputs to the Bellman-residual
//! passes, so a certificate carries the fingerprint of the arena it was
//! solved on and the auditor refuses to check it against any other arena.

use sm_mdp::{Mdp, TransitionRewards};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher. FNV is not collision-resistant against an
/// adversary crafting arenas; the fingerprint defends against *mix-ups*
/// (auditing a certificate against the wrong instantiation, a stale arena,
/// or silently changed rewards), not against malice — the audit's residual
/// passes are what cannot be fooled.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Fnv1a {
    /// Creates a hasher seeded with the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a `u32` slice, each element little-endian.
    pub fn write_u32_slice(&mut self, values: &[u32]) {
        for &value in values {
            self.write_bytes(&value.to_le_bytes());
        }
    }

    /// Absorbs an `f64` slice, each element as its IEEE-754 bit pattern
    /// little-endian (`-0.0` and `0.0` hash differently — bit identity is
    /// the contract).
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        for &value in values {
            self.write_bytes(&value.to_bits().to_le_bytes());
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprints an arena together with its adversarial and honest reward
/// buffers: section lengths first (so no concatenation of two sections can
/// collide with a different split), then the three layout arrays, the
/// probability buffer, both reward buffers and the initial state.
pub fn model_fingerprint(
    mdp: &Mdp,
    adversary: &TransitionRewards,
    honest: &TransitionRewards,
) -> u64 {
    let csr = mdp.csr();
    let layout = csr.layout();
    let mut hash = Fnv1a::new();
    hash.write_u64(mdp.num_states() as u64);
    hash.write_u64(layout.num_pairs() as u64);
    hash.write_u64(layout.num_transitions() as u64);
    hash.write_u64(mdp.initial_state() as u64);
    hash.write_u32_slice(layout.row_ptr());
    hash.write_u32_slice(layout.action_ptr());
    hash.write_u32_slice(layout.col());
    hash.write_f64_slice(csr.probabilities());
    hash.write_f64_slice(adversary.values());
    hash.write_f64_slice(honest.values());
    hash.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        let digest = |s: &str| {
            let mut h = Fnv1a::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn float_hashing_is_bit_sensitive() {
        let mut a = Fnv1a::new();
        a.write_f64_slice(&[0.0]);
        let mut b = Fnv1a::new();
        b.write_f64_slice(&[-0.0]);
        assert_ne!(a.finish(), b.finish());
    }
}
