//! Minimal JSON reading and writing for certificate artifacts.
//!
//! The build environment has no crates.io access, so no serde; this module
//! is a small recursive-descent parser (the same shape as the report parser
//! in `sm-bench`, re-implemented here so the audit layer has no dependency
//! on the benchmarking infrastructure it is meant to check) plus a writer
//! whose `f64` formatting uses Rust's shortest round-trip-exact
//! representation — an artifact survives a write/read cycle bit for bit.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`. The writer also emits `null` for non-finite numbers (JSON has
    /// no NaN/∞); the artifact decoder maps it back to NaN so a corrupt bias
    /// entry round-trips into something the shape obligation rejects instead
    /// of failing the parse.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order (no hashing — deterministic).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number; `null` decodes as NaN (see [`JsonValue::Null`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one and is exact.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x < 9.0e15 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }
}

/// Writes a value as compact JSON. Finite numbers use the `{:?}` shortest
/// round-trip representation; non-finite numbers become `null`.
pub fn write_json(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        JsonValue::String(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        JsonValue::Array(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(entries) => {
            out.push('{');
            for (index, (key, item)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_json(&JsonValue::String(key.clone()), out);
                out.push(':');
                write_json(item, out);
            }
            out.push('}');
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(text.as_bytes()))
        {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "malformed \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "malformed \\u escape".to_string())?;
                            // Artifact strings are ASCII; surrogate pairs are
                            // not needed and decode to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err("unterminated string".to_string()),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .map_err(|_| "malformed number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &JsonValue) -> JsonValue {
        let mut out = String::new();
        write_json(value, &mut out);
        parse_json(&out).unwrap()
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            0.1,
            1e-3,
            0.3376584,
            f64::MIN_POSITIVE,
            1e300,
        ] {
            let back = roundtrip(&JsonValue::Number(x));
            match back {
                JsonValue::Number(y) => assert_eq!(x.to_bits(), y.to_bits(), "{x}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_numbers_become_null_and_parse_back_as_nan() {
        let back = roundtrip(&JsonValue::Number(f64::NAN));
        assert_eq!(back, JsonValue::Null);
        assert!(back.as_f64().is_some_and(f64::is_nan));
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = JsonValue::Object(vec![
            (
                "name".to_string(),
                JsonValue::String("a\"b\\c\n".to_string()),
            ),
            (
                "xs".to_string(),
                JsonValue::Array(vec![
                    JsonValue::Number(1.5),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                ]),
            ),
        ]);
        assert_eq!(roundtrip(&value), value);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }
}
