//! Typed audit verdicts: the certificate audit checks a fixed list of
//! obligations and reports pass/fail (with a human-readable detail) for
//! every one of them — a failed audit names exactly which obligation broke,
//! which is what the mutation tests pin.

use std::fmt;

/// One obligation of the certificate audit. The order is the order the
/// auditor checks (shape obligations first; the three residual passes only
/// run when the shapes they read are sound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Obligation {
    /// The arena presented for checking is bit-identical (layout,
    /// probabilities, rewards, initial state) to the arena the certificate
    /// was produced on, and the artifact's parameters match the model's.
    Fingerprint,
    /// The exported strategy chooses exactly one in-range action for every
    /// state of the arena.
    StrategyTotality,
    /// The bias witness has one finite entry per state.
    BiasShape,
    /// `0 ≤ β_low ≤ β_up ≤ 1` and the bracket is no wider than `ε`.
    BetaInterval,
    /// The claimed strategy revenue lies inside `[β_low, β_up]`.
    RevenueInBracket,
    /// The Bellman residuals of the bias at `β_low` have span ≤ tolerance —
    /// the witness really is an `ε`-converged bias for this arena, not an
    /// arbitrary vector.
    BiasResidualSpan,
    /// At `β_low`, `min_s Δ(s) ≥ −tol`: by the residual sandwich
    /// `min Δ ≤ g*(β_low)` (valid for *any* bias), the optimal gain at
    /// `β_low` is non-negative up to tolerance, i.e. `ERRev* ≥ β_low`.
    LowerBound,
    /// At `β_up`, `max_s Δ(s) ≤ tol`: by `g*(β_up) ≤ max Δ`, the optimal
    /// gain at `β_up` is non-positive up to tolerance, i.e. `ERRev* ≤ β_up`.
    UpperBound,
    /// Under the exported strategy at `β = strategy_revenue`, every
    /// policy-restricted residual is within tolerance of zero: the sandwich
    /// then pins the chain's gain at `ρ` to `≈ 0`, so the claimed revenue is
    /// the strategy's actual expected relative revenue (up to tolerance).
    RevenueConsistent,
}

impl Obligation {
    /// Every obligation, in checking order.
    pub const ALL: [Obligation; 9] = [
        Obligation::Fingerprint,
        Obligation::StrategyTotality,
        Obligation::BiasShape,
        Obligation::BetaInterval,
        Obligation::RevenueInBracket,
        Obligation::BiasResidualSpan,
        Obligation::LowerBound,
        Obligation::UpperBound,
        Obligation::RevenueConsistent,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Obligation::Fingerprint => "fingerprint",
            Obligation::StrategyTotality => "strategy-totality",
            Obligation::BiasShape => "bias-shape",
            Obligation::BetaInterval => "beta-interval",
            Obligation::RevenueInBracket => "revenue-in-bracket",
            Obligation::BiasResidualSpan => "bias-residual-span",
            Obligation::LowerBound => "lower-bound",
            Obligation::UpperBound => "upper-bound",
            Obligation::RevenueConsistent => "revenue-consistent",
        }
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Verdict for one obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObligationOutcome {
    /// The obligation checked.
    pub obligation: Obligation,
    /// Whether it holds.
    pub passed: bool,
    /// Human-readable detail: the checked quantity and its tolerance on
    /// pass, the violation on fail. Residual obligations that could not run
    /// because a shape obligation failed report `skipped: …` and count as
    /// failed — an unverifiable certificate is not a verified one.
    pub detail: String,
}

/// The typed result of one certificate audit: one verdict per
/// [`Obligation`], in checking order.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Per-obligation verdicts.
    pub outcomes: Vec<ObligationOutcome>,
}

impl AuditReport {
    /// Whether every obligation passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|outcome| outcome.passed)
    }

    /// The obligations that failed, in checking order.
    pub fn failures(&self) -> Vec<Obligation> {
        self.outcomes
            .iter()
            .filter(|outcome| !outcome.passed)
            .map(|outcome| outcome.obligation)
            .collect()
    }

    /// The verdict for one obligation, if it was checked.
    pub fn outcome(&self, obligation: Obligation) -> Option<&ObligationOutcome> {
        self.outcomes
            .iter()
            .find(|outcome| outcome.obligation == obligation)
    }

    /// Whether a specific obligation failed.
    pub fn failed(&self, obligation: Obligation) -> bool {
        self.outcome(obligation).is_some_and(|o| !o.passed)
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for outcome in &self.outcomes {
            writeln!(
                f,
                "  [{}] {:<20} {}",
                if outcome.passed { "pass" } else { "FAIL" },
                outcome.obligation.name(),
                outcome.detail
            )?;
        }
        write!(f, "  => {}", if self.passed() { "PASS" } else { "FAIL" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_and_names_failures() {
        let report = AuditReport {
            outcomes: vec![
                ObligationOutcome {
                    obligation: Obligation::Fingerprint,
                    passed: true,
                    detail: "matches".to_string(),
                },
                ObligationOutcome {
                    obligation: Obligation::LowerBound,
                    passed: false,
                    detail: "min residual -0.1".to_string(),
                },
            ],
        };
        assert!(!report.passed());
        assert_eq!(report.failures(), vec![Obligation::LowerBound]);
        assert!(report.failed(Obligation::LowerBound));
        assert!(!report.failed(Obligation::Fingerprint));
        let rendered = report.to_string();
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("lower-bound"));
    }

    #[test]
    fn obligation_names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            Obligation::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), Obligation::ALL.len());
    }
}
