//! Whole-arena invariant analysis: statically proves a `CsrMdp`, its reward
//! buffers, a `ParametricModel`'s term tables, or a scenario restriction
//! well-formed — without solving anything. Each function returns the list of
//! violations it found (empty = pass), each naming the exact location.

use selfish_mining::{ParametricModel, SelfishMiningModel, SmState};
use sm_mdp::{Mdp, TransitionRewards, PROBABILITY_TOLERANCE};
use std::collections::{HashMap, HashSet};

/// Checks the CSR arena invariants of one instantiated MDP:
///
/// * `row_ptr` starts at 0, is strictly increasing (every state has at
///   least one action) and ends at `num_pairs`;
/// * `action_ptr` starts at 0, is strictly increasing (every pair has at
///   least one transition) and ends at `num_transitions`;
/// * successor columns are in-bounds and strictly increasing within each
///   pair (sorted, duplicates merged — the convention the induced-chain
///   extraction relies on);
/// * probabilities are finite, non-negative, at most 1, and each pair's
///   mass is within [`PROBABILITY_TOLERANCE`] of 1. Zero-probability
///   entries are legal (parametric arenas keep masked branches
///   structurally);
/// * the initial state is in range.
pub fn audit_mdp(mdp: &Mdp) -> Vec<String> {
    let mut violations = Vec::new();
    let csr = mdp.csr();
    let layout = csr.layout();
    let row_ptr = layout.row_ptr();
    let action_ptr = layout.action_ptr();
    let col = layout.col();
    let prob = csr.probabilities();
    let n = mdp.num_states();
    let num_pairs = layout.num_pairs();
    let num_transitions = layout.num_transitions();

    if mdp.initial_state() >= n {
        violations.push(format!(
            "initial state {} out of range ({} states)",
            mdp.initial_state(),
            n
        ));
    }
    if row_ptr.len() != n + 1 {
        violations.push(format!(
            "row_ptr has {} entries for {} states",
            row_ptr.len(),
            n
        ));
        return violations;
    }
    if action_ptr.len() != num_pairs + 1 {
        violations.push(format!(
            "action_ptr has {} entries for {} pairs",
            action_ptr.len(),
            num_pairs
        ));
        return violations;
    }
    if col.len() != num_transitions || prob.len() != num_transitions {
        violations.push(format!(
            "col/prob have {}/{} entries for {} transitions",
            col.len(),
            prob.len(),
            num_transitions
        ));
        return violations;
    }
    if row_ptr.first() != Some(&0) || row_ptr.last().map(|&e| e as usize) != Some(num_pairs) {
        violations.push("row_ptr does not span [0, num_pairs]".to_string());
    }
    if action_ptr.first() != Some(&0)
        || action_ptr.last().map(|&e| e as usize) != Some(num_transitions)
    {
        violations.push("action_ptr does not span [0, num_transitions]".to_string());
    }
    for (s, window) in row_ptr.windows(2).enumerate() {
        if window[1] <= window[0] {
            violations.push(format!(
                "row_ptr not strictly increasing at state {s} ({} -> {}): deadlock or corruption",
                window[0], window[1]
            ));
        }
    }
    for (pair, window) in action_ptr.windows(2).enumerate() {
        if window[1] <= window[0] {
            violations.push(format!(
                "action_ptr not strictly increasing at pair {pair} ({} -> {})",
                window[0], window[1]
            ));
        }
    }
    if !violations.is_empty() {
        // Monotonicity is broken; the per-pair walks below would misindex.
        return violations;
    }
    for pair in 0..num_pairs {
        let range = layout.transition_range(pair);
        let cols = &col[range.clone()];
        let probs = &prob[range];
        let mut mass = 0.0;
        for (offset, (&target, &weight)) in cols.iter().zip(probs).enumerate() {
            if (target as usize) >= n {
                violations.push(format!(
                    "pair {pair} transition {offset}: successor {target} out of range"
                ));
            }
            if offset > 0 && cols[offset - 1] >= target {
                violations.push(format!(
                    "pair {pair}: successors not strictly increasing at offset {offset}"
                ));
            }
            if !weight.is_finite() || !(0.0..=1.0 + PROBABILITY_TOLERANCE).contains(&weight) {
                violations.push(format!(
                    "pair {pair} transition {offset}: invalid probability {weight}"
                ));
            }
            mass += weight;
        }
        if (mass - 1.0).abs() > PROBABILITY_TOLERANCE {
            violations.push(format!("pair {pair}: probability mass {mass}"));
        }
    }
    violations
}

/// Checks one reward buffer against an arena: the shape matches the layout
/// and every entry is finite and non-negative (block counts scaled by
/// probabilities can never be negative in this model). `label` prefixes the
/// violations (`"adversary"` / `"honest"`).
pub fn audit_rewards(mdp: &Mdp, rewards: &TransitionRewards, label: &str) -> Vec<String> {
    let mut violations = Vec::new();
    if !rewards.matches(mdp) {
        violations.push(format!("{label}: reward layout does not match the arena"));
        return violations;
    }
    let values = rewards.values();
    if values.len() != mdp.num_transitions() {
        violations.push(format!(
            "{label}: {} reward entries for {} transitions",
            values.len(),
            mdp.num_transitions()
        ));
        return violations;
    }
    for (index, &value) in values.iter().enumerate() {
        if !value.is_finite() || value < 0.0 {
            violations.push(format!(
                "{label}: invalid reward {value} at transition {index}"
            ));
        }
    }
    violations
}

/// Checks a full instantiated selfish-mining model: the arena invariants
/// ([`audit_mdp`]), both reward buffers ([`audit_rewards`]) and the
/// state/action table consistency (one state record and one action list of
/// the right length per arena row).
pub fn audit_model(model: &SelfishMiningModel) -> Vec<String> {
    let mdp = model.mdp();
    let mut violations = audit_mdp(mdp);
    violations.extend(audit_rewards(mdp, model.adversary_rewards(), "adversary"));
    violations.extend(audit_rewards(mdp, model.honest_rewards(), "honest"));
    if model.num_states() != mdp.num_states() {
        violations.push(format!(
            "state table has {} entries for {} arena rows",
            model.num_states(),
            mdp.num_states()
        ));
    } else {
        for s in 0..model.num_states() {
            if model.actions_of(s).len() != mdp.num_actions(s) {
                violations.push(format!(
                    "state {s}: {} action records for {} arena actions",
                    model.actions_of(s).len(),
                    mdp.num_actions(s)
                ));
            }
        }
    }
    violations
}

/// Checks a parametric family's symbolic term tables: offset arrays are
/// monotone and span their id buffers, every probability-atom id points
/// into the term pool, every outcome-atom id points into the outcome pool
/// (whose `term` ids point into the term pool), and both pools are
/// duplicate-free — an interning bug would silently double memory and, for
/// outcome atoms, skew the expected-reward sums.
pub fn audit_parametric(family: &ParametricModel) -> Vec<String> {
    let mut violations = Vec::new();
    let term_pool = family.term_pool();
    let atom_pool = family.atom_pool();

    let check_offsets =
        |name: &str, ptr: &[u32], rows: usize, ids: usize, out: &mut Vec<String>| {
            if ptr.len() != rows + 1 {
                out.push(format!("{name} has {} entries for {rows} rows", ptr.len()));
                return;
            }
            if ptr.first() != Some(&0) || ptr.last().map(|&e| e as usize) != Some(ids) {
                out.push(format!("{name} does not span [0, {ids}]"));
            }
            for (row, window) in ptr.windows(2).enumerate() {
                if window[1] < window[0] {
                    out.push(format!("{name} decreases at row {row}"));
                }
            }
        };
    check_offsets(
        "prob_atom_ptr",
        family.prob_atom_ptr(),
        family.num_transitions(),
        family.prob_atoms().len(),
        &mut violations,
    );
    check_offsets(
        "reward_ptr",
        family.reward_ptr(),
        family.num_pairs(),
        family.reward_atoms().len(),
        &mut violations,
    );
    for (index, &id) in family.prob_atoms().iter().enumerate() {
        if (id as usize) >= term_pool.len() {
            violations.push(format!("prob atom {index}: term id {id} out of pool"));
        }
    }
    for (index, &id) in family.reward_atoms().iter().enumerate() {
        if (id as usize) >= atom_pool.len() {
            violations.push(format!("reward atom {index}: outcome id {id} out of pool"));
        }
    }
    for (id, atom) in atom_pool.iter().enumerate() {
        if (atom.term as usize) >= term_pool.len() {
            violations.push(format!("outcome {id}: term id {} out of pool", atom.term));
        }
    }
    let mut seen_terms = HashSet::new();
    for (id, term) in term_pool.iter().enumerate() {
        if !seen_terms.insert(*term) {
            violations.push(format!("term pool entry {id} duplicates an earlier term"));
        }
    }
    let mut seen_atoms = HashSet::new();
    for (id, atom) in atom_pool.iter().enumerate() {
        if !seen_atoms.insert(*atom) {
            violations.push(format!(
                "outcome pool entry {id} duplicates an earlier outcome"
            ));
        }
    }
    violations
}

/// Proves a scenario model an *action subset* of the optimal model at the
/// same `(p, γ)`: every scenario state exists in the optimal model, every
/// scenario action exists (by name) at the corresponding optimal state, and
/// the successor distributions agree entry by entry (successors compared
/// through the state correspondence, probabilities to within `1e-12` —
/// instantiation evaluates the same interned terms, so they are expected to
/// be bit-identical). This is the restriction-dominance precondition
/// (`ERRev*_scenario ≤ ERRev*`), checked exhaustively rather than sampled.
pub fn audit_scenario_restriction(
    optimal: &SelfishMiningModel,
    scenario: &SelfishMiningModel,
) -> Vec<String> {
    let mut violations = Vec::new();
    if !scenario.scenario().is_action_restriction() {
        violations.push(format!(
            "scenario {} is not an action restriction of the optimal model",
            scenario.scenario().label()
        ));
        return violations;
    }
    let op = optimal.params();
    let sp = scenario.params();
    if op.p.to_bits() != sp.p.to_bits()
        || op.gamma.to_bits() != sp.gamma.to_bits()
        || op.depth != sp.depth
        || op.forks_per_block != sp.forks_per_block
        || op.max_fork_length != sp.max_fork_length
    {
        violations.push("optimal and scenario models disagree on parameters".to_string());
        return violations;
    }
    // Index the optimal states once; lookups only (no map iteration).
    let mut index_of: HashMap<&SmState, usize> = HashMap::with_capacity(optimal.num_states());
    for s in 0..optimal.num_states() {
        index_of.insert(optimal.state(s), s);
    }
    for s in 0..scenario.num_states() {
        let Some(&o) = index_of.get(scenario.state(s)) else {
            violations.push(format!(
                "scenario state {s} does not exist in the optimal model"
            ));
            continue;
        };
        for a in 0..scenario.mdp().num_actions(s) {
            let name = scenario.mdp().action_name(s, a);
            let Some(oa) = optimal.mdp().find_action(o, name) else {
                violations.push(format!(
                    "scenario state {s}: action {name:?} missing from optimal state {o}"
                ));
                continue;
            };
            let (s_cols, s_probs) = scenario.mdp().successors(s, a);
            let (o_cols, o_probs) = optimal.mdp().successors(o, oa);
            if s_cols.len() != o_cols.len() {
                violations.push(format!(
                    "scenario state {s} action {name:?}: {} successors vs {} in the optimal model",
                    s_cols.len(),
                    o_cols.len()
                ));
                continue;
            }
            // Columns are sorted by each arena's *own* state numbering, so
            // the correspondence can permute them; compare the mapped
            // distribution as a sorted set.
            let mut mapped: Vec<(Option<usize>, f64)> = s_cols
                .iter()
                .zip(s_probs)
                .map(|(&target, &weight)| {
                    let index = index_of.get(scenario.state(target as usize)).copied();
                    (index, weight)
                })
                .collect();
            mapped.sort_by_key(|&(index, _)| index);
            for (k, ((mapped_target, weight), (&o_target, &o_weight))) in
                mapped.iter().zip(o_cols.iter().zip(o_probs)).enumerate()
            {
                if *mapped_target != Some(o_target as usize) {
                    violations.push(format!(
                        "scenario state {s} action {name:?} successor {k}: maps to {mapped_target:?}, optimal has {o_target}"
                    ));
                } else if (weight - o_weight).abs() > 1e-12 {
                    violations.push(format!(
                        "scenario state {s} action {name:?} successor {k}: probability {weight} vs {o_weight}"
                    ));
                }
            }
        }
    }
    violations
}
