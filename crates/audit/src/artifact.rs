//! The serializable certificate artifact: everything an independent checker
//! needs to re-validate one certified solve — the identity of the arena it
//! was produced on (a fingerprint, plus the `(d, f, l, p, γ, scenario)`
//! coordinates to rebuild it), the certified `[β_low, β_up]` bracket, the
//! exported strategy, its claimed revenue and the final bias witness.
//!
//! Emission happens next to the solver ([`CertificateArtifact::from_certified`]
//! consumes a [`CertifiedSolve`]); checking ([`crate::audit_certificate`])
//! touches none of the solver machinery.

use crate::fingerprint::model_fingerprint;
use crate::json::{parse_json, write_json, JsonValue};
use selfish_mining::experiments::CertifiedSolve;
use selfish_mining::SelfishMiningModel;

/// Schema tag of the JSON encoding.
pub const ARTIFACT_SCHEMA: &str = "sm-audit/v1";

/// A serializable certificate of one `(p, γ)` solve. See the module docs;
/// field-by-field this is [`CertifiedSolve`] plus the model coordinates and
/// the arena fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct CertificateArtifact {
    /// Stable label of the attack scenario (`"optimal"`,
    /// `"trail-stubborn(0)"`, …).
    pub scenario: String,
    /// Structural parameter `d` of the topology.
    pub depth: usize,
    /// Structural parameter `f` of the topology.
    pub forks_per_block: usize,
    /// Structural parameter `l` (maximal private fork length).
    pub max_fork_length: usize,
    /// Adversarial resource share of the point.
    pub p: f64,
    /// Switching probability of the point.
    pub gamma: f64,
    /// Precision the bracket was certified at.
    pub epsilon: f64,
    /// FNV-1a digest of the arena the certificate was produced on (layout,
    /// probabilities, both reward buffers, initial state) — see
    /// [`model_fingerprint`].
    pub fingerprint: u64,
    /// Certified lower end of the revenue bracket.
    pub beta_low: f64,
    /// Certified upper end of the revenue bracket.
    pub beta_up: f64,
    /// Claimed exact expected relative revenue of the exported strategy.
    pub strategy_revenue: f64,
    /// The exported strategy: chosen action index per state.
    pub strategy: Vec<u32>,
    /// Final bias vector of the certifying solve, one entry per state.
    pub bias: Vec<f64>,
}

impl CertificateArtifact {
    /// Packages a certified solve into an artifact, fingerprinting the
    /// arena it was produced on.
    ///
    /// # Errors
    ///
    /// Returns a description if `solve` and `model` disagree on their
    /// parameters (the artifact would fingerprint an arena the bracket does
    /// not belong to) or if a strategy choice does not fit `u32`.
    pub fn from_certified(
        solve: &CertifiedSolve,
        model: &SelfishMiningModel,
    ) -> Result<CertificateArtifact, String> {
        let params = model.params();
        if solve.p.to_bits() != params.p.to_bits()
            || solve.gamma.to_bits() != params.gamma.to_bits()
        {
            return Err(format!(
                "solve is for (p, gamma) = ({}, {}) but the model was instantiated at ({}, {})",
                solve.p, solve.gamma, params.p, params.gamma
            ));
        }
        if solve.scenario != model.scenario() {
            return Err(format!(
                "solve is for scenario {} but the model is {}",
                solve.scenario.label(),
                model.scenario().label()
            ));
        }
        let strategy = solve
            .strategy
            .choices()
            .iter()
            .map(|&choice| {
                u32::try_from(choice).map_err(|_| format!("action index {choice} exceeds u32"))
            })
            .collect::<Result<Vec<u32>, String>>()?;
        Ok(CertificateArtifact {
            scenario: solve.scenario.label(),
            depth: params.depth,
            forks_per_block: params.forks_per_block,
            max_fork_length: params.max_fork_length,
            p: solve.p,
            gamma: solve.gamma,
            epsilon: solve.epsilon,
            fingerprint: model_fingerprint(
                model.mdp(),
                model.adversary_rewards(),
                model.honest_rewards(),
            ),
            beta_low: solve.beta_low,
            beta_up: solve.beta_up,
            strategy_revenue: solve.strategy_revenue,
            strategy,
            bias: solve.bias.clone(),
        })
    }

    /// Serializes the artifact as one JSON document. Floats round-trip bit
    /// for bit (shortest round-trip-exact decimal); the fingerprint is a
    /// 16-digit hex string because JSON numbers cannot carry 64 bits.
    pub fn to_json(&self) -> String {
        let num = JsonValue::Number;
        let root = JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::String(ARTIFACT_SCHEMA.to_string()),
            ),
            (
                "scenario".to_string(),
                JsonValue::String(self.scenario.clone()),
            ),
            ("depth".to_string(), num(self.depth as f64)),
            (
                "forks_per_block".to_string(),
                num(self.forks_per_block as f64),
            ),
            (
                "max_fork_length".to_string(),
                num(self.max_fork_length as f64),
            ),
            ("p".to_string(), num(self.p)),
            ("gamma".to_string(), num(self.gamma)),
            ("epsilon".to_string(), num(self.epsilon)),
            (
                "fingerprint".to_string(),
                JsonValue::String(format!("{:016x}", self.fingerprint)),
            ),
            ("beta_low".to_string(), num(self.beta_low)),
            ("beta_up".to_string(), num(self.beta_up)),
            ("strategy_revenue".to_string(), num(self.strategy_revenue)),
            (
                "strategy".to_string(),
                JsonValue::Array(self.strategy.iter().map(|&a| num(f64::from(a))).collect()),
            ),
            (
                "bias".to_string(),
                JsonValue::Array(self.bias.iter().map(|&h| num(h)).collect()),
            ),
        ]);
        let mut out = String::new();
        write_json(&root, &mut out);
        out.push('\n');
        out
    }

    /// Parses an artifact from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema violation. A
    /// *parseable* artifact with corrupt contents (non-finite bias entries,
    /// inverted brackets, …) parses fine — rejecting it is the auditor's
    /// job, with a named obligation.
    pub fn from_json(input: &str) -> Result<CertificateArtifact, String> {
        let root = parse_json(input)?;
        let schema = root
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("artifact is missing the \"schema\" field")?;
        if schema != ARTIFACT_SCHEMA {
            return Err(format!(
                "unsupported artifact schema {schema:?} (expected {ARTIFACT_SCHEMA:?})"
            ));
        }
        let string_field = |key: &str| {
            root.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("artifact is missing string {key:?}"))
        };
        let usize_field = |key: &str| {
            root.get(key)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("artifact is missing integer {key:?}"))
        };
        let f64_field = |key: &str| {
            root.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("artifact is missing number {key:?}"))
        };
        let fingerprint_hex = string_field("fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16)
            .map_err(|_| format!("malformed fingerprint {fingerprint_hex:?}"))?;
        let strategy = match root.get("strategy") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(index, item)| {
                    item.as_usize()
                        .and_then(|a| u32::try_from(a).ok())
                        .ok_or_else(|| format!("strategy entry #{index} is not a u32"))
                })
                .collect::<Result<Vec<u32>, String>>()?,
            _ => return Err("artifact is missing the \"strategy\" array".to_string()),
        };
        let bias = match root.get("bias") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(index, item)| {
                    item.as_f64()
                        .ok_or_else(|| format!("bias entry #{index} is not a number"))
                })
                .collect::<Result<Vec<f64>, String>>()?,
            _ => return Err("artifact is missing the \"bias\" array".to_string()),
        };
        Ok(CertificateArtifact {
            scenario: string_field("scenario")?,
            depth: usize_field("depth")?,
            forks_per_block: usize_field("forks_per_block")?,
            max_fork_length: usize_field("max_fork_length")?,
            p: f64_field("p")?,
            gamma: f64_field("gamma")?,
            epsilon: f64_field("epsilon")?,
            fingerprint,
            beta_low: f64_field("beta_low")?,
            beta_up: f64_field("beta_up")?,
            strategy_revenue: f64_field("strategy_revenue")?,
            strategy,
            bias,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CertificateArtifact {
        CertificateArtifact {
            scenario: "optimal".to_string(),
            depth: 2,
            forks_per_block: 1,
            max_fork_length: 4,
            p: 0.3,
            gamma: 0.5,
            epsilon: 1e-3,
            fingerprint: 0xdead_beef_cafe_f00d,
            beta_low: 0.3376,
            beta_up: 0.3386,
            strategy_revenue: 0.3376,
            strategy: vec![0, 2, 1],
            bias: vec![0.0, -0.25, 1.5e-7],
        }
    }

    #[test]
    fn artifacts_round_trip_bit_for_bit() {
        let artifact = sample();
        let back = CertificateArtifact::from_json(&artifact.to_json()).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.p.to_bits(), artifact.p.to_bits());
        assert_eq!(back.bias[2].to_bits(), artifact.bias[2].to_bits());
    }

    #[test]
    fn non_finite_bias_entries_survive_the_round_trip_as_nan() {
        let mut artifact = sample();
        artifact.bias[1] = f64::INFINITY;
        let back = CertificateArtifact::from_json(&artifact.to_json()).unwrap();
        // ∞ has no JSON encoding; it degrades to NaN, which the BiasShape
        // obligation rejects — the corruption stays visible.
        assert!(back.bias[1].is_nan());
    }

    #[test]
    fn schema_and_field_violations_are_rejected() {
        assert!(CertificateArtifact::from_json("{}").is_err());
        assert!(CertificateArtifact::from_json(
            "{\"schema\": \"sm-audit/v0\", \"scenario\": \"optimal\"}"
        )
        .is_err());
        let mut json = sample().to_json();
        json = json.replace("\"bias\"", "\"bogus\"");
        assert!(CertificateArtifact::from_json(&json).is_err());
    }
}
