//! Mutation tests of the certificate audit: every corruption class the
//! artifact format admits must be rejected with the matching obligation
//! named, and untouched artifacts from the reduced conformance grid must
//! pass — including after a JSON round trip.

use selfish_mining::experiments::{attack_curve_certified, CertifiedSolve};
use selfish_mining::{ParametricModel, SelfishMiningModel};
use sm_audit::{
    audit_certificate, audit_model, audit_parametric, audit_scenario_restriction, AuditConfig,
    CertificateArtifact, Obligation,
};

const EPSILON: f64 = 1e-3;

fn family() -> ParametricModel {
    ParametricModel::build(2, 1, 4).expect("d2f1 family builds")
}

fn certified(family: &ParametricModel, gamma: f64, ps: &[f64]) -> Vec<CertifiedSolve> {
    attack_curve_certified(family, gamma, ps, EPSILON, true).expect("certified curve solves")
}

fn artifact_for(
    family: &ParametricModel,
    solve: &CertifiedSolve,
) -> (CertificateArtifact, SelfishMiningModel) {
    let model = family
        .instantiate(solve.p, solve.gamma)
        .expect("instantiation succeeds");
    let artifact = CertificateArtifact::from_certified(solve, &model).expect("artifact packages");
    (artifact, model)
}

/// One (p, γ) point with its artifact and freshly instantiated arena — the
/// baseline every mutation perturbs.
fn baseline() -> (CertificateArtifact, SelfishMiningModel) {
    let family = family();
    let solves = certified(&family, 0.5, &[0.3]);
    artifact_for(&family, &solves[0])
}

#[test]
fn clean_artifacts_pass_on_the_reduced_grid() {
    let family = family();
    for &gamma in &[0.0, 0.5, 1.0] {
        for solve in certified(&family, gamma, &[0.1, 0.2, 0.3]) {
            let (artifact, model) = artifact_for(&family, &solve);
            let report = audit_certificate(&artifact, &model, &AuditConfig::default());
            assert!(
                report.passed(),
                "clean certificate (p={}, gamma={gamma}) rejected:\n{report}",
                solve.p
            );
        }
    }
}

#[test]
fn clean_artifacts_survive_a_json_round_trip() {
    let (artifact, model) = baseline();
    let reparsed = CertificateArtifact::from_json(&artifact.to_json()).expect("round trip parses");
    assert_eq!(reparsed, artifact);
    let report = audit_certificate(&reparsed, &model, &AuditConfig::default());
    assert!(
        report.passed(),
        "round-tripped certificate rejected:\n{report}"
    );
}

#[test]
fn flipped_fingerprint_fails_fingerprint_and_skips_residuals() {
    let (mut artifact, model) = baseline();
    artifact.fingerprint ^= 1;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::Fingerprint), "{report}");
    let skipped = report
        .outcome(Obligation::LowerBound)
        .expect("lower bound recorded");
    assert!(
        !skipped.passed && skipped.detail.contains("skipped"),
        "{report}"
    );
}

#[test]
fn wrong_arena_point_fails_fingerprint() {
    let family = family();
    let solves = certified(&family, 0.5, &[0.3]);
    let (artifact, _) = artifact_for(&family, &solves[0]);
    let other = family
        .instantiate(0.2, 0.5)
        .expect("instantiation succeeds");
    let report = audit_certificate(&artifact, &other, &AuditConfig::default());
    assert!(report.failed(Obligation::Fingerprint), "{report}");
}

#[test]
fn out_of_range_strategy_choice_fails_totality() {
    let (mut artifact, model) = baseline();
    artifact.strategy[0] = 99;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::StrategyTotality), "{report}");
}

#[test]
fn truncated_bias_fails_bias_shape() {
    let (mut artifact, model) = baseline();
    artifact.bias.pop();
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::BiasShape), "{report}");
}

#[test]
fn non_finite_bias_fails_bias_shape() {
    let (mut artifact, model) = baseline();
    artifact.bias[3] = f64::NAN;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::BiasShape), "{report}");
}

#[test]
fn widened_interval_fails_beta_interval() {
    let (mut artifact, model) = baseline();
    artifact.beta_low -= 0.05;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::BetaInterval), "{report}");
}

#[test]
fn revenue_outside_bracket_fails_revenue_in_bracket() {
    let (mut artifact, model) = baseline();
    artifact.strategy_revenue = artifact.beta_up + 2.0 * EPSILON;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::RevenueInBracket), "{report}");
}

#[test]
fn bracket_shifted_up_fails_lower_bound() {
    let (mut artifact, model) = baseline();
    // Claim 0.1 more revenue than certified, keeping the bracket narrow and
    // internally consistent — only the residual passes can catch this.
    artifact.beta_low += 0.1;
    artifact.beta_up += 0.1;
    artifact.strategy_revenue += 0.1;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::LowerBound), "{report}");
}

#[test]
fn bracket_shifted_down_fails_upper_bound() {
    let (mut artifact, model) = baseline();
    artifact.beta_low -= 0.1;
    artifact.beta_up -= 0.1;
    artifact.strategy_revenue -= 0.1;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::UpperBound), "{report}");
}

#[test]
fn arbitrary_bias_vector_fails_residual_span() {
    let (mut artifact, model) = baseline();
    // An all-zero "witness" satisfies every shape obligation but is not a
    // converged bias; the span check rejects it.
    artifact.bias.iter_mut().for_each(|h| *h = 0.0);
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::BiasResidualSpan), "{report}");
}

#[test]
fn foreign_strategy_fails_revenue_consistency() {
    let (mut artifact, model) = baseline();
    // Replace the exported strategy with "always action 0" (total, in
    // range): its induced chain cannot have gain zero at the optimal
    // strategy's claimed revenue.
    artifact.strategy.iter_mut().for_each(|choice| *choice = 0);
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::RevenueConsistent), "{report}");
}

#[test]
fn non_positive_epsilon_fails_fingerprint() {
    let (mut artifact, model) = baseline();
    artifact.epsilon = 0.0;
    let report = audit_certificate(&artifact, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::Fingerprint), "{report}");
}

#[test]
fn corrupted_json_artifacts_fail_the_matching_obligation() {
    let (artifact, model) = baseline();
    // Corrupt through the serialized form: swap the bracket ends.
    let json = artifact.to_json().replace(
        &format!("\"beta_low\":{:?}", artifact.beta_low),
        &format!("\"beta_low\":{:?}", artifact.beta_up + EPSILON),
    );
    let corrupt = CertificateArtifact::from_json(&json).expect("still parses");
    let report = audit_certificate(&corrupt, &model, &AuditConfig::default());
    assert!(report.failed(Obligation::BetaInterval), "{report}");
}

#[test]
fn instantiated_models_pass_the_arena_audit() {
    let family = family();
    let violations = audit_parametric(&family);
    assert!(violations.is_empty(), "{violations:?}");
    for &(p, gamma) in &[(0.1, 0.0), (0.3, 0.5), (0.45, 1.0)] {
        let model = family
            .instantiate(p, gamma)
            .expect("instantiation succeeds");
        let violations = audit_model(&model);
        assert!(
            violations.is_empty(),
            "(p={p}, gamma={gamma}): {violations:?}"
        );
    }
}

#[test]
fn corrupted_probability_mass_fails_the_arena_audit() {
    use sm_audit::audit_mdp;
    use sm_mdp::MdpBuilder;
    let mut builder = MdpBuilder::new(2);
    builder
        .add_action(0, "a", vec![(0, 0.5), (1, 0.5)])
        .expect("valid action");
    builder
        .add_action(1, "b", vec![(0, 1.0)])
        .expect("valid action");
    let mut mdp = builder.build(0).expect("valid arena builds");
    assert!(audit_mdp(&mdp).is_empty());
    // Corrupt one weight after construction (the builders reject bad mass
    // up front, so post-hoc reweighting is the only way in).
    let good = mdp.csr().probabilities().to_vec();
    mdp.csr_mut()
        .reweight_in_place(|k| if k == 0 { good[0] + 0.25 } else { good[k] });
    let violations = audit_mdp(&mdp);
    assert!(
        violations.iter().any(|v| v.contains("probability mass")),
        "{violations:?}"
    );
}

#[test]
fn scenario_arenas_are_action_subsets_of_the_optimal_arena() {
    use selfish_mining::AttackScenario;
    let optimal = family()
        .instantiate(0.3, 0.5)
        .expect("instantiation succeeds");
    for scenario in AttackScenario::default_family() {
        if !scenario.is_action_restriction() {
            continue;
        }
        let restricted = ParametricModel::build_scenario(scenario, 2, 1, 4)
            .expect("scenario family builds")
            .instantiate(0.3, 0.5)
            .expect("instantiation succeeds");
        let violations = audit_scenario_restriction(&optimal, &restricted);
        assert!(
            violations.is_empty(),
            "{}: {violations:?}",
            restricted.scenario().label()
        );
    }
}

#[test]
fn parameter_mismatch_fails_the_restriction_audit() {
    let optimal = family()
        .instantiate(0.3, 0.5)
        .expect("instantiation succeeds");
    let other = family()
        .instantiate(0.2, 0.5)
        .expect("instantiation succeeds");
    let violations = audit_scenario_restriction(&optimal, &other);
    assert!(!violations.is_empty());
}
