//! Machine-readable benchmark reports: parsing the `sm-bench/v1` JSON
//! emitted by the criterion shim (`SM_BENCH_JSON`) and comparing a current
//! report against a committed baseline for the CI perf-regression gate.
//!
//! The JSON layer is a deliberately small recursive-descent parser — the
//! build environment has no crates.io access, so no serde — that accepts
//! the full JSON value grammar but is only exercised on the report schema
//! documented in `bench/README.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (the subset of structure the report needs; the
/// parser itself accepts any valid JSON document).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (reports only use non-negative integers, which are
    /// exact in an `f64` up to 2⁵³ — about 104 days in nanoseconds).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u128),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "malformed \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "malformed \\u escape".to_string())?;
                            // Report names are ASCII; surrogate pairs are not
                            // needed and decode to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "malformed number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// One benchmark of a parsed report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full `group/benchmark-id` path.
    pub name: String,
    /// Median wall-clock sample, nanoseconds.
    pub median_ns: u128,
    /// Mean wall-clock sample, nanoseconds.
    pub mean_ns: u128,
    /// Fastest wall-clock sample, nanoseconds.
    pub min_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

/// A parsed `sm-bench/v1` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The recorded benchmarks, in document order.
    pub benchmarks: Vec<BenchRecord>,
}

impl BenchReport {
    /// The benchmarks keyed by name (names are unique per report).
    pub fn by_name(&self) -> BTreeMap<&str, &BenchRecord> {
        self.benchmarks
            .iter()
            .map(|bench| (bench.name.as_str(), bench))
            .collect()
    }
}

/// Parses an `sm-bench/v1` report document.
///
/// # Errors
///
/// Returns a description of the first syntax or schema violation.
pub fn parse_report(input: &str) -> Result<BenchReport, String> {
    let root = parse_json(input)?;
    let schema = root
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("report is missing the \"schema\" field")?;
    if schema != criterion::JSON_SCHEMA {
        return Err(format!(
            "unsupported report schema {schema:?} (expected {:?})",
            criterion::JSON_SCHEMA
        ));
    }
    let benchmarks = match root.get("benchmarks") {
        Some(JsonValue::Array(items)) => items,
        _ => return Err("report is missing the \"benchmarks\" array".to_string()),
    };
    let mut out = Vec::with_capacity(benchmarks.len());
    for (index, item) in benchmarks.iter().enumerate() {
        let field_u128 = |key: &str| {
            item.get(key)
                .and_then(JsonValue::as_u128)
                .ok_or_else(|| format!("benchmark #{index} is missing integer {key:?}"))
        };
        out.push(BenchRecord {
            name: item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("benchmark #{index} is missing \"name\""))?
                .to_string(),
            median_ns: field_u128("median_ns")?,
            mean_ns: field_u128("mean_ns")?,
            min_ns: field_u128("min_ns")?,
            samples: field_u128("samples")? as usize,
        });
    }
    Ok(BenchReport { benchmarks: out })
}

/// Verdict for one benchmark of a report comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchVerdict {
    /// Present in both reports; `ratio = current_median / baseline_median`.
    Compared {
        /// Current-over-baseline median ratio.
        ratio: f64,
        /// Whether the benchmark participates in the gate: baselines below
        /// the noise floor are compared and reported but cannot fail the
        /// run (micro-benchmarks in the microsecond range routinely jitter
        /// past any reasonable threshold on shared CI runners).
        gated: bool,
        /// Whether the ratio exceeds the regression threshold *and* the
        /// benchmark is gated.
        regressed: bool,
    },
    /// Present only in the current report (no baseline entry yet).
    New,
    /// Present only in the baseline (renamed or dropped benchmark).
    Missing,
}

/// Result of comparing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-benchmark verdicts: `(name, baseline median, current median,
    /// verdict)`, baseline order first, then new benchmarks in current
    /// order. Medians are `None` for the side the benchmark is absent from.
    pub rows: Vec<(String, Option<u128>, Option<u128>, BenchVerdict)>,
    /// The regression threshold the comparison ran with.
    pub threshold: f64,
}

impl Comparison {
    /// Names of benchmarks whose median regressed beyond the threshold.
    pub fn regressions(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter_map(|(name, _, _, verdict)| match verdict {
                BenchVerdict::Compared {
                    regressed: true, ..
                } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Names of baseline benchmarks absent from the current report.
    pub fn missing(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter_map(|(name, _, _, verdict)| {
                matches!(verdict, BenchVerdict::Missing).then_some(name.as_str())
            })
            .collect()
    }

    /// Whether the gate passes: no regression and no missing benchmark.
    pub fn passes(&self) -> bool {
        self.regressions().is_empty() && self.missing().is_empty()
    }

    /// Renders the comparison as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>14} {:>14} {:>8}  verdict",
            "benchmark", "baseline (ms)", "current (ms)", "ratio"
        );
        for (name, baseline, current, verdict) in &self.rows {
            let millis = |ns: &Option<u128>| {
                ns.map_or("-".to_string(), |ns| format!("{:.3}", ns as f64 / 1e6))
            };
            let (ratio, label) = match verdict {
                BenchVerdict::Compared {
                    ratio,
                    gated,
                    regressed,
                } => (
                    format!("{ratio:.3}"),
                    if *regressed {
                        format!("REGRESSED (> {:.2}x)", self.threshold)
                    } else if !gated {
                        "ok (below gate floor)".to_string()
                    } else {
                        "ok".to_string()
                    },
                ),
                BenchVerdict::New => ("-".to_string(), "new (no baseline)".to_string()),
                BenchVerdict::Missing => ("-".to_string(), "MISSING from current".to_string()),
            };
            let _ = writeln!(
                out,
                "{:<52} {:>14} {:>14} {:>8}  {}",
                name,
                millis(baseline),
                millis(current),
                ratio,
                label
            );
        }
        out
    }
}

/// Compares a current report's medians against a baseline: a benchmark
/// regresses when `current_median > baseline_median * threshold`
/// (`threshold = 1.25` is the CI gate's 25% budget) **and** its baseline
/// median is at least `min_median_ns` — the noise floor below which a
/// benchmark is too fast to gate reliably on shared runners (it is still
/// compared and reported). Benchmarks only in one report are flagged rather
/// than silently dropped, so a renamed bench cannot sneak past the gate.
pub fn compare_reports(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold: f64,
    min_median_ns: u128,
) -> Comparison {
    let current_by_name = current.by_name();
    let baseline_names: std::collections::BTreeSet<&str> = baseline
        .benchmarks
        .iter()
        .map(|bench| bench.name.as_str())
        .collect();
    let mut rows = Vec::new();
    for base in &baseline.benchmarks {
        match current_by_name.get(base.name.as_str()) {
            Some(cur) => {
                // An exact-zero baseline median (sub-nanosecond bench) can
                // only "regress" to a non-zero median; treat it as ratio 1.
                let ratio = if base.median_ns == 0 {
                    1.0
                } else {
                    cur.median_ns as f64 / base.median_ns as f64
                };
                let gated = base.median_ns >= min_median_ns;
                rows.push((
                    base.name.clone(),
                    Some(base.median_ns),
                    Some(cur.median_ns),
                    BenchVerdict::Compared {
                        ratio,
                        gated,
                        regressed: gated && ratio > threshold,
                    },
                ));
            }
            None => rows.push((
                base.name.clone(),
                Some(base.median_ns),
                None,
                BenchVerdict::Missing,
            )),
        }
    }
    for cur in &current.benchmarks {
        if !baseline_names.contains(cur.name.as_str()) {
            rows.push((
                cur.name.clone(),
                None,
                Some(cur.median_ns),
                BenchVerdict::New,
            ));
        }
    }
    Comparison { rows, threshold }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, u128)]) -> BenchReport {
        BenchReport {
            benchmarks: entries
                .iter()
                .map(|&(name, median_ns)| BenchRecord {
                    name: name.to_string(),
                    median_ns,
                    mean_ns: median_ns,
                    min_ns: median_ns,
                    samples: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_shim_emitted_report() {
        // Round-trip against the actual emitter.
        let mut c = criterion::Criterion::default();
        c.bench_function("report-roundtrip/sample", |b| b.iter(|| 2 + 2));
        let parsed = parse_report(&criterion::json_report()).unwrap();
        let bench = parsed
            .benchmarks
            .iter()
            .find(|bench| bench.name == "report-roundtrip/sample")
            .expect("recorded benchmark present");
        assert!(bench.samples >= 1);
        assert!(bench.min_ns <= bench.median_ns);
    }

    #[test]
    fn parses_escapes_numbers_and_nesting() {
        let value = parse_json(r#"{"a": [1, 2.5, -3e2, true, null], "b": "x\"\\\nA"}"#).unwrap();
        assert_eq!(
            value.get("b").and_then(|v| match v {
                JsonValue::String(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("x\"\\\nA")
        );
        match value.get("a") {
            Some(JsonValue::Array(items)) => {
                assert_eq!(items[0], JsonValue::Number(1.0));
                assert_eq!(items[2], JsonValue::Number(-300.0));
                assert_eq!(items[4], JsonValue::Null);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents_and_schemas() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_report("{\"schema\": \"other/v9\", \"benchmarks\": []}").is_err());
        assert!(parse_report("{\"benchmarks\": []}").is_err());
        assert!(
            parse_report("{\"schema\": \"sm-bench/v1\", \"benchmarks\": [{\"name\": \"x\"}]}")
                .is_err(),
            "records must carry all duration fields"
        );
    }

    #[test]
    fn comparison_flags_regressions_new_and_missing() {
        let baseline = report(&[("a", 100), ("b", 100), ("gone", 50)]);
        let current = report(&[("a", 110), ("b", 130), ("fresh", 10)]);
        let cmp = compare_reports(&current, &baseline, 1.25, 0);
        assert_eq!(cmp.regressions(), vec!["b"]);
        assert_eq!(cmp.missing(), vec!["gone"]);
        assert!(!cmp.passes());
        let table = cmp.render();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("MISSING"));
        assert!(table.contains("new (no baseline)"));

        let ok = compare_reports(&report(&[("a", 120)]), &report(&[("a", 100)]), 1.25, 0);
        assert!(ok.passes());
        assert!(ok.render().contains("ok"));
    }

    #[test]
    fn noise_floor_reports_but_does_not_gate_fast_benchmarks() {
        // "b" doubled but its baseline median sits below the floor: the
        // ratio is still reported, the gate ignores it. "slow" regressed
        // above the floor and still fails.
        let baseline = report(&[("b", 1_000), ("slow", 10_000_000)]);
        let current = report(&[("b", 2_000), ("slow", 20_000_000)]);
        let cmp = compare_reports(&current, &baseline, 1.25, 1_000_000);
        assert_eq!(cmp.regressions(), vec!["slow"]);
        assert!(!cmp.passes());
        let table = cmp.render();
        assert!(table.contains("ok (below gate floor)"));
        // With no floor, both regress.
        let strict = compare_reports(&current, &baseline, 1.25, 0);
        assert_eq!(strict.regressions(), vec!["b", "slow"]);
    }

    #[test]
    fn zero_baseline_medians_do_not_divide_by_zero() {
        let cmp = compare_reports(&report(&[("z", 5)]), &report(&[("z", 0)]), 1.25, 0);
        assert!(cmp.passes());
    }
}
