//! Machine-readable benchmark reports: parsing the `sm-bench/v2` JSON
//! emitted by the criterion shim (`SM_BENCH_JSON`) — and, for committed
//! baselines that predate the memory extension, the `sm-bench/v1` layout —
//! and comparing a current report against a committed baseline for the CI
//! perf-regression gate.
//!
//! The JSON layer is a deliberately small recursive-descent parser — the
//! build environment has no crates.io access, so no serde — that accepts
//! the full JSON value grammar but is only exercised on the report schema
//! documented in `bench/README.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (the subset of structure the report needs; the
/// parser itself accepts any valid JSON document).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (reports only use non-negative integers, which are
    /// exact in an `f64` up to 2⁵³ — about 104 days in nanoseconds).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u128),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "malformed \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "malformed \\u escape".to_string())?;
                            // Report names are ASCII; surrogate pairs are not
                            // needed and decode to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "malformed number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// One benchmark of a parsed report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full `group/benchmark-id` path.
    pub name: String,
    /// Median wall-clock sample, nanoseconds.
    pub median_ns: u128,
    /// Mean wall-clock sample, nanoseconds.
    pub mean_ns: u128,
    /// Fastest wall-clock sample, nanoseconds.
    pub min_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

/// One recorded memory footprint of a parsed report (`sm-bench/v2`; `v1`
/// reports parse with an empty list).
#[derive(Debug, Clone, PartialEq)]
pub struct MemRecord {
    /// Footprint name, e.g. `arena/d3-f2/layout_bytes`.
    pub name: String,
    /// Resident bytes.
    pub bytes: u128,
}

/// A parsed `sm-bench/v1` or `sm-bench/v2` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The recorded benchmarks, in document order.
    pub benchmarks: Vec<BenchRecord>,
    /// The recorded memory footprints, in document order (empty for `v1`
    /// reports, which predate the extension).
    pub mem_footprint: Vec<MemRecord>,
}

impl BenchReport {
    /// The benchmarks keyed by name (names are unique per report).
    pub fn by_name(&self) -> BTreeMap<&str, &BenchRecord> {
        self.benchmarks
            .iter()
            .map(|bench| (bench.name.as_str(), bench))
            .collect()
    }

    /// The memory footprints keyed by name.
    pub fn mem_by_name(&self) -> BTreeMap<&str, &MemRecord> {
        self.mem_footprint
            .iter()
            .map(|entry| (entry.name.as_str(), entry))
            .collect()
    }

    /// Renders the report in the `sm-bench/v2` layout the criterion shim
    /// emits, so merged or normalised reports can be written back as
    /// baselines.
    pub fn to_json(&self) -> String {
        fn escape_into(out: &mut String, name: &str) {
            for c in name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
        }
        let mut out = String::from("{\n  \"schema\": \"");
        out.push_str(criterion::JSON_SCHEMA);
        out.push_str("\",\n  \"benchmarks\": [");
        for (index, bench) in self.benchmarks.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            escape_into(&mut out, &bench.name);
            let _ = write!(
                out,
                "\", \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}}}",
                bench.median_ns, bench.mean_ns, bench.min_ns, bench.samples
            );
        }
        out.push_str("\n  ],\n  \"mem_footprint\": [");
        for (index, entry) in self.mem_footprint.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            escape_into(&mut out, &entry.name);
            let _ = write!(out, "\", \"bytes\": {}}}", entry.bytes);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Merges reports written by separate bench processes into one logical
/// report — the CI gate reads the solver bench report and the arena-stats
/// memory report together. Duplicate benchmark or footprint names across
/// the inputs are rejected: they would silently shadow each other in the
/// comparison maps.
///
/// # Errors
///
/// Returns a description of the first duplicate name encountered.
pub fn merge_reports(reports: Vec<BenchReport>) -> Result<BenchReport, String> {
    let mut merged = BenchReport {
        benchmarks: Vec::new(),
        mem_footprint: Vec::new(),
    };
    let mut bench_names = std::collections::BTreeSet::new();
    let mut mem_names = std::collections::BTreeSet::new();
    for report in reports {
        for bench in report.benchmarks {
            if !bench_names.insert(bench.name.clone()) {
                return Err(format!(
                    "benchmark {:?} appears in more than one report",
                    bench.name
                ));
            }
            merged.benchmarks.push(bench);
        }
        for entry in report.mem_footprint {
            if !mem_names.insert(entry.name.clone()) {
                return Err(format!(
                    "memory footprint {:?} appears in more than one report",
                    entry.name
                ));
            }
            merged.mem_footprint.push(entry);
        }
    }
    Ok(merged)
}

/// Schemas [`parse_report`] accepts: the current `v2` layout and the `v1`
/// layout still present in baselines committed before the `mem_footprint`
/// extension.
const ACCEPTED_SCHEMAS: [&str; 2] = ["sm-bench/v1", criterion::JSON_SCHEMA];

/// Parses an `sm-bench/v1` or `sm-bench/v2` report document.
///
/// # Errors
///
/// Returns a description of the first syntax or schema violation.
pub fn parse_report(input: &str) -> Result<BenchReport, String> {
    let root = parse_json(input)?;
    let schema = root
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("report is missing the \"schema\" field")?;
    if !ACCEPTED_SCHEMAS.contains(&schema) {
        return Err(format!(
            "unsupported report schema {schema:?} (expected one of {ACCEPTED_SCHEMAS:?})"
        ));
    }
    let benchmarks = match root.get("benchmarks") {
        Some(JsonValue::Array(items)) => items,
        _ => return Err("report is missing the \"benchmarks\" array".to_string()),
    };
    let mut out = Vec::with_capacity(benchmarks.len());
    for (index, item) in benchmarks.iter().enumerate() {
        let field_u128 = |key: &str| {
            item.get(key)
                .and_then(JsonValue::as_u128)
                .ok_or_else(|| format!("benchmark #{index} is missing integer {key:?}"))
        };
        out.push(BenchRecord {
            name: item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("benchmark #{index} is missing \"name\""))?
                .to_string(),
            median_ns: field_u128("median_ns")?,
            mean_ns: field_u128("mean_ns")?,
            min_ns: field_u128("min_ns")?,
            samples: field_u128("samples")? as usize,
        });
    }
    // `mem_footprint` is optional (absent from v1 reports) but malformed
    // entries are still rejected rather than dropped.
    let mut mem = Vec::new();
    match root.get("mem_footprint") {
        None | Some(JsonValue::Null) => {}
        Some(JsonValue::Array(items)) => {
            for (index, item) in items.iter().enumerate() {
                mem.push(MemRecord {
                    name: item
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("mem entry #{index} is missing \"name\""))?
                        .to_string(),
                    bytes: item
                        .get("bytes")
                        .and_then(JsonValue::as_u128)
                        .ok_or_else(|| {
                            format!("mem entry #{index} is missing integer \"bytes\"")
                        })?,
                });
            }
        }
        Some(_) => return Err("\"mem_footprint\" must be an array".to_string()),
    }
    Ok(BenchReport {
        benchmarks: out,
        mem_footprint: mem,
    })
}

/// Verdict for one benchmark of a report comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchVerdict {
    /// Present in both reports; `ratio = current_median / baseline_median`.
    Compared {
        /// Current-over-baseline median ratio.
        ratio: f64,
        /// Whether the benchmark participates in the gate: baselines below
        /// the noise floor are compared and reported but cannot fail the
        /// run (micro-benchmarks in the microsecond range routinely jitter
        /// past any reasonable threshold on shared CI runners).
        gated: bool,
        /// Whether the ratio exceeds the regression threshold *and* the
        /// benchmark is gated.
        regressed: bool,
    },
    /// Present only in the current report (no baseline entry yet).
    New,
    /// Present only in the baseline (renamed or dropped benchmark).
    Missing,
}

/// Result of comparing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-benchmark verdicts: `(name, baseline median, current median,
    /// verdict)`, baseline order first, then new benchmarks in current
    /// order. Medians are `None` for the side the benchmark is absent from.
    pub rows: Vec<(String, Option<u128>, Option<u128>, BenchVerdict)>,
    /// Per-memory-footprint verdicts, same shape with bytes instead of
    /// nanoseconds. Footprints are deterministic byte counts, so every row
    /// is gated (no noise floor). Empty when neither report records memory
    /// (e.g. a pre-`v2` baseline against a pre-`v2` report).
    pub mem_rows: Vec<(String, Option<u128>, Option<u128>, BenchVerdict)>,
    /// The regression threshold the comparison ran with.
    pub threshold: f64,
}

impl Comparison {
    /// Names of benchmarks or memory footprints that regressed beyond the
    /// threshold (memory names are prefixed `mem:` to disambiguate).
    pub fn regressions(&self) -> Vec<String> {
        let regressed = |verdict: &BenchVerdict| {
            matches!(
                verdict,
                BenchVerdict::Compared {
                    regressed: true,
                    ..
                }
            )
        };
        let timing = self
            .rows
            .iter()
            .filter(|(_, _, _, verdict)| regressed(verdict))
            .map(|(name, _, _, _)| name.clone());
        let memory = self
            .mem_rows
            .iter()
            .filter(|(_, _, _, verdict)| regressed(verdict))
            .map(|(name, _, _, _)| format!("mem:{name}"));
        timing.chain(memory).collect()
    }

    /// Names of baseline benchmarks or memory footprints absent from the
    /// current report (memory names are prefixed `mem:`).
    pub fn missing(&self) -> Vec<String> {
        let timing = self
            .rows
            .iter()
            .filter(|(_, _, _, verdict)| matches!(verdict, BenchVerdict::Missing))
            .map(|(name, _, _, _)| name.clone());
        let memory = self
            .mem_rows
            .iter()
            .filter(|(_, _, _, verdict)| matches!(verdict, BenchVerdict::Missing))
            .map(|(name, _, _, _)| format!("mem:{name}"));
        timing.chain(memory).collect()
    }

    /// Whether the gate passes: no regression and no missing benchmark.
    pub fn passes(&self) -> bool {
        self.regressions().is_empty() && self.missing().is_empty()
    }

    /// Renders the comparison as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>14} {:>14} {:>8}  verdict",
            "benchmark", "baseline (ms)", "current (ms)", "ratio"
        );
        for (name, baseline, current, verdict) in &self.rows {
            let millis = |ns: &Option<u128>| {
                ns.map_or("-".to_string(), |ns| format!("{:.3}", ns as f64 / 1e6))
            };
            let (ratio, label) = match verdict {
                BenchVerdict::Compared {
                    ratio,
                    gated,
                    regressed,
                } => (
                    format!("{ratio:.3}"),
                    if *regressed {
                        format!("REGRESSED (> {:.2}x)", self.threshold)
                    } else if !gated {
                        "ok (below gate floor)".to_string()
                    } else {
                        "ok".to_string()
                    },
                ),
                BenchVerdict::New => ("-".to_string(), "new (no baseline)".to_string()),
                BenchVerdict::Missing => ("-".to_string(), "MISSING from current".to_string()),
            };
            let _ = writeln!(
                out,
                "{:<52} {:>14} {:>14} {:>8}  {}",
                name,
                millis(baseline),
                millis(current),
                ratio,
                label
            );
        }
        if !self.mem_rows.is_empty() {
            let _ = writeln!(
                out,
                "{:<52} {:>14} {:>14} {:>8}  verdict",
                "memory footprint", "baseline (B)", "current (B)", "ratio"
            );
            for (name, baseline, current, verdict) in &self.mem_rows {
                let bytes = |b: &Option<u128>| b.map_or("-".to_string(), |bytes| bytes.to_string());
                let (ratio, label) = match verdict {
                    BenchVerdict::Compared {
                        ratio, regressed, ..
                    } => (
                        format!("{ratio:.3}"),
                        if *regressed {
                            format!("REGRESSED (> {:.2}x)", self.threshold)
                        } else {
                            "ok".to_string()
                        },
                    ),
                    BenchVerdict::New => ("-".to_string(), "new (no baseline)".to_string()),
                    BenchVerdict::Missing => ("-".to_string(), "MISSING from current".to_string()),
                };
                let _ = writeln!(
                    out,
                    "{:<52} {:>14} {:>14} {:>8}  {}",
                    name,
                    bytes(baseline),
                    bytes(current),
                    ratio,
                    label
                );
            }
        }
        out
    }
}

/// Compares a current report's medians against a baseline: a benchmark
/// regresses when `current_median > baseline_median * threshold`
/// (`threshold = 1.25` is the CI gate's 25% budget) **and** its baseline
/// median is at least `min_median_ns` — the noise floor below which a
/// benchmark is too fast to gate reliably on shared runners (it is still
/// compared and reported). Benchmarks only in one report are flagged rather
/// than silently dropped, so a renamed bench cannot sneak past the gate.
///
/// `mem_footprint` entries are compared with the same threshold but no
/// noise floor: resident byte counts are deterministic, so any growth past
/// the threshold is a genuine memory regression.
pub fn compare_reports(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold: f64,
    min_median_ns: u128,
) -> Comparison {
    let current_by_name = current.by_name();
    let baseline_names: std::collections::BTreeSet<&str> = baseline
        .benchmarks
        .iter()
        .map(|bench| bench.name.as_str())
        .collect();
    let mut rows = Vec::new();
    for base in &baseline.benchmarks {
        match current_by_name.get(base.name.as_str()) {
            Some(cur) => {
                // An exact-zero baseline median (sub-nanosecond bench) can
                // only "regress" to a non-zero median; treat it as ratio 1.
                let ratio = if base.median_ns == 0 {
                    1.0
                } else {
                    cur.median_ns as f64 / base.median_ns as f64
                };
                let gated = base.median_ns >= min_median_ns;
                rows.push((
                    base.name.clone(),
                    Some(base.median_ns),
                    Some(cur.median_ns),
                    BenchVerdict::Compared {
                        ratio,
                        gated,
                        regressed: gated && ratio > threshold,
                    },
                ));
            }
            None => rows.push((
                base.name.clone(),
                Some(base.median_ns),
                None,
                BenchVerdict::Missing,
            )),
        }
    }
    for cur in &current.benchmarks {
        if !baseline_names.contains(cur.name.as_str()) {
            rows.push((
                cur.name.clone(),
                None,
                Some(cur.median_ns),
                BenchVerdict::New,
            ));
        }
    }
    let current_mem = current.mem_by_name();
    let baseline_mem_names: std::collections::BTreeSet<&str> = baseline
        .mem_footprint
        .iter()
        .map(|entry| entry.name.as_str())
        .collect();
    let mut mem_rows = Vec::new();
    for base in &baseline.mem_footprint {
        match current_mem.get(base.name.as_str()) {
            Some(cur) => {
                let ratio = if base.bytes == 0 {
                    1.0
                } else {
                    cur.bytes as f64 / base.bytes as f64
                };
                mem_rows.push((
                    base.name.clone(),
                    Some(base.bytes),
                    Some(cur.bytes),
                    BenchVerdict::Compared {
                        ratio,
                        gated: true,
                        regressed: ratio > threshold,
                    },
                ));
            }
            None => mem_rows.push((
                base.name.clone(),
                Some(base.bytes),
                None,
                BenchVerdict::Missing,
            )),
        }
    }
    for cur in &current.mem_footprint {
        if !baseline_mem_names.contains(cur.name.as_str()) {
            mem_rows.push((cur.name.clone(), None, Some(cur.bytes), BenchVerdict::New));
        }
    }
    Comparison {
        rows,
        mem_rows,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, u128)]) -> BenchReport {
        BenchReport {
            benchmarks: entries
                .iter()
                .map(|&(name, median_ns)| BenchRecord {
                    name: name.to_string(),
                    median_ns,
                    mean_ns: median_ns,
                    min_ns: median_ns,
                    samples: 5,
                })
                .collect(),
            mem_footprint: Vec::new(),
        }
    }

    fn mem_report(entries: &[(&str, u128)]) -> BenchReport {
        BenchReport {
            benchmarks: Vec::new(),
            mem_footprint: entries
                .iter()
                .map(|&(name, bytes)| MemRecord {
                    name: name.to_string(),
                    bytes,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_shim_emitted_report() {
        // Round-trip against the actual emitter.
        let mut c = criterion::Criterion::default();
        c.bench_function("report-roundtrip/sample", |b| b.iter(|| 2 + 2));
        let parsed = parse_report(&criterion::json_report()).unwrap();
        let bench = parsed
            .benchmarks
            .iter()
            .find(|bench| bench.name == "report-roundtrip/sample")
            .expect("recorded benchmark present");
        assert!(bench.samples >= 1);
        assert!(bench.min_ns <= bench.median_ns);
    }

    #[test]
    fn parses_escapes_numbers_and_nesting() {
        let value = parse_json(r#"{"a": [1, 2.5, -3e2, true, null], "b": "x\"\\\nA"}"#).unwrap();
        assert_eq!(
            value.get("b").and_then(|v| match v {
                JsonValue::String(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("x\"\\\nA")
        );
        match value.get("a") {
            Some(JsonValue::Array(items)) => {
                assert_eq!(items[0], JsonValue::Number(1.0));
                assert_eq!(items[2], JsonValue::Number(-300.0));
                assert_eq!(items[4], JsonValue::Null);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents_and_schemas() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_report("{\"schema\": \"other/v9\", \"benchmarks\": []}").is_err());
        assert!(parse_report("{\"benchmarks\": []}").is_err());
        assert!(
            parse_report("{\"schema\": \"sm-bench/v1\", \"benchmarks\": [{\"name\": \"x\"}]}")
                .is_err(),
            "records must carry all duration fields"
        );
    }

    #[test]
    fn comparison_flags_regressions_new_and_missing() {
        let baseline = report(&[("a", 100), ("b", 100), ("gone", 50)]);
        let current = report(&[("a", 110), ("b", 130), ("fresh", 10)]);
        let cmp = compare_reports(&current, &baseline, 1.25, 0);
        assert_eq!(cmp.regressions(), vec!["b".to_string()]);
        assert_eq!(cmp.missing(), vec!["gone".to_string()]);
        assert!(!cmp.passes());
        let table = cmp.render();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("MISSING"));
        assert!(table.contains("new (no baseline)"));

        let ok = compare_reports(&report(&[("a", 120)]), &report(&[("a", 100)]), 1.25, 0);
        assert!(ok.passes());
        assert!(ok.render().contains("ok"));
    }

    #[test]
    fn noise_floor_reports_but_does_not_gate_fast_benchmarks() {
        // "b" doubled but its baseline median sits below the floor: the
        // ratio is still reported, the gate ignores it. "slow" regressed
        // above the floor and still fails.
        let baseline = report(&[("b", 1_000), ("slow", 10_000_000)]);
        let current = report(&[("b", 2_000), ("slow", 20_000_000)]);
        let cmp = compare_reports(&current, &baseline, 1.25, 1_000_000);
        assert_eq!(cmp.regressions(), vec!["slow".to_string()]);
        assert!(!cmp.passes());
        let table = cmp.render();
        assert!(table.contains("ok (below gate floor)"));
        // With no floor, both regress.
        let strict = compare_reports(&current, &baseline, 1.25, 0);
        assert_eq!(
            strict.regressions(),
            vec!["b".to_string(), "slow".to_string()]
        );
    }

    #[test]
    fn zero_baseline_medians_do_not_divide_by_zero() {
        let cmp = compare_reports(&report(&[("z", 5)]), &report(&[("z", 0)]), 1.25, 0);
        assert!(cmp.passes());
    }

    #[test]
    fn v1_reports_without_mem_footprint_still_parse() {
        let parsed = parse_report(
            "{\"schema\": \"sm-bench/v1\", \"benchmarks\": [{\"name\": \"x\", \
             \"median_ns\": 7, \"mean_ns\": 7, \"min_ns\": 7, \"samples\": 3}]}",
        )
        .unwrap();
        assert_eq!(parsed.benchmarks.len(), 1);
        assert!(parsed.mem_footprint.is_empty());
    }

    #[test]
    fn v2_reports_carry_mem_footprints() {
        let parsed = parse_report(
            "{\"schema\": \"sm-bench/v2\", \"benchmarks\": [], \
             \"mem_footprint\": [{\"name\": \"arena/d3-f2\", \"bytes\": 1024}]}",
        )
        .unwrap();
        assert_eq!(
            parsed.mem_by_name().get("arena/d3-f2").map(|m| m.bytes),
            Some(1024)
        );
        // Malformed entries are rejected, not dropped.
        assert!(parse_report(
            "{\"schema\": \"sm-bench/v2\", \"benchmarks\": [], \
             \"mem_footprint\": [{\"name\": \"arena\"}]}"
        )
        .is_err());
        assert!(parse_report(
            "{\"schema\": \"sm-bench/v2\", \"benchmarks\": [], \"mem_footprint\": 3}"
        )
        .is_err());
    }

    #[test]
    fn merged_reports_round_trip_and_reject_duplicates() {
        let merged = merge_reports(vec![
            report(&[("solver/a", 100)]),
            mem_report(&[("arena/a", 2_048)]),
        ])
        .unwrap();
        assert_eq!(merged.benchmarks.len(), 1);
        assert_eq!(merged.mem_footprint.len(), 1);
        // to_json emits the v2 layout the parser accepts.
        let reparsed = parse_report(&merged.to_json()).unwrap();
        assert_eq!(reparsed, merged);

        assert!(
            merge_reports(vec![report(&[("dup", 1)]), report(&[("dup", 2)])]).is_err(),
            "duplicate benchmark names must be rejected"
        );
        assert!(merge_reports(vec![
            mem_report(&[("arena/dup", 1)]),
            mem_report(&[("arena/dup", 2)])
        ])
        .is_err());
    }

    #[test]
    fn memory_footprints_gate_like_benchmarks_but_without_a_noise_floor() {
        let baseline = mem_report(&[("arena/a", 1_000), ("arena/gone", 10)]);
        let current = mem_report(&[("arena/a", 1_500), ("arena/new", 10)]);
        // The 1 MB noise floor applies to durations only; bytes always gate.
        let cmp = compare_reports(&current, &baseline, 1.25, 1_000_000);
        assert_eq!(cmp.regressions(), vec!["mem:arena/a".to_string()]);
        assert_eq!(cmp.missing(), vec!["mem:arena/gone".to_string()]);
        assert!(!cmp.passes());
        let table = cmp.render();
        assert!(table.contains("memory footprint"));
        assert!(table.contains("REGRESSED"));

        let ok = compare_reports(
            &mem_report(&[("arena/a", 600)]),
            &mem_report(&[("arena/a", 1_000)]),
            1.25,
            0,
        );
        assert!(ok.passes());
        // A v1 baseline (no mem entries) never fails a v2 report's new ones.
        let grandfathered = compare_reports(&mem_report(&[("arena/a", 5)]), &report(&[]), 1.25, 0);
        assert!(grandfathered.passes());
    }
}
