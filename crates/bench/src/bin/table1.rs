//! Regenerates Table 1 of the paper: analysis runtimes per attack
//! configuration at γ = 0.5.
//!
//! ```text
//! cargo run --release -p sm-bench --bin table1
//! SM_BENCH_EXPENSIVE=1 cargo run --release -p sm-bench --bin table1   # full (d,f) grid
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let epsilon = std::env::var("SM_BENCH_EPSILON")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1e-3);
    println!("Table 1 — analysis runtimes (gamma = 0.5, p = 0.3, l = 4, epsilon = {epsilon})");
    if !sm_bench::expensive_enabled() {
        println!(
            "note: configurations (3,2) and (4,2) are skipped; set {}=1 to include them",
            sm_bench::EXPENSIVE_ENV
        );
    }
    match sm_bench::table1(epsilon) {
        Ok(rows) => {
            print!("{}", sm_bench::render_table1(&rows));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("table1 failed: {err}");
            ExitCode::FAILURE
        }
    }
}
