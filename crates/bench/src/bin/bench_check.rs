//! CI perf-regression gate over the machine-readable bench reports.
//!
//! Compares a current `SM_BENCH_JSON` report against the committed baseline
//! and exits non-zero when any benchmark's median wall-clock time regressed
//! beyond the threshold (default: 25%), or when a baseline benchmark is
//! missing from the current report (catching silent renames):
//!
//! ```text
//! cargo run -p sm-bench --bin bench_check -- \
//!     --current BENCH_solver.json --baseline bench/baseline.json
//! ```
//!
//! `--write-baseline` copies the current report over the baseline instead of
//! comparing — the refresh path after an intentional perf change or a
//! hardware migration (absolute medians are machine-dependent; the baseline
//! must be regenerated on hardware comparable to the machines the gate runs
//! on — see `bench/README.md`).

use sm_bench::report::{compare_reports, parse_report};
use std::process::ExitCode;

struct Args {
    current: String,
    baseline: String,
    threshold: f64,
    min_median_ms: f64,
    write_baseline: bool,
}

const USAGE: &str = "usage: bench_check --current <report.json> --baseline <baseline.json> \
                     [--threshold <ratio, default 1.25>] \
                     [--min-median-ms <noise floor, default 1.0>] [--write-baseline]";

fn parse_args() -> Result<Args, String> {
    let mut current = None;
    let mut baseline = None;
    let mut threshold = 1.25f64;
    let mut min_median_ms = 1.0f64;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current" => current = Some(args.next().ok_or("--current needs a path")?),
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a path")?),
            "--threshold" => {
                let value = args.next().ok_or("--threshold needs a ratio")?;
                threshold = value
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 1.0)
                    .ok_or(format!("invalid threshold {value:?} (must be >= 1.0)"))?;
            }
            "--min-median-ms" => {
                let value = args.next().ok_or("--min-median-ms needs a duration")?;
                min_median_ms = value
                    .parse::<f64>()
                    .ok()
                    .filter(|floor| floor.is_finite() && *floor >= 0.0)
                    .ok_or(format!("invalid noise floor {value:?} (must be >= 0)"))?;
            }
            "--write-baseline" => write_baseline = true,
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        current: current.ok_or(format!("missing --current\n{USAGE}"))?,
        baseline: baseline.ok_or(format!("missing --baseline\n{USAGE}"))?,
        threshold,
        min_median_ms,
        write_baseline,
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let current_text = std::fs::read_to_string(&args.current)
        .map_err(|e| format!("cannot read current report {}: {e}", args.current))?;
    // Validate before copying or comparing, so a truncated report can
    // neither pass the gate nor become the new baseline.
    let current = parse_report(&current_text)
        .map_err(|e| format!("malformed current report {}: {e}", args.current))?;
    if current.benchmarks.is_empty() {
        return Err(format!(
            "current report {} records no benchmarks",
            args.current
        ));
    }

    if args.write_baseline {
        std::fs::write(&args.baseline, &current_text)
            .map_err(|e| format!("cannot write baseline {}: {e}", args.baseline))?;
        println!(
            "baseline {} refreshed from {} ({} benchmarks)",
            args.baseline,
            args.current,
            current.benchmarks.len()
        );
        return Ok(true);
    }

    let baseline_text = std::fs::read_to_string(&args.baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", args.baseline))?;
    let baseline = parse_report(&baseline_text)
        .map_err(|e| format!("malformed baseline {}: {e}", args.baseline))?;

    // Benchmarks whose baseline median sits below the noise floor are
    // compared and reported but cannot fail the gate: microsecond-scale
    // entries jitter past any reasonable threshold on shared CI runners.
    let min_median_ns = (args.min_median_ms * 1e6) as u128;
    let comparison = compare_reports(&current, &baseline, args.threshold, min_median_ns);
    print!("{}", comparison.render());
    let regressions = comparison.regressions();
    let missing = comparison.missing();
    if !regressions.is_empty() {
        eprintln!(
            "PERF REGRESSION: {} benchmark(s) exceeded {:.0}% of their baseline median: {}",
            regressions.len(),
            (args.threshold - 1.0) * 100.0,
            regressions.join(", ")
        );
    }
    if !missing.is_empty() {
        eprintln!(
            "MISSING BENCHMARKS: {} baseline entrie(s) absent from the current report: {} \
             (renamed? refresh the baseline with --write-baseline)",
            missing.len(),
            missing.join(", ")
        );
    }
    Ok(comparison.passes())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate passed");
            ExitCode::SUCCESS
        }
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_check: {message}");
            ExitCode::from(2)
        }
    }
}
