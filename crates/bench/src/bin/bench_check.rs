//! CI perf-regression gate over the machine-readable bench reports.
//!
//! Compares the current `SM_BENCH_JSON` report(s) against the committed
//! baseline and exits non-zero when any benchmark's median wall-clock time
//! (or any recorded memory footprint) regressed beyond the threshold
//! (default: 25%), or when a baseline entry is missing from the current
//! report (catching silent renames):
//!
//! ```text
//! cargo run -p sm-bench --bin bench_check -- \
//!     --current BENCH_solver.json --baseline bench/baseline.json
//! ```
//!
//! `--current` may be repeated: each bench or example process overwrites its
//! own `SM_BENCH_JSON` file, so a run that produces timings and memory
//! footprints in separate processes (e.g. `solver_micro` plus the
//! `arena_stats` example) hands all of them to one gate invocation and they
//! are merged into a single logical report (duplicate names are rejected).
//!
//! `--write-baseline` writes the merged current report over the baseline
//! instead of comparing — the refresh path after an intentional perf change
//! or a hardware migration (absolute medians are machine-dependent; the
//! baseline must be regenerated on hardware comparable to the machines the
//! gate runs on — see `bench/README.md`).

use sm_bench::report::{compare_reports, merge_reports, parse_report};
use std::process::ExitCode;

struct Args {
    current: Vec<String>,
    baseline: String,
    threshold: f64,
    min_median_ms: f64,
    write_baseline: bool,
}

const USAGE: &str = "usage: bench_check --current <report.json> [--current <more.json> ...] \
                     --baseline <baseline.json> \
                     [--threshold <ratio, default 1.25>] \
                     [--min-median-ms <noise floor, default 1.0>] [--write-baseline]";

fn parse_args() -> Result<Args, String> {
    let mut current = Vec::new();
    let mut baseline = None;
    let mut threshold = 1.25f64;
    let mut min_median_ms = 1.0f64;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current" => current.push(args.next().ok_or("--current needs a path")?),
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a path")?),
            "--threshold" => {
                let value = args.next().ok_or("--threshold needs a ratio")?;
                threshold = value
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 1.0)
                    .ok_or(format!("invalid threshold {value:?} (must be >= 1.0)"))?;
            }
            "--min-median-ms" => {
                let value = args.next().ok_or("--min-median-ms needs a duration")?;
                min_median_ms = value
                    .parse::<f64>()
                    .ok()
                    .filter(|floor| floor.is_finite() && *floor >= 0.0)
                    .ok_or(format!("invalid noise floor {value:?} (must be >= 0)"))?;
            }
            "--write-baseline" => write_baseline = true,
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if current.is_empty() {
        return Err(format!("missing --current\n{USAGE}"));
    }
    Ok(Args {
        current,
        baseline: baseline.ok_or(format!("missing --baseline\n{USAGE}"))?,
        threshold,
        min_median_ms,
        write_baseline,
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    // Validate every report before copying or comparing, so a truncated
    // report can neither pass the gate nor become the new baseline.
    let mut reports = Vec::with_capacity(args.current.len());
    for path in &args.current {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read current report {path}: {e}"))?;
        reports.push(
            parse_report(&text).map_err(|e| format!("malformed current report {path}: {e}"))?,
        );
    }
    let current = merge_reports(reports)?;
    if current.benchmarks.is_empty() && current.mem_footprint.is_empty() {
        return Err(format!(
            "current report(s) {} record nothing",
            args.current.join(", ")
        ));
    }

    if args.write_baseline {
        std::fs::write(&args.baseline, current.to_json())
            .map_err(|e| format!("cannot write baseline {}: {e}", args.baseline))?;
        println!(
            "baseline {} refreshed from {} ({} benchmarks, {} memory footprints)",
            args.baseline,
            args.current.join(", "),
            current.benchmarks.len(),
            current.mem_footprint.len()
        );
        return Ok(true);
    }

    let baseline_text = std::fs::read_to_string(&args.baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", args.baseline))?;
    let baseline = parse_report(&baseline_text)
        .map_err(|e| format!("malformed baseline {}: {e}", args.baseline))?;

    // Benchmarks whose baseline median sits below the noise floor are
    // compared and reported but cannot fail the gate: microsecond-scale
    // entries jitter past any reasonable threshold on shared CI runners.
    // Memory footprints have no noise floor — byte counts are deterministic.
    let min_median_ns = (args.min_median_ms * 1e6) as u128;
    let comparison = compare_reports(&current, &baseline, args.threshold, min_median_ns);
    print!("{}", comparison.render());
    let regressions = comparison.regressions();
    let missing = comparison.missing();
    if !regressions.is_empty() {
        eprintln!(
            "PERF REGRESSION: {} entrie(s) exceeded {:.0}% of their baseline: {}",
            regressions.len(),
            (args.threshold - 1.0) * 100.0,
            regressions.join(", ")
        );
    }
    if !missing.is_empty() {
        eprintln!(
            "MISSING BENCHMARKS: {} baseline entrie(s) absent from the current report: {} \
             (renamed? refresh the baseline with --write-baseline)",
            missing.len(),
            missing.join(", ")
        );
    }
    Ok(comparison.passes())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate passed");
            ExitCode::SUCCESS
        }
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_check: {message}");
            ExitCode::from(2)
        }
    }
}
