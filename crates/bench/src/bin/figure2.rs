//! Regenerates Figure 2 of the paper: expected relative revenue as a function
//! of the adversarial resource, one panel per switching probability γ, for our
//! attack (several `(d, f)` configurations) and both baselines.
//!
//! ```text
//! cargo run --release -p sm-bench --bin figure2              # all gamma panels
//! cargo run --release -p sm-bench --bin figure2 -- 0.5       # a single panel
//! SM_BENCH_EXPENSIVE=1 cargo run --release -p sm-bench --bin figure2   # paper grids
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let epsilon = std::env::var("SM_BENCH_EPSILON")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1e-3);
    let gammas: Vec<f64> = match std::env::args().nth(1) {
        Some(arg) => match arg.parse::<f64>() {
            Ok(gamma) if (0.0..=1.0).contains(&gamma) => vec![gamma],
            _ => {
                eprintln!("argument must be a switching probability in [0, 1], got '{arg}'");
                return ExitCode::FAILURE;
            }
        },
        None => sm_bench::gamma_grid(),
    };
    if !sm_bench::expensive_enabled() {
        println!(
            "note: using the coarse p grid and (d,f) up to (2,2); set {}=1 for the paper's full grids\n",
            sm_bench::EXPENSIVE_ENV
        );
    }
    // One engine run per panel: each run still fans its curve jobs out over
    // the worker pool, while completed panels print incrementally and a
    // failure names its γ — on the expensive grids a panel takes hours, so
    // buffering all panels behind one all-γ run would discard finished work.
    // (Re-building the per-(d, f) arenas per panel costs well under 1 % of a
    // panel's runtime; `sm_bench::figure2_panels` is the fully batched
    // variant.)
    for gamma in gammas {
        match sm_bench::figure2(gamma, epsilon) {
            Ok(panel) => {
                println!("Figure 2 panel — gamma = {gamma}");
                println!("{}", panel.rendered);
            }
            Err(err) => {
                eprintln!("figure2 failed for gamma = {gamma}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
