//! Shared harness for the benchmark binaries and Criterion benches that
//! regenerate the paper's evaluation (Table 1 and Figure 2).
//!
//! Two entry points are provided on top of the experiment drivers of the
//! `selfish-mining` crate:
//!
//! * [`table1`] — runs the runtime measurements of Table 1 and renders them as
//!   an aligned text table.
//! * [`figure2`] / [`figure2_panels`] — compute the expected-relative-revenue
//!   curves of Figure 2 (one panel per switching probability γ) through the
//!   parallel `sm-sweep` engine (one parametric arena per `(d, f)`,
//!   warm-started solves along each `p` curve) and render them as aligned
//!   series, one row per adversarial resource value `p`.
//!
//! Expensive configurations (`d = 3, f = 2` and `d = 4, f = 2`) are gated
//! behind the `SM_BENCH_EXPENSIVE` environment variable so that the default
//! run finishes in minutes; see `EXPERIMENTS.md` for the reproduction notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use selfish_mining::experiments::{
    coarse_p_grid, paper_p_grid, table1_row, table1_single_tree_row, Figure2Point, Table1Row,
    PAPER_ATTACK_GRID, PAPER_GAMMA_GRID,
};
use selfish_mining::SelfishMiningError;
use sm_sweep::SweepConfig;
use std::fmt::Write as _;

/// Environment variable that unlocks the expensive configurations.
pub const EXPENSIVE_ENV: &str = "SM_BENCH_EXPENSIVE";

/// Whether the expensive configurations are enabled for this process.
pub fn expensive_enabled() -> bool {
    std::env::var(EXPENSIVE_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The `(d, f)` grid to run: the paper's full grid when expensive mode is on,
/// otherwise its affordable prefix.
pub fn attack_grid() -> Vec<(usize, usize)> {
    if expensive_enabled() {
        PAPER_ATTACK_GRID.to_vec()
    } else {
        vec![(1, 1), (2, 1), (2, 2)]
    }
}

/// The `p` grid to sweep: the paper's 0.01-step grid in expensive mode, a
/// 0.05-step grid otherwise.
pub fn p_grid() -> Vec<f64> {
    if expensive_enabled() {
        paper_p_grid()
    } else {
        coarse_p_grid()
    }
}

/// Runs the Table 1 measurement (runtimes of the analysis per attack
/// configuration at `γ = 0.5`) and returns the rows.
///
/// # Errors
///
/// Propagates model-construction and solver errors.
pub fn table1(epsilon: f64) -> Result<Vec<Table1Row>, SelfishMiningError> {
    let mut rows = Vec::new();
    for (depth, forks) in attack_grid() {
        rows.push(table1_row(0.3, 0.5, depth, forks, 4, epsilon)?);
    }
    rows.push(table1_single_tree_row(0.3, 0.5, 4, 5)?);
    Ok(rows)
}

/// Renders Table 1 rows as an aligned text table mirroring the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "Attack Type", "d", "f", "states", "time (s)", "ERRev"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>6} {:>12} {:>12.2} {:>10.4}",
            row.attack, row.depth, row.forks, row.num_states, row.seconds, row.revenue
        );
    }
    out
}

/// One Figure 2 panel: the γ it belongs to, its data points and the rendered
/// rows.
#[derive(Debug, Clone)]
pub struct Figure2Panel {
    /// The switching probability of the panel.
    pub gamma: f64,
    /// The panel's data, one [`Figure2Point`] per `p` in sweep order.
    pub points: Vec<Figure2Point>,
    /// Rendered text of the panel.
    pub rendered: String,
}

/// Computes and renders one Figure 2 panel (ERRev as a function of `p` for
/// every attack configuration and both baselines) for the given γ.
///
/// # Errors
///
/// Propagates model-construction and solver errors.
pub fn figure2(gamma: f64, epsilon: f64) -> Result<Figure2Panel, SelfishMiningError> {
    let mut panels = figure2_panels(&[gamma], epsilon)?;
    Ok(panels.pop().expect("one gamma yields one panel"))
}

/// Computes and renders every requested Figure 2 panel in **one** run of the
/// parallel sweep engine (`sm-sweep`): each `(d, f)` parametric arena is
/// built once for all panels and the `(d, f) × γ` curve jobs are fanned out
/// over the worker pool with warm-started solves along each `p` curve.
///
/// # Errors
///
/// Propagates model-construction and solver errors.
pub fn figure2_panels(
    gammas: &[f64],
    epsilon: f64,
) -> Result<Vec<Figure2Panel>, SelfishMiningError> {
    let grid = attack_grid();
    let config = SweepConfig {
        attack_grid: grid.clone(),
        epsilon,
        ..SweepConfig::default()
    };
    let ps = p_grid();
    let points = config.run(gammas, &ps)?;
    Ok(gammas
        .iter()
        .enumerate()
        .map(|(gamma_index, &gamma)| {
            let rows = points[gamma_index * ps.len()..(gamma_index + 1) * ps.len()].to_vec();
            Figure2Panel {
                gamma,
                rendered: render_figure2_rows(&grid, &rows),
                points: rows,
            }
        })
        .collect())
}

/// Renders one panel's rows as an aligned text series.
fn render_figure2_rows(grid: &[(usize, usize)], points: &[Figure2Point]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>6} {:>9} {:>12}", "p", "honest", "single-tree");
    for (d, f) in grid {
        let _ = write!(out, " {:>11}", format!("d={d},f={f}"));
    }
    let _ = writeln!(out);
    for point in points {
        let _ = write!(
            out,
            "{:>6.2} {:>9.4} {:>12.4}",
            point.p, point.honest_revenue, point.single_tree_revenue
        );
        for value in &point.attack_revenue {
            let _ = write!(out, " {:>11.4}", value);
        }
        let _ = writeln!(out);
    }
    out
}

/// The γ values of the paper's Figure 2.
pub fn gamma_grid() -> Vec<f64> {
    PAPER_GAMMA_GRID.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grids_are_affordable() {
        // The test environment does not set the expensive flag, so the grids
        // must stay small.
        if !expensive_enabled() {
            assert!(attack_grid().len() <= 3);
            assert!(p_grid().len() <= 7);
        }
        assert_eq!(gamma_grid().len(), 5);
    }

    #[test]
    fn table1_renders_all_rows() {
        let rows = vec![Table1Row {
            attack: "our attack".to_string(),
            depth: 2,
            forks: 1,
            num_states: 123,
            seconds: 1.5,
            revenue: 0.31,
        }];
        let rendered = render_table1(&rows);
        assert!(rendered.contains("our attack"));
        assert!(rendered.contains("123"));
        assert_eq!(rendered.lines().count(), 2);
    }

    #[test]
    fn figure2_panel_small_smoke_test() {
        // A single cheap panel point set: restrict via a tiny epsilon-coarse
        // sweep by calling the underlying sweep directly through figure2 with
        // the default (non-expensive) grids.
        let panel = figure2(0.5, 1e-2).unwrap();
        assert_eq!(panel.gamma, 0.5);
        assert!(panel.rendered.contains("single-tree"));
        assert!(panel.rendered.lines().count() >= 2);
    }
}
