//! Criterion bench regenerating Table 1: wall-clock time of the full analysis
//! (model construction + Algorithm 1) per attack configuration at γ = 0.5.
//!
//! The absolute numbers are not expected to match the paper's Storm-based
//! runtimes; the reproduced shape is the order-of-magnitude growth with the
//! attack depth `d` and the forking number `f`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfish_mining::baselines::SingleTreeAttack;
use selfish_mining::{AnalysisProcedure, AttackParams, SelfishMiningModel};

fn bench_our_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/our_attack");
    group.sample_size(10);
    let configs: &[(usize, usize)] = if sm_bench::expensive_enabled() {
        &[(1, 1), (2, 1), (2, 2), (3, 2)]
    } else {
        &[(1, 1), (2, 1), (2, 2)]
    };
    for &(depth, forks) in configs {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{depth}_f{forks}")),
            &(depth, forks),
            |b, &(depth, forks)| {
                b.iter(|| {
                    let params = AttackParams::new(0.3, 0.5, depth, forks, 4).unwrap();
                    let model = SelfishMiningModel::build(&params).unwrap();
                    AnalysisProcedure::with_epsilon(1e-3)
                        .solve_dinkelbach(&model)
                        .unwrap()
                        .strategy_revenue
                });
            },
        );
    }
    group.finish();
}

fn bench_single_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/single_tree");
    group.sample_size(10);
    group.bench_function("f5_l4", |b| {
        b.iter(|| {
            SingleTreeAttack::paper_configuration(0.3, 0.5)
                .analyse()
                .unwrap()
                .relative_revenue
        });
    });
    group.finish();
}

criterion_group!(benches, bench_our_attack, bench_single_tree);
criterion_main!(benches);
