//! Criterion bench regenerating (a slice of) Figure 2: the cost of computing
//! one ERRev curve point per switching probability γ, at the paper's largest
//! adversarial resource p = 0.3.
//!
//! The measured quantity is the full pipeline behind one plotted point: model
//! construction, the binary-search / Dinkelbach analysis for our attack, and
//! both baselines. Use `cargo run -p sm-bench --bin figure2` to print the
//! actual curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfish_mining::experiments::Figure2Sweep;

fn bench_figure2_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2/point_p0.3");
    group.sample_size(10);
    let sweep = Figure2Sweep {
        attack_grid: if sm_bench::expensive_enabled() {
            vec![(1, 1), (2, 1), (2, 2), (3, 2)]
        } else {
            vec![(1, 1), (2, 1)]
        },
        epsilon: 1e-3,
        ..Figure2Sweep::default()
    };
    for gamma in sm_bench::gamma_grid() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gamma{gamma}")),
            &gamma,
            |b, &gamma| {
                b.iter(|| sweep.point(0.3, gamma).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure2_points);
criterion_main!(benches);
