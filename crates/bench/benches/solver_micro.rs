//! Micro-benchmarks of the solver substrate: mean-payoff solvers on the
//! selfish-mining MDP and the building blocks they rest on. These are ablation
//! benches for the design choices discussed in DESIGN.md (value iteration vs
//! policy iteration vs LP; bisection vs Dinkelbach search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfish_mining::baselines::SingleTreeAttack;
use selfish_mining::experiments::{coarse_p_grid, PAPER_GAMMA_GRID};
use selfish_mining::{
    available_actions, successors, AnalysisConfig, AnalysisProcedure, AttackParams,
    ParametricModel, SelfishMiningModel, SmState, SolverParallelism,
};
use sm_mdp::{MeanPayoffMethod, MeanPayoffSolver, RelativeValueIteration, SweepKernel};
use sm_sweep::SweepConfig;
use std::collections::{HashMap, VecDeque};

fn model() -> SelfishMiningModel {
    let params = AttackParams::new(0.3, 0.5, 2, 1, 4).unwrap();
    SelfishMiningModel::build(&params).unwrap()
}

/// The seed's pre-CSR MDP representation, reproduced verbatim for the
/// before/after benchmark: one heap-allocated `Vec<(usize, f64)>` transition
/// list per named action, nested per state — the layout the flat arena
/// replaced. Kept self-contained in this bench so the comparison measures the
/// *actual* old representation, not today's builders in disguise.
struct LegacyAction {
    #[allow(dead_code)]
    name: String,
    transitions: Vec<(usize, f64)>,
}

struct LegacyMdp {
    states: Vec<Vec<LegacyAction>>,
}

/// The seed's construction pipeline: BFS staging every outcome into nested
/// `Vec<Vec<Vec<…>>>` buffers, then a second pass assembling the nested-`Vec`
/// model and per-action expected rewards. `SelfishMiningModel::build` streams
/// straight into the CSR arena instead.
#[allow(clippy::type_complexity)]
fn legacy_nested_build(params: &AttackParams) -> (LegacyMdp, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let initial = SmState::initial(params);
    let mut index_of: HashMap<SmState, usize> = HashMap::new();
    let mut states: Vec<SmState> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    index_of.insert(initial.clone(), 0);
    states.push(initial);
    queue.push_back(0);

    let mut actions_per_state: Vec<Vec<String>> = Vec::new();
    let mut outcomes: Vec<Vec<Vec<(usize, f64, f64, f64)>>> = Vec::new();
    while let Some(index) = queue.pop_front() {
        let state = states[index].clone();
        let state_actions = available_actions(params, &state);
        let mut per_action = Vec::with_capacity(state_actions.len());
        for action in &state_actions {
            let outs = successors(params, &state, action).unwrap();
            let mut entries = Vec::with_capacity(outs.len());
            for out in outs {
                let target = match index_of.get(&out.state) {
                    Some(&existing) => existing,
                    None => {
                        let new_index = states.len();
                        index_of.insert(out.state.clone(), new_index);
                        states.push(out.state);
                        queue.push_back(new_index);
                        new_index
                    }
                };
                entries.push((
                    target,
                    out.probability,
                    f64::from(out.rewards.adversary),
                    f64::from(out.rewards.honest),
                ));
            }
            per_action.push(entries);
        }
        actions_per_state.push(state_actions.iter().map(|a| a.name()).collect());
        outcomes.push(per_action);
    }

    let num_states = states.len();
    let mut model_states: Vec<Vec<LegacyAction>> = Vec::with_capacity(num_states);
    let mut expected_adv: Vec<Vec<f64>> = Vec::with_capacity(num_states);
    let mut expected_hon: Vec<Vec<f64>> = Vec::with_capacity(num_states);
    for state_index in 0..num_states {
        let mut actions = Vec::new();
        let mut adv_row = Vec::new();
        let mut hon_row = Vec::new();
        for (name, entries) in actions_per_state[state_index]
            .iter()
            .zip(&outcomes[state_index])
        {
            // Sort-and-merge duplicate targets, as the seed's MdpBuilder did.
            let mut transitions: Vec<(usize, f64)> =
                entries.iter().map(|&(t, p, _, _)| (t, p)).collect();
            transitions.sort_by_key(|&(t, _)| t);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(transitions.len());
            for (target, p) in transitions {
                match merged.last_mut() {
                    Some(last) if last.0 == target => last.1 += p,
                    _ => merged.push((target, p)),
                }
            }
            actions.push(LegacyAction {
                name: name.clone(),
                transitions: merged,
            });
            adv_row.push(entries.iter().map(|&(_, p, a, _)| p * a).sum());
            hon_row.push(entries.iter().map(|&(_, p, _, h)| p * h).sum());
        }
        model_states.push(actions);
        expected_adv.push(adv_row);
        expected_hon.push(hon_row);
    }
    (
        LegacyMdp {
            states: model_states,
        },
        expected_adv,
        expected_hon,
    )
}

/// The seed's relative-value-iteration inner loop, verbatim over the nested
/// representation: per-state action `Vec`s, per-action transition `Vec`s,
/// pointer-chasing through both on every sweep.
fn legacy_rvi(mdp: &LegacyMdp, expected: &[Vec<f64>], epsilon: f64) -> f64 {
    let n = mdp.states.len();
    let tau = 0.95;
    let mut h = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut best_action = vec![0usize; n];
    let reference = 0;
    for _ in 1..=2_000_000usize {
        let mut min_delta = f64::INFINITY;
        let mut max_delta = f64::NEG_INFINITY;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut best_a = 0;
            for (a, action) in mdp.states[s].iter().enumerate() {
                let mut value = expected[s][a];
                for &(t, p) in &action.transitions {
                    value += p * h[t] * tau;
                }
                value += (1.0 - tau) * h[s];
                if value > best {
                    best = value;
                    best_a = a;
                }
            }
            next[s] = best;
            best_action[s] = best_a;
            let delta = best - h[s];
            min_delta = min_delta.min(delta);
            max_delta = max_delta.max(delta);
        }
        let offset = next[reference];
        for s in 0..n {
            h[s] = next[s] - offset;
        }
        if max_delta - min_delta < epsilon {
            // Keep the strategy bookkeeping observable so the optimizer
            // cannot elide it (the real solver returns the strategy too).
            criterion::black_box(&best_action);
            return 0.5 * (min_delta + max_delta);
        }
    }
    panic!("legacy RVI failed to converge");
}

/// Before/after of the tentpole refactor: model construction plus one
/// relative-value-iteration solve of `r_β = r_A − β(r_A + r_H)`, through the
/// seed's nested-`Vec` pipeline (staging copy, nested model, pointer-chasing
/// sweep) vs. today's streamed flat CSR arena.
fn bench_construction_plus_vi(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr/build_plus_vi");
    group.sample_size(10);
    let beta = 0.35;
    for (depth, forks) in [(2usize, 1usize), (2, 2)] {
        let params = AttackParams::new(0.3, 0.5, depth, forks, 4).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("nested_legacy_d{depth}_f{forks}")),
            &params,
            |b, params| {
                b.iter(|| {
                    let (mdp, adv, hon) = legacy_nested_build(params);
                    let expected_beta: Vec<Vec<f64>> = adv
                        .iter()
                        .zip(&hon)
                        .map(|(ar, hr)| {
                            ar.iter()
                                .zip(hr)
                                .map(|(&a, &h)| a - beta * (a + h))
                                .collect()
                        })
                        .collect();
                    legacy_rvi(&mdp, &expected_beta, 1e-6)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("csr_stream_d{depth}_f{forks}")),
            &params,
            |b, params| {
                b.iter(|| {
                    let model = SelfishMiningModel::build(params).unwrap();
                    let rewards = model.beta_rewards(beta).unwrap();
                    RelativeValueIteration::with_epsilon(1e-6)
                        .solve(model.mdp(), &rewards)
                        .unwrap()
                        .gain
                });
            },
        );
    }
    group.finish();
}

fn bench_mean_payoff_methods(c: &mut Criterion) {
    let model = model();
    let rewards = model.beta_rewards(0.35).unwrap();
    let mut group = c.benchmark_group("solver/mean_payoff_d2_f1");
    for (name, method) in [
        (
            "value_iteration",
            MeanPayoffMethod::ValueIteration { epsilon: 1e-6 },
        ),
        ("policy_iteration", MeanPayoffMethod::PolicyIteration),
        ("linear_programming", MeanPayoffMethod::LinearProgramming),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &method, |b, method| {
            let solver = MeanPayoffSolver::new(method.clone());
            b.iter(|| solver.solve(model.mdp(), &rewards).unwrap().gain);
        });
    }
    group.finish();
}

fn bench_search_strategies(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("solver/search_d2_f1");
    group.sample_size(10);
    group.bench_function("bisection", |b| {
        b.iter(|| {
            AnalysisProcedure::with_epsilon(1e-3)
                .solve(&model)
                .unwrap()
                .expected_relative_revenue
        });
    });
    group.bench_function("dinkelbach", |b| {
        b.iter(|| {
            AnalysisProcedure::with_epsilon(1e-3)
                .solve_dinkelbach(&model)
                .unwrap()
                .strategy_revenue
        });
    });
    group.finish();
}

/// Thread-scaling of the intra-solve parallel Bellman/chain sweeps on a
/// *single* instance — the acceptance workload of the row-block parallelism
/// layer: one full warm-free Dinkelbach analysis (several relative-value-
/// iteration solves plus fused revenue evaluations) at `p = 0.3, γ = 0.5`,
/// solved with 1/2/4/8 intra-solve threads. Results are bit-identical across
/// the row; only the wall-clock time may differ. The `d = 3, f = 2` row
/// (tens of thousands of states) is gated behind `SM_BENCH_EXPENSIVE`; the
/// numbers feed the "Intra-solve scaling" table in `EXPERIMENTS.md`.
fn bench_intra_parallel_scaling(c: &mut Criterion) {
    let mut configs: Vec<(usize, usize)> = vec![(2, 2)];
    if sm_bench::expensive_enabled() {
        configs.push((3, 2));
    }
    for (depth, forks) in configs {
        let family = ParametricModel::build(depth, forks, 4).unwrap();
        let model = family.instantiate(0.3, 0.5).unwrap();
        let mut group = c.benchmark_group(format!("solver/intra_parallel_d{depth}_f{forks}"));
        group.sample_size(5);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("threads", threads),
                &threads,
                |b, &threads| {
                    let procedure = AnalysisProcedure::new(
                        AnalysisConfig::with_epsilon(1e-3)
                            .with_parallelism(SolverParallelism::threads(threads)),
                    );
                    b.iter(|| procedure.solve_dinkelbach(&model).unwrap().strategy_revenue);
                },
            );
        }
        group.finish();
    }
}

/// Sweep-kernel ablation on one relative-value-iteration solve at fixed
/// `β = 0.35`: full Jacobi sweeps vs in-place Gauss-Seidel evaluation
/// sweeps vs the prioritized residual-thresholded variant. Certified bounds
/// come from full Jacobi Bellman sweeps under every kernel, so the three
/// rows solve the same problem to the same certificate — only the
/// wall-clock time may differ. The `d = 3, f = 2` and `d = 4, f = 3` rows
/// are gated behind `SM_BENCH_EXPENSIVE` (the d4f3 arena holds millions of
/// states); their numbers feed the "Scaling to d = 4, f = 3" section of
/// EXPERIMENTS.md.
fn bench_sweep_kernels(c: &mut Criterion) {
    // `(depth, forks, levels)`: the d4f3 scale target runs at level budget
    // l = 2 — the only budget whose reachable set fits the solver's default
    // 12M-state limit (~3.0M states / 22.9M transitions at l = 2).
    let mut configs: Vec<(usize, usize, usize)> = vec![(2, 2, 4)];
    if sm_bench::expensive_enabled() {
        configs.push((3, 2, 4));
        configs.push((4, 3, 2));
    }
    for (depth, forks, levels) in configs {
        let family = ParametricModel::build(depth, forks, levels).unwrap();
        let model = family.instantiate(0.3, 0.5).unwrap();
        let rewards = model.beta_rewards(0.35).unwrap();
        // The d4f3 row solves cold (no warm start) — at the 1e-6 precision of
        // the smaller rows a single solve would dominate the nightly budget,
        // so it runs at 1e-4, matching the d4f3 thread-scaling group.
        let epsilon = if depth >= 4 { 1e-4 } else { 1e-6 };
        let mut group = c.benchmark_group(format!("solver/kernel_d{depth}_f{forks}"));
        group.sample_size(3);
        for (name, kernel) in [
            ("jacobi", SweepKernel::Jacobi),
            ("gauss_seidel", SweepKernel::GaussSeidel),
            ("prioritized", SweepKernel::Prioritized { threshold: 1e-7 }),
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, &kernel| {
                let solver = RelativeValueIteration::with_epsilon(epsilon).with_kernel(kernel);
                b.iter(|| solver.solve(model.mdp(), &rewards).unwrap().gain);
            });
        }
        group.finish();
    }
}

/// Thread-scaling of the parallel Jacobi Bellman sweeps on the `d = 4,
/// f = 3` arena — the scale target of the compact-arena work: one
/// relative-value-iteration solve at fixed `β` per thread count. Gated
/// entirely behind `SM_BENCH_EXPENSIVE`; runs in the nightly CI job.
fn bench_d4f3_thread_scaling(c: &mut Criterion) {
    if !sm_bench::expensive_enabled() {
        return;
    }
    // Level budget l = 2: see `bench_sweep_kernels` for the sizing argument.
    let family = ParametricModel::build(4, 3, 2).unwrap();
    let model = family.instantiate(0.3, 0.5).unwrap();
    let rewards = model.beta_rewards(0.35).unwrap();
    let mut group = c.benchmark_group("solver/intra_parallel_d4_f3");
    group.sample_size(2);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let solver = RelativeValueIteration::with_epsilon(1e-4)
                    .with_parallelism(SolverParallelism::threads(threads));
                b.iter(|| solver.solve(model.mdp(), &rewards).unwrap().gain);
            },
        );
    }
    group.finish();
}

fn bench_model_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/model_build");
    for (depth, forks) in [(2usize, 1usize), (2, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{depth}_f{forks}")),
            &(depth, forks),
            |b, &(depth, forks)| {
                b.iter(|| {
                    let params = AttackParams::new(0.3, 0.5, depth, forks, 4).unwrap();
                    SelfishMiningModel::build(&params).unwrap().num_states()
                });
            },
        );
    }
    group.finish();
}

/// The seed's per-point analysis pipeline, reproduced verbatim for the
/// before/after sweep benchmark: a cold Dinkelbach iteration from `β = 0`
/// with pure (non-interleaved) relative value iteration at the seed's inner
/// precision `10⁻⁶`, the exact revenue evaluated as two *separate*
/// `iterative_gain` passes over the induced chain, and the historical
/// `finalize` that re-solved the MDP at `β_low`. Kept self-contained in this
/// bench so the comparison measures the pipeline this PR replaced, not
/// today's (already accelerated) shared components in disguise.
fn seed_dinkelbach_revenue(model: &SelfishMiningModel, epsilon: f64) -> f64 {
    let solver = RelativeValueIteration {
        epsilon: 1e-6,
        evaluation_sweeps: 0,
        ..Default::default()
    };
    let seed_revenue = |strategy: &sm_mdp::PositionalStrategy| -> f64 {
        let chain = model.mdp().induced_chain(strategy).unwrap();
        let r_adv = model
            .adversary_rewards()
            .strategy_rewards(model.mdp(), strategy)
            .unwrap();
        let r_hon = model
            .honest_rewards()
            .strategy_rewards(model.mdp(), strategy)
            .unwrap();
        let adv = sm_markov::iterative_gain(&chain, &r_adv, 1e-9, 5_000_000).unwrap();
        let hon = sm_markov::iterative_gain(&chain, &r_hon, 1e-9, 5_000_000).unwrap();
        adv / (adv + hon)
    };
    let mut beta = 0.0;
    for _ in 0..200 {
        let rewards = model.beta_rewards(beta).unwrap();
        let result = solver.solve(model.mdp(), &rewards).unwrap();
        let revenue = seed_revenue(&result.strategy);
        if (revenue - beta).abs() < epsilon || result.gain.abs() <= 1e-9 {
            // The seed's finalize: one more full solve at β_low plus one more
            // revenue evaluation.
            let rewards = model.beta_rewards(revenue.min(1.0)).unwrap();
            let finalized = solver.solve(model.mdp(), &rewards).unwrap();
            return seed_revenue(&finalized.strategy);
        }
        beta = revenue;
    }
    panic!("seed dinkelbach failed to converge");
}

/// Before/after of the parameterized-arena tentpole on the acceptance
/// workload: the full Figure-2 coarse sweep (`coarse_p_grid` ×
/// `PAPER_GAMMA_GRID` × the default attack grid, single-tree baseline
/// included).
///
/// * `per_point_rebuild` — the pipeline this PR replaced: a full
///   breadth-first model construction plus the seed's cold Dinkelbach
///   analysis ([`seed_dinkelbach_revenue`]) for every single grid point.
/// * `parametric_warm_engine` — the `sm-sweep` engine: one parametric arena
///   per `(d, f)` shared across the grid, in-place `(p, γ)` re-instantiation
///   per point, and warm-started solves along each `p` curve, fanned out
///   over the worker pool.
///
/// Measured numbers are recorded in CHANGES.md / EXPERIMENTS.md.
fn bench_figure2_coarse_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep/figure2_coarse");
    group.sample_size(2);
    let attack_grid = [(1usize, 1usize), (2, 1), (2, 2)];
    let epsilon = 1e-3;
    let ps = coarse_p_grid();

    group.bench_function("per_point_rebuild", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &gamma in &PAPER_GAMMA_GRID {
                for &p in &ps {
                    for &(depth, forks) in &attack_grid {
                        let params = AttackParams::new(p, gamma, depth, forks, 4).unwrap();
                        let model = SelfishMiningModel::build(&params).unwrap();
                        acc += seed_dinkelbach_revenue(&model, epsilon);
                    }
                    let single_tree = SingleTreeAttack {
                        p,
                        gamma,
                        max_depth: 4,
                        max_width: 5,
                    }
                    .analyse()
                    .unwrap();
                    acc += single_tree.relative_revenue;
                }
            }
            acc
        });
    });

    group.bench_function("parametric_warm_engine", |b| {
        let config = SweepConfig {
            attack_grid: attack_grid.to_vec(),
            epsilon,
            ..SweepConfig::default()
        };
        b.iter(|| {
            config
                .run(&PAPER_GAMMA_GRID, &ps)
                .unwrap()
                .iter()
                .map(|point| point.attack_revenue.iter().sum::<f64>() + point.single_tree_revenue)
                .sum::<f64>()
        });
    });
    group.finish();
}

/// Certificate-audit throughput: one full re-validation (fingerprint, shape
/// obligations, three Jacobi residual passes) of a certified solve on the
/// pinned topologies. The audit must stay a single O(transitions) pass per
/// sweep — a regression here means the checker grew solver-shaped work. The
/// `d = 3, f = 2` row is gated behind `SM_BENCH_EXPENSIVE` like the other
/// large-arena groups; its setup includes one certified solve.
fn bench_certificate_audit(c: &mut Criterion) {
    use sm_audit::{audit_certificate, AuditConfig, CertificateArtifact};

    let mut configs: Vec<(usize, usize)> = vec![(2, 2)];
    if sm_bench::expensive_enabled() {
        configs.push((3, 2));
    }
    for (depth, forks) in configs {
        let family = ParametricModel::build(depth, forks, 4).unwrap();
        let solves =
            selfish_mining::experiments::attack_curve_certified(&family, 0.5, &[0.3], 1e-3, false)
                .unwrap();
        let model = family.instantiate(0.3, 0.5).unwrap();
        let artifact = CertificateArtifact::from_certified(&solves[0], &model).unwrap();
        let config = AuditConfig::default();
        let mut group = c.benchmark_group("audit");
        group.sample_size(10);
        group.bench_function(format!("certificate_d{depth}f{forks}"), |b| {
            b.iter(|| audit_certificate(&artifact, &model, &config).passed());
        });
        group.finish();
    }
}

/// Warm-vs-cold latency of the certified-analysis query service on its
/// acceptance workload (`d = 2, f = 2`, `ε = 10⁻³`, `p` off the anchor
/// lattice). The cold arm stands up a fresh service per iteration, so it
/// pays the arena build, the whole anchor chain up to `p`'s cell and the
/// final probe; the warm arm asks one long-lived service a *distinct,
/// never-repeated* off-lattice `p` inside an already-advanced cell each
/// iteration, so the timed work is exactly one warm-started probe — no memo
/// hits, no chain advances, no arena builds. Both arms return bit-identical
/// intervals for equal queries (the determinism suite in `tests/service.rs`
/// checks that); this group gates only the speedup, which must stay ≥ 5×.
fn bench_service_warm_vs_cold(c: &mut Criterion) {
    use sm_service::{Query, Service, ServiceConfig};
    use std::cell::Cell;

    let query = |p: f64| Query {
        depth: 2,
        forks_per_block: 2,
        p,
        ..Query::default()
    };
    let mut group = c.benchmark_group("service/query_warm_vs_cold");
    group.sample_size(10);
    group.bench_function("cold_first_query_d2_f2", |b| {
        b.iter(|| {
            let service = Service::new(ServiceConfig::default()).unwrap();
            service.answer(&query(0.325)).unwrap().interval.beta_low
        });
    });
    group.bench_function("warm_probe_d2_f2", |b| {
        let service = Service::new(ServiceConfig::default()).unwrap();
        service.answer(&query(0.325)).unwrap();
        let step = Cell::new(0u64);
        b.iter(|| {
            let offset = step.get();
            step.set(offset + 1);
            let p = 0.300_001 + offset as f64 * 1e-6;
            service.answer(&query(p)).unwrap().interval.beta_low
        });
    });
    group.finish();
}

/// Per-backend arrival-draw throughput: 10 000 `next_block` draws at
/// `p = 0.3, σ = 3` through each consensus backend's `ArrivalSource`. The
/// Bernoulli source is one RNG draw per step and anchors the group; the
/// proof-backed sources pay their real proof mechanisms (stake-table
/// lottery, plot race, space-time prove + VDF, VDF beacon), so this gates
/// the conformance estimator's per-step cost under `--backends all` — a
/// regression here multiplies straight into every multi-backend
/// certification run.
fn bench_backend_draw(c: &mut Criterion) {
    use rand::{rngs::StdRng, SeedableRng};
    use selfish_mining::ConsensusBackend;

    let mut group = c.benchmark_group("arrivals/backend_draw");
    group.sample_size(10);
    for backend in ConsensusBackend::default_family() {
        group.bench_function(format!("{backend}_10k_draws"), |b| {
            b.iter(|| {
                let mut source = backend.source(0.3, 0xA11CE).unwrap();
                let mut rng = StdRng::seed_from_u64(0xFACADE);
                let mut adversary_wins = 0usize;
                for _ in 0..10_000 {
                    if let sm_chain::ArrivalEvent::Adversary { .. } = source.next_block(&mut rng, 3)
                    {
                        adversary_wins += 1;
                    }
                }
                adversary_wins
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_backend_draw,
    bench_mean_payoff_methods,
    bench_search_strategies,
    bench_model_construction,
    bench_construction_plus_vi,
    bench_intra_parallel_scaling,
    bench_sweep_kernels,
    bench_d4f3_thread_scaling,
    bench_figure2_coarse_sweep,
    bench_certificate_audit,
    bench_service_warm_vs_cold
);
criterion_main!(benches);
