//! Micro-benchmarks of the solver substrate: mean-payoff solvers on the
//! selfish-mining MDP and the building blocks they rest on. These are ablation
//! benches for the design choices discussed in DESIGN.md (value iteration vs
//! policy iteration vs LP; bisection vs Dinkelbach search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfish_mining::{AnalysisProcedure, AttackParams, SelfishMiningModel};
use sm_mdp::{MeanPayoffMethod, MeanPayoffSolver};

fn model() -> SelfishMiningModel {
    let params = AttackParams::new(0.3, 0.5, 2, 1, 4).unwrap();
    SelfishMiningModel::build(&params).unwrap()
}

fn bench_mean_payoff_methods(c: &mut Criterion) {
    let model = model();
    let rewards = model.beta_rewards(0.35).unwrap();
    let mut group = c.benchmark_group("solver/mean_payoff_d2_f1");
    for (name, method) in [
        ("value_iteration", MeanPayoffMethod::ValueIteration { epsilon: 1e-6 }),
        ("policy_iteration", MeanPayoffMethod::PolicyIteration),
        ("linear_programming", MeanPayoffMethod::LinearProgramming),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &method, |b, method| {
            let solver = MeanPayoffSolver::new(method.clone());
            b.iter(|| solver.solve(model.mdp(), &rewards).unwrap().gain);
        });
    }
    group.finish();
}

fn bench_search_strategies(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("solver/search_d2_f1");
    group.sample_size(10);
    group.bench_function("bisection", |b| {
        b.iter(|| {
            AnalysisProcedure::with_epsilon(1e-3)
                .solve(&model)
                .unwrap()
                .expected_relative_revenue
        });
    });
    group.bench_function("dinkelbach", |b| {
        b.iter(|| {
            AnalysisProcedure::with_epsilon(1e-3)
                .solve_dinkelbach(&model)
                .unwrap()
                .strategy_revenue
        });
    });
    group.finish();
}

fn bench_model_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/model_build");
    for (depth, forks) in [(2usize, 1usize), (2, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{depth}_f{forks}")),
            &(depth, forks),
            |b, &(depth, forks)| {
                b.iter(|| {
                    let params = AttackParams::new(0.3, 0.5, depth, forks, 4).unwrap();
                    SelfishMiningModel::build(&params).unwrap().num_states()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mean_payoff_methods,
    bench_search_strategies,
    bench_model_construction
);
criterion_main!(benches);
