//! A small, deterministic, non-cryptographic hash used by the simulated proof
//! systems.
//!
//! The reproduction deliberately avoids external cryptography crates: the
//! analysis only needs *deterministic pseudo-randomness* to derive challenges
//! and simulate lotteries, not collision resistance. The implementation is a
//! 256-bit construction built from four independently-keyed FNV-1a streams
//! followed by an avalanche mix, which is plenty for driving simulations.

/// A 256-bit digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Interprets the first 8 bytes as a big-endian integer, handy for
    /// threshold comparisons in lottery simulations.
    pub fn leading_u64(&self) -> u64 {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(bytes)
    }

    /// Maps the digest to a float uniformly distributed in `[0, 1)`.
    pub fn as_unit_interval(&self) -> f64 {
        self.leading_u64() as f64 / (u64::MAX as f64 + 1.0)
    }

    /// Hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001b3;

fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut state = FNV_OFFSET ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for &byte in data {
        state ^= u64::from(byte);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ceb9fe1a85ec53);
    x ^= x >> 33;
    x
}

/// Hashes a byte string into a [`Digest`].
///
/// # Example
///
/// ```
/// let a = sm_proofs::hash_bytes(b"block");
/// let b = sm_proofs::hash_bytes(b"block");
/// let c = sm_proofs::hash_bytes(b"other");
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn hash_bytes(data: &[u8]) -> Digest {
    let mut out = [0u8; 32];
    for lane in 0..4u64 {
        let word = avalanche(fnv1a(lane.wrapping_add(1), data));
        out[(lane as usize) * 8..(lane as usize + 1) * 8].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// Hashes the concatenation of several byte strings, with length prefixes so
/// that `("ab", "c")` and `("a", "bc")` hash differently.
pub fn hash_concat(parts: &[&[u8]]) -> Digest {
    let mut buffer = Vec::with_capacity(parts.iter().map(|p| p.len() + 8).sum());
    for part in parts {
        buffer.extend_from_slice(&(part.len() as u64).to_be_bytes());
        buffer.extend_from_slice(part);
    }
    hash_bytes(&buffer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_collision_free_on_small_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..1000 {
            let digest = hash_bytes(&i.to_be_bytes());
            assert!(seen.insert(digest), "collision at {i}");
        }
    }

    #[test]
    fn concat_length_prefixing_prevents_ambiguity() {
        assert_ne!(hash_concat(&[b"ab", b"c"]), hash_concat(&[b"a", b"bc"]));
        assert_eq!(hash_concat(&[b"ab", b"c"]), hash_concat(&[b"ab", b"c"]));
    }

    #[test]
    fn unit_interval_mapping_is_in_range_and_spread_out() {
        let mut values = Vec::new();
        for i in 0u32..256 {
            let v = hash_bytes(&i.to_be_bytes()).as_unit_interval();
            assert!((0.0..1.0).contains(&v));
            values.push(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean} far from 0.5");
    }

    #[test]
    fn hex_rendering_has_expected_length() {
        assert_eq!(hash_bytes(b"x").to_hex().len(), 64);
        assert_eq!(Digest::ZERO.leading_u64(), 0);
    }
}
