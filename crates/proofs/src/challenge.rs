//! Challenge derivation schedules: unpredictable (Bitcoin-like) versus
//! predictable (Ouroboros-like).
//!
//! The paper's central modelling choice is that the blockchain is
//! *unpredictable*: the challenge for the block at depth `i + 1` is derived
//! from the block at depth `i`, so an adversary cannot know in advance when it
//! will be eligible to produce blocks. The alternative, used by predictable
//! protocols, fixes the challenge randomness for a long window of consecutive
//! blocks. Both schedules are provided so the chain simulator can be run in
//! either regime (the predictable regime is used by an ablation experiment).

use crate::{hash_concat, Digest};

/// A rule for deriving the proof-system challenge of the next block.
pub trait ChallengeSchedule {
    /// Challenge for the block extending `parent` at the given height.
    fn challenge(&self, parent: &Digest, height: u64) -> Digest;

    /// Whether a miner can predict challenges for blocks it has not yet seen
    /// the parents of.
    fn is_predictable(&self) -> bool;
}

/// Bitcoin-like unpredictable schedule: the challenge is a hash of the parent
/// block, so it is only known once the parent exists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnpredictableSchedule;

impl ChallengeSchedule for UnpredictableSchedule {
    fn challenge(&self, parent: &Digest, height: u64) -> Digest {
        hash_concat(&[b"challenge", &parent.0, &height.to_be_bytes()])
    }

    fn is_predictable(&self) -> bool {
        false
    }
}

/// Ouroboros-like predictable schedule: the challenge only depends on the
/// epoch (a window of `epoch_length` consecutive heights) and a fixed seed, so
/// a miner can compute all challenges of the current epoch in advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictableSchedule {
    /// Number of consecutive blocks sharing the same challenge randomness.
    pub epoch_length: u64,
    /// Seed fixed at the start of the epoch (e.g. from an earlier beacon).
    pub seed: u64,
}

impl PredictableSchedule {
    /// Creates a schedule with the given epoch length and seed.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_length` is zero.
    pub fn new(epoch_length: u64, seed: u64) -> Self {
        assert!(epoch_length > 0, "epoch length must be positive");
        PredictableSchedule { epoch_length, seed }
    }
}

impl ChallengeSchedule for PredictableSchedule {
    fn challenge(&self, _parent: &Digest, height: u64) -> Digest {
        let epoch = height / self.epoch_length;
        hash_concat(&[
            b"predictable-challenge",
            &self.seed.to_be_bytes(),
            &epoch.to_be_bytes(),
            &(height % self.epoch_length).to_be_bytes(),
        ])
    }

    fn is_predictable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_bytes;

    #[test]
    fn unpredictable_challenges_depend_on_parent() {
        let schedule = UnpredictableSchedule;
        let parent_a = hash_bytes(b"a");
        let parent_b = hash_bytes(b"b");
        assert_ne!(
            schedule.challenge(&parent_a, 10),
            schedule.challenge(&parent_b, 10)
        );
        assert_eq!(
            schedule.challenge(&parent_a, 10),
            schedule.challenge(&parent_a, 10)
        );
        assert!(!schedule.is_predictable());
    }

    #[test]
    fn predictable_challenges_ignore_parent_within_epoch() {
        let schedule = PredictableSchedule::new(32, 7);
        let parent_a = hash_bytes(b"a");
        let parent_b = hash_bytes(b"b");
        assert_eq!(
            schedule.challenge(&parent_a, 5),
            schedule.challenge(&parent_b, 5)
        );
        assert!(schedule.is_predictable());
    }

    #[test]
    fn predictable_challenges_change_across_heights_and_epochs() {
        let schedule = PredictableSchedule::new(4, 7);
        let parent = hash_bytes(b"a");
        assert_ne!(
            schedule.challenge(&parent, 0),
            schedule.challenge(&parent, 1)
        );
        assert_ne!(
            schedule.challenge(&parent, 3),
            schedule.challenge(&parent, 4)
        );
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_length_is_rejected() {
        let _ = PredictableSchedule::new(0, 1);
    }
}
