//! Simulated proofs of space and time (PoST), the Chia-style combination of
//! proofs of space with verifiable delay functions.
//!
//! A PoST miner answers a space challenge from its plot and must then run a
//! VDF on top of the block it extends; the number of VDFs it owns therefore
//! bounds how many blocks it can try to extend concurrently — this is the
//! finite `k` of `(p, k)`-mining, and the reason the paper's bounded-fork
//! assumption is most natural for PoST chains.

use crate::pospace::{ProofOfSpace, SpaceProof};
use crate::vdf::{Vdf, VdfProof};
use crate::{hash_concat, Digest, ProofSystemKind};

/// A PoST miner: one plot plus a fixed number of VDF processors.
#[derive(Debug, Clone, PartialEq)]
pub struct ProofOfSpaceTime {
    plot: ProofOfSpace,
    vdf: Vdf,
    num_vdfs: usize,
}

/// A combined PoST proof for one block candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PostProof {
    /// The space component.
    pub space: SpaceProof,
    /// The time (VDF) component, computed over the space proof and challenge.
    pub time: VdfProof,
}

impl ProofOfSpaceTime {
    /// Creates a PoST miner with the given plot seed/size, VDF parameters and
    /// number of VDF processors.
    ///
    /// # Panics
    ///
    /// Panics if `plot_size` or `num_vdfs` is zero or the VDF parameters are
    /// invalid.
    pub fn new(plot_seed: u64, plot_size: usize, vdf_iterations: u64, num_vdfs: usize) -> Self {
        assert!(num_vdfs > 0, "a PoST miner needs at least one VDF");
        ProofOfSpaceTime {
            plot: ProofOfSpace::plot(plot_seed, plot_size),
            vdf: Vdf::new(vdf_iterations, vdf_iterations.div_ceil(8).max(1)),
            num_vdfs,
        }
    }

    /// The `(p, k)` bound implied by this miner's hardware: it can extend at
    /// most as many blocks concurrently as it has VDFs.
    pub fn proof_system_kind(&self) -> ProofSystemKind {
        ProofSystemKind::ProofOfSpaceTime {
            vdfs: self.num_vdfs,
        }
    }

    /// Number of VDF processors (the paper's `k`).
    pub fn num_vdfs(&self) -> usize {
        self.num_vdfs
    }

    /// Size of the plot (proxy for the space resource).
    pub fn plot_size(&self) -> usize {
        self.plot.size()
    }

    /// Produces a combined proof for the given challenge, provided a VDF
    /// processor is available.
    ///
    /// `busy_vdfs` is the number of VDFs already committed to other block
    /// candidates; `None` is returned when all processors are busy, which is
    /// exactly the constraint that bounds the attack's forking in PoST chains.
    pub fn prove(&self, challenge: &Digest, busy_vdfs: usize) -> Option<PostProof> {
        if busy_vdfs >= self.num_vdfs {
            return None;
        }
        let space = self.plot.prove(challenge);
        let vdf_input = hash_concat(&[
            b"post",
            &challenge.0,
            &space.value.to_be_bytes(),
            &(space.index as u64).to_be_bytes(),
        ]);
        let time = self.vdf.evaluate(&vdf_input);
        Some(PostProof { space, time })
    }

    /// Verifies a combined proof.
    pub fn verify(&self, challenge: &Digest, proof: &PostProof) -> bool {
        if !self.plot.verify(challenge, &proof.space) {
            return false;
        }
        let vdf_input = hash_concat(&[
            b"post",
            &challenge.0,
            &proof.space.value.to_be_bytes(),
            &(proof.space.index as u64).to_be_bytes(),
        ]);
        self.vdf.verify(&vdf_input, &proof.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_bytes;

    fn miner() -> ProofOfSpaceTime {
        ProofOfSpaceTime::new(11, 64, 32, 2)
    }

    #[test]
    fn proofs_verify_end_to_end() {
        let miner = miner();
        let challenge = hash_bytes(b"tip");
        let proof = miner.prove(&challenge, 0).expect("a free VDF exists");
        assert!(miner.verify(&challenge, &proof));
    }

    #[test]
    fn vdf_budget_limits_parallel_blocks() {
        let miner = miner();
        let challenge = hash_bytes(b"tip");
        assert!(miner.prove(&challenge, 1).is_some());
        assert!(miner.prove(&challenge, 2).is_none());
        assert_eq!(miner.num_vdfs(), 2);
        assert_eq!(
            miner.proof_system_kind().max_parallel_blocks(),
            miner.num_vdfs()
        );
    }

    #[test]
    fn tampered_space_component_fails() {
        let miner = miner();
        let challenge = hash_bytes(b"tip");
        let mut proof = miner.prove(&challenge, 0).unwrap();
        proof.space.value ^= 1;
        assert!(!miner.verify(&challenge, &proof));
    }

    #[test]
    fn proof_is_challenge_specific() {
        let miner = miner();
        let proof = miner.prove(&hash_bytes(b"a"), 0).unwrap();
        assert!(!miner.verify(&hash_bytes(b"b"), &proof));
    }

    #[test]
    #[should_panic(expected = "at least one VDF")]
    fn zero_vdfs_rejected() {
        let _ = ProofOfSpaceTime::new(1, 16, 8, 0);
    }
}
