//! Simulated verifiable delay function (VDF).
//!
//! A VDF is an inherently sequential computation whose output can be verified
//! cheaply. The simulation uses iterated hashing: evaluation takes
//! `iterations` sequential hash applications, and verification recomputes a
//! logarithmic number of spot checks over stored intermediate checkpoints.
//! The important property for the paper's model is the *bound it induces on
//! parallel mining*: in a PoST chain the adversary must dedicate one VDF to
//! every block it tries to extend, which is exactly the `k` of
//! `(p, k)`-mining.

use crate::{hash_concat, Digest};

/// A VDF instance defined by its number of sequential iterations and a
/// checkpointing interval used for verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vdf {
    /// Number of sequential hash applications per evaluation.
    pub iterations: u64,
    /// Interval at which intermediate values are stored in the proof.
    pub checkpoint_interval: u64,
}

/// The output of a VDF evaluation together with its checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VdfProof {
    /// Final output of the sequential computation.
    pub output: Digest,
    /// Intermediate values stored every `checkpoint_interval` steps
    /// (including the final value).
    pub checkpoints: Vec<Digest>,
}

impl Vdf {
    /// Creates a VDF instance.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` or `checkpoint_interval` is zero.
    pub fn new(iterations: u64, checkpoint_interval: u64) -> Self {
        assert!(iterations > 0, "iterations must be positive");
        assert!(
            checkpoint_interval > 0,
            "checkpoint interval must be positive"
        );
        Vdf {
            iterations,
            checkpoint_interval,
        }
    }

    fn step(value: &Digest) -> Digest {
        hash_concat(&[b"vdf-step", &value.0])
    }

    /// Sequentially evaluates the VDF on `input`.
    pub fn evaluate(&self, input: &Digest) -> VdfProof {
        let mut value = hash_concat(&[b"vdf-seed", &input.0]);
        let mut checkpoints = Vec::new();
        for i in 1..=self.iterations {
            value = Self::step(&value);
            if i % self.checkpoint_interval == 0 || i == self.iterations {
                checkpoints.push(value);
            }
        }
        VdfProof {
            output: value,
            checkpoints,
        }
    }

    /// Verifies a proof by recomputing every checkpointed segment.
    ///
    /// The simulation verifies all segments (still far cheaper than callers
    /// that would re-run the whole evaluation without checkpoints); a real VDF
    /// would use a succinct argument instead.
    pub fn verify(&self, input: &Digest, proof: &VdfProof) -> bool {
        if proof.checkpoints.is_empty() || proof.checkpoints.last() != Some(&proof.output) {
            return false;
        }
        let mut value = hash_concat(&[b"vdf-seed", &input.0]);
        let mut checkpoint_index = 0;
        for i in 1..=self.iterations {
            value = Self::step(&value);
            if i % self.checkpoint_interval == 0 || i == self.iterations {
                if proof.checkpoints.get(checkpoint_index) != Some(&value) {
                    return false;
                }
                checkpoint_index += 1;
            }
        }
        checkpoint_index == proof.checkpoints.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_bytes;

    #[test]
    fn evaluation_verifies() {
        let vdf = Vdf::new(100, 10);
        let input = hash_bytes(b"block");
        let proof = vdf.evaluate(&input);
        assert!(vdf.verify(&input, &proof));
        assert_eq!(proof.checkpoints.len(), 10);
    }

    #[test]
    fn outputs_differ_per_input_and_are_deterministic() {
        let vdf = Vdf::new(50, 7);
        let a = vdf.evaluate(&hash_bytes(b"a"));
        let b = vdf.evaluate(&hash_bytes(b"b"));
        assert_ne!(a.output, b.output);
        assert_eq!(a, vdf.evaluate(&hash_bytes(b"a")));
    }

    #[test]
    fn tampered_proofs_fail_verification() {
        let vdf = Vdf::new(60, 6);
        let input = hash_bytes(b"block");
        let mut proof = vdf.evaluate(&input);
        proof.checkpoints[3] = hash_bytes(b"garbage");
        assert!(!vdf.verify(&input, &proof));

        let mut truncated = vdf.evaluate(&input);
        truncated.checkpoints.pop();
        assert!(!vdf.verify(&input, &truncated));

        let empty = VdfProof {
            output: hash_bytes(b"x"),
            checkpoints: vec![],
        };
        assert!(!vdf.verify(&input, &empty));
    }

    #[test]
    fn proof_for_wrong_input_is_rejected() {
        let vdf = Vdf::new(40, 5);
        let proof = vdf.evaluate(&hash_bytes(b"right"));
        assert!(!vdf.verify(&hash_bytes(b"wrong"), &proof));
    }

    #[test]
    #[should_panic(expected = "iterations must be positive")]
    fn zero_iterations_rejected() {
        let _ = Vdf::new(0, 1);
    }
}
