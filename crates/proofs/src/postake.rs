//! Simulated proof of stake (the `(p, ∞)`-mining case).
//!
//! A PoStake block producer is elected with probability proportional to its
//! stake. The simulation keeps a stake table and evaluates a deterministic
//! lottery per `(challenge, slot, staker)` triple — enough to drive the chain
//! simulator and to demonstrate why cheap proofs enable mining on many blocks
//! at once (the nothing-at-stake behaviour the paper analyses).

use crate::{hash_concat, Digest};

/// Identifier of a staker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StakerId(pub usize);

/// A stake distribution over stakers.
#[derive(Debug, Clone, PartialEq)]
pub struct ProofOfStake {
    stakes: Vec<(StakerId, f64)>,
    total_stake: f64,
}

/// An eligibility proof for a staker in a slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StakeProof {
    /// The staker the proof belongs to.
    pub staker: StakerId,
    /// The slot (challenge instance) the proof is valid for.
    pub slot: u64,
    /// The lottery value drawn by the staker, in `[0, 1)`.
    pub lottery_value: f64,
}

impl ProofOfStake {
    /// Creates a stake table. Negative stakes are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any stake is negative or not finite.
    pub fn new(stakes: Vec<(StakerId, f64)>) -> Self {
        assert!(
            stakes.iter().all(|&(_, s)| s.is_finite() && s >= 0.0),
            "stakes must be non-negative"
        );
        let total_stake = stakes.iter().map(|&(_, s)| s).sum();
        ProofOfStake {
            stakes,
            total_stake,
        }
    }

    /// The fraction of total stake held by a staker.
    pub fn stake_share(&self, staker: StakerId) -> f64 {
        if self.total_stake <= 0.0 {
            return 0.0;
        }
        self.stakes
            .iter()
            .filter(|&&(id, _)| id == staker)
            .map(|&(_, s)| s)
            .sum::<f64>()
            / self.total_stake
    }

    /// Deterministic per-staker lottery value for a challenge and slot.
    pub fn lottery_value(&self, challenge: &Digest, slot: u64, staker: StakerId) -> f64 {
        hash_concat(&[
            b"postake",
            &challenge.0,
            &slot.to_be_bytes(),
            &(staker.0 as u64).to_be_bytes(),
        ])
        .as_unit_interval()
    }

    /// Whether the staker is eligible to produce the block of `slot` under the
    /// given activation threshold `difficulty ∈ [0, 1]`: the staker wins if its
    /// lottery value falls below `difficulty · share`.
    pub fn prove(
        &self,
        challenge: &Digest,
        slot: u64,
        staker: StakerId,
        difficulty: f64,
    ) -> Option<StakeProof> {
        let share = self.stake_share(staker);
        let value = self.lottery_value(challenge, slot, staker);
        (value < difficulty * share).then_some(StakeProof {
            staker,
            slot,
            lottery_value: value,
        })
    }

    /// Verifies a claimed eligibility proof.
    pub fn verify(&self, challenge: &Digest, proof: &StakeProof, difficulty: f64) -> bool {
        let recomputed = self.lottery_value(challenge, proof.slot, proof.staker);
        (recomputed - proof.lottery_value).abs() < f64::EPSILON
            && recomputed < difficulty * self.stake_share(proof.staker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_bytes;

    fn table() -> ProofOfStake {
        ProofOfStake::new(vec![(StakerId(0), 30.0), (StakerId(1), 70.0)])
    }

    #[test]
    fn stake_shares_are_normalised() {
        let pos = table();
        assert!((pos.stake_share(StakerId(0)) - 0.3).abs() < 1e-12);
        assert!((pos.stake_share(StakerId(1)) - 0.7).abs() < 1e-12);
        assert_eq!(pos.stake_share(StakerId(9)), 0.0);
    }

    #[test]
    fn winning_frequency_tracks_stake() {
        let pos = table();
        let challenge = hash_bytes(b"epoch");
        let difficulty = 0.9;
        let slots = 5_000u64;
        let small = (0..slots)
            .filter(|&s| pos.prove(&challenge, s, StakerId(0), difficulty).is_some())
            .count() as f64;
        let large = (0..slots)
            .filter(|&s| pos.prove(&challenge, s, StakerId(1), difficulty).is_some())
            .count() as f64;
        // The larger staker should win roughly 7/3 times as often.
        assert!(large > small * 1.5, "large {large} small {small}");
    }

    #[test]
    fn proofs_verify_and_reject_tampering() {
        let pos = table();
        let challenge = hash_bytes(b"epoch");
        let difficulty = 1.0;
        let slot = (0..10_000u64)
            .find(|&s| pos.prove(&challenge, s, StakerId(1), difficulty).is_some())
            .expect("some slot wins");
        let proof = pos
            .prove(&challenge, slot, StakerId(1), difficulty)
            .unwrap();
        assert!(pos.verify(&challenge, &proof, difficulty));
        let forged = StakeProof {
            lottery_value: proof.lottery_value / 2.0,
            ..proof
        };
        assert!(!pos.verify(&challenge, &forged, difficulty));
    }

    #[test]
    fn empty_stake_table_never_wins() {
        let pos = ProofOfStake::new(vec![]);
        let challenge = hash_bytes(b"x");
        assert!(pos.prove(&challenge, 0, StakerId(0), 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_stakes_are_rejected() {
        let _ = ProofOfStake::new(vec![(StakerId(0), -1.0)]);
    }
}
