//! Simulated proofs of space.
//!
//! A proof of space demonstrates that the prover stores a large plot of
//! pre-computed data: on a challenge, the prover looks up the entry of its
//! plot closest to the challenge and the verifier checks the entry belongs to
//! the plot and measures its distance. The simulation reproduces exactly this
//! lookup structure (with the plot generated from a non-cryptographic hash),
//! so the chain simulator exercises the real code path: plot once, answer many
//! challenges cheaply — the property that makes mining on many blocks
//! essentially free and motivates the paper's attack.

use crate::{hash_concat, Digest};

/// A plot: `size` pseudo-random points derived from a plot seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProofOfSpace {
    seed: u64,
    points: Vec<u64>,
}

/// A response to a space challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceProof {
    /// Index of the plot entry used to answer.
    pub index: usize,
    /// The plot entry value.
    pub value: u64,
    /// Distance between the entry and the challenge point (smaller is better).
    pub quality: u64,
}

impl ProofOfSpace {
    /// Generates ("plots") `size` points from the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn plot(seed: u64, size: usize) -> Self {
        assert!(size > 0, "plot size must be positive");
        let points = (0..size as u64)
            .map(|i| hash_concat(&[b"plot", &seed.to_be_bytes(), &i.to_be_bytes()]).leading_u64())
            .collect();
        ProofOfSpace { seed, points }
    }

    /// Number of points stored in the plot (a proxy for allocated space).
    pub fn size(&self) -> usize {
        self.points.len()
    }

    /// Answers a challenge with the closest plot point.
    pub fn prove(&self, challenge: &Digest) -> SpaceProof {
        let target = challenge.leading_u64();
        let (index, &value) = self
            .points
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v.abs_diff(target))
            .expect("plot is non-empty");
        SpaceProof {
            index,
            value,
            quality: value.abs_diff(target),
        }
    }

    /// Verifies that a proof indeed refers to an entry of the plot with the
    /// claimed quality.
    pub fn verify(&self, challenge: &Digest, proof: &SpaceProof) -> bool {
        let expected = hash_concat(&[
            b"plot",
            &self.seed.to_be_bytes(),
            &(proof.index as u64).to_be_bytes(),
        ])
        .leading_u64();
        expected == proof.value && proof.quality == proof.value.abs_diff(challenge.leading_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_bytes;

    #[test]
    fn proofs_verify() {
        let plot = ProofOfSpace::plot(7, 128);
        let challenge = hash_bytes(b"c1");
        let proof = plot.prove(&challenge);
        assert!(plot.verify(&challenge, &proof));
        assert!(proof.index < plot.size());
    }

    #[test]
    fn tampered_proofs_are_rejected() {
        let plot = ProofOfSpace::plot(7, 128);
        let challenge = hash_bytes(b"c1");
        let mut proof = plot.prove(&challenge);
        proof.value ^= 1;
        assert!(!plot.verify(&challenge, &proof));
    }

    #[test]
    fn bigger_plots_give_better_quality_on_average() {
        let small = ProofOfSpace::plot(1, 16);
        let big = ProofOfSpace::plot(2, 1024);
        let mut small_total = 0u128;
        let mut big_total = 0u128;
        for i in 0u32..50 {
            let challenge = hash_bytes(&i.to_be_bytes());
            small_total += u128::from(small.prove(&challenge).quality);
            big_total += u128::from(big.prove(&challenge).quality);
        }
        assert!(
            big_total < small_total,
            "bigger plot should answer challenges more closely"
        );
    }

    #[test]
    fn different_seeds_give_different_plots() {
        let a = ProofOfSpace::plot(1, 32);
        let b = ProofOfSpace::plot(2, 32);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "plot size must be positive")]
    fn empty_plot_is_rejected() {
        let _ = ProofOfSpace::plot(1, 0);
    }
}
