//! Simulated hashcash-style proof of work.
//!
//! Proof of work is the `(p, 1)`-mining case of the paper's system model; the
//! simulator here exists so the chain simulator and the examples can contrast
//! the PoW and efficient-proof-system regimes with the same code path.

use crate::{hash_concat, Digest};

/// A hashcash puzzle instance: find a nonce such that
/// `H(challenge ‖ miner ‖ nonce)` interpreted as a number is below the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofOfWork {
    /// Upper bound the hash must stay below; smaller targets are harder.
    pub target: u64,
}

/// A successfully mined proof of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowSolution {
    /// The nonce that solves the puzzle.
    pub nonce: u64,
    /// The digest of the winning attempt.
    pub digest: Digest,
}

impl ProofOfWork {
    /// Creates a puzzle whose success probability per attempt is roughly
    /// `difficulty⁻¹`.
    ///
    /// # Panics
    ///
    /// Panics if `difficulty` is zero.
    pub fn with_difficulty(difficulty: u64) -> Self {
        assert!(difficulty > 0, "difficulty must be positive");
        ProofOfWork {
            target: u64::MAX / difficulty,
        }
    }

    /// Evaluates one attempt for a given nonce.
    pub fn attempt(&self, challenge: &Digest, miner: u64, nonce: u64) -> Option<PowSolution> {
        let digest = hash_concat(&[
            b"pow",
            &challenge.0,
            &miner.to_be_bytes(),
            &nonce.to_be_bytes(),
        ]);
        (digest.leading_u64() <= self.target).then_some(PowSolution { nonce, digest })
    }

    /// Grinds nonces `0..max_attempts` and returns the first solution.
    pub fn mine(&self, challenge: &Digest, miner: u64, max_attempts: u64) -> Option<PowSolution> {
        (0..max_attempts).find_map(|nonce| self.attempt(challenge, miner, nonce))
    }

    /// Verifies a claimed solution.
    pub fn verify(&self, challenge: &Digest, miner: u64, solution: &PowSolution) -> bool {
        match self.attempt(challenge, miner, solution.nonce) {
            Some(recomputed) => recomputed.digest == solution.digest,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_bytes;

    #[test]
    fn easy_puzzles_are_solved_and_verify() {
        let pow = ProofOfWork::with_difficulty(4);
        let challenge = hash_bytes(b"tip");
        let solution = pow.mine(&challenge, 1, 1000).expect("easy puzzle");
        assert!(pow.verify(&challenge, 1, &solution));
        // A different miner id invalidates the solution.
        assert!(!pow.verify(&challenge, 2, &solution));
    }

    #[test]
    fn harder_puzzles_need_more_attempts_on_average() {
        let challenge = hash_bytes(b"tip");
        let easy = ProofOfWork::with_difficulty(2);
        let hard = ProofOfWork::with_difficulty(64);
        let count = |pow: &ProofOfWork| {
            (0..2000u64)
                .filter(|&nonce| pow.attempt(&challenge, 9, nonce).is_some())
                .count()
        };
        assert!(count(&easy) > count(&hard));
    }

    #[test]
    fn success_rate_tracks_difficulty() {
        let pow = ProofOfWork::with_difficulty(10);
        let challenge = hash_bytes(b"rate");
        let trials = 20_000u64;
        let successes = (0..trials)
            .filter(|&nonce| pow.attempt(&challenge, 3, nonce).is_some())
            .count();
        let rate = successes as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "difficulty must be positive")]
    fn zero_difficulty_is_rejected() {
        let _ = ProofOfWork::with_difficulty(0);
    }
}
