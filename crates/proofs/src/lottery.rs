//! The `(p, k)`-mining abstraction of Section 2.1.
//!
//! Block production in every efficient proof system considered by the paper
//! reduces to a lottery: at each discrete time step, a miner that owns a
//! fraction `p` of the resource and works on `k` candidate blocks wins with
//! probability proportional to `p · k`. [`MiningLottery`] implements that
//! lottery over an arbitrary set of participants and is the probabilistic core
//! of the `sm-chain` simulator.

use rand::Rng;

/// Identifier of a miner participating in the lottery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MinerId(pub usize);

/// Which efficient proof system a participant represents. The kind determines
/// the default bound on how many blocks the participant can extend at once
/// (the paper's `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProofSystemKind {
    /// Proof of work: `k = 1` (work on one block at a time).
    ProofOfWork,
    /// Proof of stake: `k = ∞` (extending a block is free).
    ProofOfStake,
    /// Proof of space: `k = ∞` for lookups, but each response is tied to a plot.
    ProofOfSpace,
    /// Proof of space and time: `k` bounded by the number of VDFs.
    ProofOfSpaceTime {
        /// Number of VDFs the participant runs.
        vdfs: usize,
    },
}

impl ProofSystemKind {
    /// The bound `k` on concurrently extendable blocks implied by the proof
    /// system (`usize::MAX` stands in for the paper's `k = ∞`).
    pub fn max_parallel_blocks(&self) -> usize {
        match self {
            ProofSystemKind::ProofOfWork => 1,
            ProofSystemKind::ProofOfStake | ProofSystemKind::ProofOfSpace => usize::MAX,
            ProofSystemKind::ProofOfSpaceTime { vdfs } => *vdfs,
        }
    }
}

/// One participant of the lottery: a resource share and the number of blocks
/// it currently tries to extend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceAllocation {
    /// The participant's identifier.
    pub miner: MinerId,
    /// Fraction of the global resource the participant owns, in `[0, 1]`.
    pub share: f64,
    /// Number of blocks the participant currently mines on (the effective `k`
    /// for this step; already clamped by the proof system's bound).
    pub parallel_blocks: usize,
}

impl ResourceAllocation {
    /// The participant's lottery weight `share · parallel_blocks`.
    pub fn weight(&self) -> f64 {
        self.share * self.parallel_blocks as f64
    }
}

/// Outcome of one lottery draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WinnerKind {
    /// A participant won and gets to produce the next block; the index is the
    /// block slot (in `0..parallel_blocks`) the proof was found for.
    Winner {
        /// The winning participant.
        miner: MinerId,
        /// Which of the participant's candidate blocks the proof extends.
        slot: usize,
    },
    /// No proof was found this step (only possible when the total weight is
    /// zero).
    Nobody,
}

/// The `(p, k)`-mining lottery.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sm_proofs::{MinerId, MiningLottery, ResourceAllocation};
///
/// let lottery = MiningLottery::new(vec![
///     ResourceAllocation { miner: MinerId(0), share: 0.3, parallel_blocks: 2 },
///     ResourceAllocation { miner: MinerId(1), share: 0.7, parallel_blocks: 1 },
/// ]);
/// // Adversary weight 0.6, honest weight 0.7.
/// assert!((lottery.win_probability(MinerId(0)) - 0.6 / 1.3).abs() < 1e-12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let outcome = lottery.draw(&mut rng);
/// assert!(!matches!(outcome, sm_proofs::WinnerKind::Nobody));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MiningLottery {
    participants: Vec<ResourceAllocation>,
}

impl MiningLottery {
    /// Creates a lottery over the given participants.
    pub fn new(participants: Vec<ResourceAllocation>) -> Self {
        MiningLottery { participants }
    }

    /// The participants of the lottery.
    pub fn participants(&self) -> &[ResourceAllocation] {
        &self.participants
    }

    /// Total lottery weight `Σ share · parallel_blocks`.
    pub fn total_weight(&self) -> f64 {
        self.participants.iter().map(|p| p.weight()).sum()
    }

    /// Probability that the given miner wins the next draw.
    pub fn win_probability(&self, miner: MinerId) -> f64 {
        let total = self.total_weight();
        if total <= 0.0 {
            return 0.0;
        }
        self.participants
            .iter()
            .filter(|p| p.miner == miner)
            .map(|p| p.weight())
            .sum::<f64>()
            / total
    }

    /// Draws the winner of the next block.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> WinnerKind {
        let total = self.total_weight();
        if total <= 0.0 {
            return WinnerKind::Nobody;
        }
        let mut target = rng.gen_range(0.0..total);
        for participant in &self.participants {
            let weight = participant.weight();
            if weight <= 0.0 {
                continue;
            }
            if target < weight {
                // Uniformly attribute the proof to one of the participant's
                // candidate blocks.
                let per_slot = participant.share;
                let slot = if per_slot > 0.0 {
                    ((target / per_slot) as usize).min(participant.parallel_blocks - 1)
                } else {
                    0
                };
                return WinnerKind::Winner {
                    miner: participant.miner,
                    slot,
                };
            }
            target -= weight;
        }
        // Floating-point edge: attribute to the last positive-weight participant.
        let last = self
            .participants
            .iter()
            .rev()
            .find(|p| p.weight() > 0.0)
            .expect("total weight is positive");
        WinnerKind::Winner {
            miner: last.miner,
            slot: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn proof_system_bounds_match_the_paper() {
        assert_eq!(ProofSystemKind::ProofOfWork.max_parallel_blocks(), 1);
        assert_eq!(
            ProofSystemKind::ProofOfStake.max_parallel_blocks(),
            usize::MAX
        );
        assert_eq!(
            ProofSystemKind::ProofOfSpaceTime { vdfs: 3 }.max_parallel_blocks(),
            3
        );
    }

    #[test]
    fn win_probability_matches_paper_formula() {
        // Adversary with share p mining on σ blocks, honest miners with 1 − p
        // on one block: P(adversary) = pσ / (1 − p + pσ).
        let p = 0.3;
        let sigma = 4;
        let lottery = MiningLottery::new(vec![
            ResourceAllocation {
                miner: MinerId(0),
                share: p,
                parallel_blocks: sigma,
            },
            ResourceAllocation {
                miner: MinerId(1),
                share: 1.0 - p,
                parallel_blocks: 1,
            },
        ]);
        let expected = p * sigma as f64 / (1.0 - p + p * sigma as f64);
        assert!((lottery.win_probability(MinerId(0)) - expected).abs() < 1e-12);
        assert!((lottery.win_probability(MinerId(1)) - (1.0 - expected)).abs() < 1e-12);
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let lottery = MiningLottery::new(vec![
            ResourceAllocation {
                miner: MinerId(0),
                share: 0.25,
                parallel_blocks: 2,
            },
            ResourceAllocation {
                miner: MinerId(1),
                share: 0.75,
                parallel_blocks: 1,
            },
        ]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let trials = 20_000;
        let mut wins = 0;
        for _ in 0..trials {
            if let WinnerKind::Winner { miner, .. } = lottery.draw(&mut rng) {
                if miner == MinerId(0) {
                    wins += 1;
                }
            }
        }
        let empirical = wins as f64 / trials as f64;
        let expected = lottery.win_probability(MinerId(0));
        assert!(
            (empirical - expected).abs() < 0.02,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn zero_weight_lottery_has_no_winner() {
        let lottery = MiningLottery::new(vec![ResourceAllocation {
            miner: MinerId(0),
            share: 0.0,
            parallel_blocks: 5,
        }]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(lottery.draw(&mut rng), WinnerKind::Nobody);
        assert_eq!(lottery.win_probability(MinerId(0)), 0.0);
    }

    #[test]
    fn slots_are_attributed_within_bounds() {
        let lottery = MiningLottery::new(vec![ResourceAllocation {
            miner: MinerId(0),
            share: 0.5,
            parallel_blocks: 3,
        }]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            match lottery.draw(&mut rng) {
                WinnerKind::Winner { slot, .. } => assert!(slot < 3),
                WinnerKind::Nobody => panic!("positive weight must produce a winner"),
            }
        }
    }
}
