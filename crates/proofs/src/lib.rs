//! Simulated efficient proof systems and the `(p, k)`-mining abstraction.
//!
//! The selfish-mining analysis of the PODC 2024 paper abstracts the underlying
//! consensus primitive into `(p, k)`-mining: a miner holding a `p` fraction of
//! the resource and able to work on `k` blocks at once finds the next proof
//! with probability proportional to `p · k`. This crate provides that
//! abstraction ([`MiningLottery`], [`ResourceAllocation`]) together with
//! *simulated* concrete proof systems that exercise the same code paths the
//! real systems would (challenge derivation, proof generation, verification)
//! without any cryptographic hardness:
//!
//! * [`pow::ProofOfWork`] — hashcash-style proof of work (the `(p, 1)` case).
//! * [`postake::ProofOfStake`] — a stake lottery (the `(p, ∞)` case).
//! * [`pospace::ProofOfSpace`] — plot-based proofs of space.
//! * [`vdf::Vdf`] — an iterated-hash verifiable delay function.
//! * [`post::ProofOfSpaceTime`] — proofs of space and time (PoSpace + VDF),
//!   the `(p, k)` case with `k` bounded by the number of VDFs.
//! * [`challenge`] — unpredictable (Bitcoin-like) vs predictable
//!   (Ouroboros-like) challenge derivation, the distinction at the heart of
//!   the paper's model.
//!
//! The substitution of real cryptography by a deterministic non-cryptographic
//! hash is documented in `DESIGN.md`: the analysis and the simulator only
//! depend on the induced *probabilities*, not on the hardness of the proofs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod challenge;
mod hash;
mod lottery;
pub mod pospace;
pub mod post;
pub mod postake;
pub mod pow;
pub mod vdf;

pub use challenge::{ChallengeSchedule, PredictableSchedule, UnpredictableSchedule};
pub use hash::{hash_bytes, hash_concat, Digest};
pub use lottery::{MinerId, MiningLottery, ProofSystemKind, ResourceAllocation, WinnerKind};
