//! Persistent certified-analysis query service.
//!
//! The batch pipeline (`sm-sweep`) answers *grids*; this crate answers
//! *questions*: "what is the certified `ERRev` interval for
//! `(scenario, backend, d, f, l, p, γ, ε)`?" — repeatedly, across the
//! lifetime of a process, with each answer riding the caches the previous
//! answers built:
//!
//! * **Arena cache** — one [`ParametricModel`] per topology
//!   `(scenario, d, f, l)`, built on first touch and shared (read-only)
//!   by every curve over it. The consensus backend is *not* part of the
//!   topology: the MDP arena is identical for every backend, so querying a
//!   known topology under a new backend is an arena hit.
//! * **Curve cache** — per `(topology, backend, γ, ε)` a *canonical anchor
//!   lattice*:
//!   the chain of warm-started certified solves at `p = 0, Δ, 2Δ, …`
//!   ([`ServiceConfig::anchor_step`]), advanced lazily up to each query and
//!   snapshotted per anchor
//!   ([`selfish_mining::experiments::CurveTracker`]). An off-lattice `p` is
//!   answered by a warm *probe* from the last anchor at or below it, which
//!   leaves the chain untouched.
//! * **Answer memo** — certified intervals keyed by the rounded `p`
//!   ([`ServiceConfig::share_quantum`]), so repeats — including concurrent
//!   duplicates that queued behind the first solver — are served without
//!   solving.
//!
//! # Why a canonical lattice instead of "warm-start from whatever is cached"
//!
//! Warm-starting from the *nearest cached neighbour* would make an answer
//! depend on which queries happened to come before it: a warm-started
//! Dinkelbach run lands on a (certified, but) different bracket than a cold
//! one. The lattice removes the history dependence: the chain below a query
//! is the same fixed anchor sequence no matter what was cached, when it was
//! evicted or how many workers raced, so every answer is a **pure function
//! of the rounded query** — bit-identical across cold caches, warm caches
//! and any worker count — while still reusing the β-extrapolation and bias
//! carry-over of the sweep engine for its speed.
//!
//! # Concurrency
//!
//! The global registry lock is held only to look up/insert cache entries;
//! solves run under the affected curve's own lock. Concurrent requests for
//! the same point therefore *coalesce*: the first locks the curve and
//! solves, the rest block on the lock and find the memoized answer when
//! they acquire it. Batches are admitted through the shared nested-budget
//! scheduler ([`sm_scheduler::run_budgeted_jobs`]): queries fan out over
//! the worker budget and surplus threads flow into the solvers' intra-solve
//! parallelism ([`SolverParallelism`]), which never changes a single bit of
//! the answers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jsonl;

use selfish_mining::experiments::{CertifiedSolve, CurveCarry, CurveTracker};
use selfish_mining::{
    validate_epsilon, validate_share, AnalysisConfig, AttackParams, AttackScenario,
    CertificateScope, ConsensusBackend, ParametricModel, SelfishMiningError, SelfishMiningModel,
    SolverParallelism,
};
use sm_scheduler::{resolve_budget, run_budgeted_jobs};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};

/// Configuration of a [`Service`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Lattice step `Δ` of the canonical warm-start chain in `p`. Smaller
    /// steps give warmer probes at the cost of more chain solves on first
    /// touch of a region.
    pub anchor_step: f64,
    /// Rounding quantum for `p` and `γ`: queries are snapped to the nearest
    /// multiple before anything is looked up or solved, so any two queries
    /// within half a quantum of each other are the *same* query.
    pub share_quantum: f64,
    /// Rounding quantum for `ε`.
    pub epsilon_quantum: f64,
    /// Maximal number of cached topology arenas; least-recently-used
    /// entries beyond the cap are evicted.
    pub max_arenas: usize,
    /// Maximal number of cached curves (anchor chains); LRU-evicted.
    pub max_curves: usize,
    /// Maximal number of memoized answers per curve; LRU-evicted. Anchors
    /// themselves are part of the chain and never evicted individually —
    /// memory pressure on chains is handled by evicting whole curves.
    pub max_memo_points: usize,
    /// Global thread budget for [`Service::answer_batch`] (outer query
    /// fan-out plus intra-solve allowances); `0` auto-detects.
    pub workers: usize,
}

impl Default for ServiceConfig {
    /// `Δ = 0.05`, share quantum `10⁻⁶`, `ε` quantum `10⁻⁹`, 8 arenas,
    /// 32 curves, 4096 memoized answers per curve, automatic worker count.
    fn default() -> Self {
        ServiceConfig {
            anchor_step: 0.05,
            share_quantum: 1e-6,
            epsilon_quantum: 1e-9,
            max_arenas: 8,
            max_curves: 32,
            max_memo_points: 4096,
            workers: 0,
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration and derives the lattice step in share
    /// quanta.
    fn anchor_quanta(&self) -> Result<u64, ServiceError> {
        let positive = |name: &'static str, value: f64| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ServiceError::Config {
                    name,
                    constraint: "must be finite and strictly positive",
                })
            }
        };
        positive("anchor_step", self.anchor_step)?;
        positive("share_quantum", self.share_quantum)?;
        positive("epsilon_quantum", self.epsilon_quantum)?;
        if self.anchor_step > 1.0 {
            return Err(ServiceError::Config {
                name: "anchor_step",
                constraint: "must not exceed 1",
            });
        }
        let quanta = (self.anchor_step / self.share_quantum).round();
        if quanta < 1.0 {
            return Err(ServiceError::Config {
                name: "anchor_step",
                constraint: "must be at least one share quantum",
            });
        }
        for (name, value) in [
            ("max_arenas", self.max_arenas),
            ("max_curves", self.max_curves),
            ("max_memo_points", self.max_memo_points),
        ] {
            if value == 0 {
                return Err(ServiceError::Config {
                    name,
                    constraint: "must be at least 1",
                });
            }
        }
        Ok(quanta as u64)
    }
}

/// One certified-analysis request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Attack scenario to certify.
    pub scenario: AttackScenario,
    /// Consensus backend the certificate is scoped to. The MDP arena and
    /// the solve itself are backend-independent, but the answer's
    /// [`CertificateScope`] and the curve/memo cache identity follow the
    /// backend (see [`CertifiedInterval::certificate_scope`]).
    pub backend: ConsensusBackend,
    /// Attack depth `d ≥ 1`.
    pub depth: usize,
    /// Forking number `f ≥ 1`.
    pub forks_per_block: usize,
    /// Maximal private fork length `l ≥ 1`.
    pub max_fork_length: usize,
    /// Adversarial resource share `p ∈ [0, 1]`.
    pub p: f64,
    /// Switching probability `γ ∈ [0, 1]`.
    pub gamma: f64,
    /// Certificate width `ε > 0`.
    pub epsilon: f64,
}

impl Default for Query {
    /// The smallest interesting paper configuration: optimal scenario,
    /// Bernoulli backend, `d = 2, f = 1, l = 4`, `p = 0.3`, `γ = 0.5`,
    /// `ε = 10⁻³`.
    fn default() -> Self {
        Query {
            scenario: AttackScenario::Optimal,
            backend: ConsensusBackend::Bernoulli,
            depth: 2,
            forks_per_block: 1,
            max_fork_length: 4,
            p: 0.3,
            gamma: 0.5,
            epsilon: 1e-3,
        }
    }
}

/// A certified `ERRev` interval — the payload of an [`Answer`]. The
/// coordinates are the *rounded* ones actually solved (see
/// [`ServiceConfig::share_quantum`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedInterval {
    /// Scenario the interval certifies.
    pub scenario: AttackScenario,
    /// Consensus backend the certificate is scoped to.
    pub backend: ConsensusBackend,
    /// Rounded adversarial share the point was solved at.
    pub p: f64,
    /// Rounded switching probability.
    pub gamma: f64,
    /// Rounded certificate width the solve was run at.
    pub epsilon: f64,
    /// Certified lower end: `ERRev* − ε ≤ β_low ≤ ERRev*`.
    pub beta_low: f64,
    /// Certified upper end: `ERRev* ≤ β_up`.
    pub beta_up: f64,
    /// Exact expected relative revenue of the ε-optimal strategy found.
    pub strategy_revenue: f64,
}

impl CertifiedInterval {
    fn from_solve(solve: &CertifiedSolve, backend: ConsensusBackend) -> Self {
        CertifiedInterval {
            scenario: solve.scenario,
            backend,
            p: solve.p,
            gamma: solve.gamma,
            epsilon: solve.epsilon,
            beta_low: solve.beta_low,
            beta_up: solve.beta_up,
            strategy_revenue: solve.strategy_revenue,
        }
    }

    /// How far the certificate reaches under this interval's backend:
    /// two-sided under unpredictable challenge schedules, lower-bound-only
    /// (over memoryless adversaries for `β_up`) under predictable ones.
    pub fn certificate_scope(&self) -> CertificateScope {
        CertificateScope::for_backend(self.backend)
    }
}

/// A served answer: the interval plus cache provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The certified interval.
    pub interval: CertifiedInterval,
    /// Whether the answer was served from the memo (or the anchor chain)
    /// without running a solver.
    pub cached: bool,
    /// Whether this request queued behind another request holding the same
    /// curve — i.e. it was coalesced with concurrent work instead of
    /// spawning its own.
    pub coalesced: bool,
    /// Number of canonical anchors this request advanced the curve's chain
    /// by (0 for warm queries).
    pub anchors_advanced: usize,
}

/// Errors a [`Service`] reports.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A [`ServiceConfig`] field violates its constraint.
    Config {
        /// Name of the field.
        name: &'static str,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// Query validation or the underlying analysis failed; query-parameter
    /// errors surface as
    /// [`SelfishMiningError::InvalidParameter`].
    Analysis(SelfishMiningError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config { name, constraint } => {
                write!(f, "invalid service config `{name}`: {constraint}")
            }
            ServiceError::Analysis(err) => write!(f, "analysis error: {err}"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Analysis(err) => Some(err),
            ServiceError::Config { .. } => None,
        }
    }
}

impl From<SelfishMiningError> for ServiceError {
    fn from(err: SelfishMiningError) -> Self {
        ServiceError::Analysis(err)
    }
}

/// Counter snapshot of a [`Service`]'s lifetime activity
/// ([`Service::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests answered (errors excluded).
    pub queries: u64,
    /// Requests served from the memo or the anchor chain without solving.
    pub cache_hits: u64,
    /// Requests that queued behind another request on the same curve and
    /// were answered by its work.
    pub coalesced: u64,
    /// Dinkelbach solves run (anchor advances + probes).
    pub solves: u64,
    /// Canonical anchors advanced.
    pub anchor_advances: u64,
    /// Off-lattice warm probes solved.
    pub probes: u64,
    /// Topology arenas built.
    pub arena_builds: u64,
    /// Requests that found their topology arena already cached.
    pub arena_hits: u64,
    /// Curves evicted under the cache cap.
    pub curve_evictions: u64,
    /// Arenas evicted under the cache cap.
    pub arena_evictions: u64,
    /// Memoized answers evicted under the per-curve cap.
    pub memo_evictions: u64,
}

#[derive(Debug, Default)]
struct StatsCells {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    solves: AtomicU64,
    anchor_advances: AtomicU64,
    probes: AtomicU64,
    arena_builds: AtomicU64,
    arena_hits: AtomicU64,
    curve_evictions: AtomicU64,
    arena_evictions: AtomicU64,
    memo_evictions: AtomicU64,
}

impl StatsCells {
    fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServiceStats {
        let read = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        ServiceStats {
            queries: read(&self.queries),
            cache_hits: read(&self.cache_hits),
            coalesced: read(&self.coalesced),
            solves: read(&self.solves),
            anchor_advances: read(&self.anchor_advances),
            probes: read(&self.probes),
            arena_builds: read(&self.arena_builds),
            arena_hits: read(&self.arena_hits),
            curve_evictions: read(&self.curve_evictions),
            arena_evictions: read(&self.arena_evictions),
            memo_evictions: read(&self.memo_evictions),
        }
    }
}

/// Topology identity: scenario label, `d`, `f`, `l`. Deliberately
/// backend-free — every backend shares the same MDP arena.
type TopologyKey = (String, usize, usize, usize);

/// Curve identity: topology plus backend label plus quantized `γ` and `ε`.
/// The backend label (not a quantized number) keeps the axis
/// quantization-neutral: two queries hit the same curve iff their backend
/// labels are equal.
type CurveKey = (TopologyKey, String, u64, u64);

struct ArenaSlot {
    family: Option<Arc<ParametricModel>>,
}

struct ArenaEntry {
    slot: Arc<Mutex<ArenaSlot>>,
    stamp: u64,
}

struct CurveEntry {
    state: Arc<Mutex<CurveState>>,
    stamp: u64,
}

#[derive(Default)]
struct CurveState {
    /// Reusable instantiated arena buffer (refilled per solve).
    arena: Option<SelfishMiningModel>,
    /// The canonical chain: anchor `i` is `p = i · Δ`, advanced in order.
    anchors: Vec<AnchorRecord>,
    /// Served answers keyed by quantized `p`, LRU-capped.
    memo: BTreeMap<u64, MemoEntry>,
    memo_stamp: u64,
}

struct AnchorRecord {
    interval: CertifiedInterval,
    /// Warm-start snapshot *after* advancing this anchor — the state an
    /// off-lattice probe above it resumes from.
    carry: CurveCarry,
}

struct MemoEntry {
    interval: CertifiedInterval,
    stamp: u64,
}

#[derive(Default)]
struct Registry {
    stamp: u64,
    arenas: BTreeMap<TopologyKey, ArenaEntry>,
    curves: BTreeMap<CurveKey, CurveEntry>,
}

/// A fully validated, quantized request.
struct Resolved {
    key: CurveKey,
    scenario: AttackScenario,
    backend: ConsensusBackend,
    depth: usize,
    forks_per_block: usize,
    max_fork_length: usize,
    p_units: u64,
    p: f64,
    gamma: f64,
    epsilon: f64,
    anchor_index: u64,
    exact_anchor: bool,
}

/// The persistent certified-analysis query service. See the crate docs for
/// the cache architecture and the determinism contract.
pub struct Service {
    config: ServiceConfig,
    anchor_quanta: u64,
    registry: Mutex<Registry>,
    stats: StatsCells,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Service {
    /// Creates a service.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Config`] for non-positive quanta or step, a
    /// step above 1 or below one quantum, or zero cache caps.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        let anchor_quanta = config.anchor_quanta()?;
        Ok(Service {
            config,
            anchor_quanta,
            registry: Mutex::new(Registry::default()),
            stats: StatsCells::default(),
        })
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// Number of topology arenas currently cached.
    pub fn cached_arenas(&self) -> usize {
        lock(&self.registry).arenas.len()
    }

    /// Number of curves (anchor chains) currently cached.
    pub fn cached_curves(&self) -> usize {
        lock(&self.registry).curves.len()
    }

    /// Approximate bytes held by the cached topology arenas (compact layout
    /// plus terminal tables) — the dominant resident cost of the service.
    pub fn resident_arena_bytes(&self) -> usize {
        let registry = lock(&self.registry);
        registry
            .arenas
            .values()
            .filter_map(|entry| {
                let slot = lock(&entry.slot);
                slot.family
                    .as_ref()
                    .map(|family| family.layout_bytes() + family.term_table_bytes())
            })
            .sum()
    }

    /// Answers one query with the full configured thread budget granted to
    /// the solver.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Analysis`] for invalid query parameters
    /// (rejected before any solver work) and for solver failures.
    pub fn answer(&self, query: &Query) -> Result<Answer, ServiceError> {
        self.answer_with(query, SolverParallelism::threads(self.config.workers))
    }

    /// Answers a batch of queries over the nested-budget worker pool: outer
    /// fan-out across queries, surplus threads granted to the individual
    /// solves. Results are in query order and bit-identical for any budget.
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Result<Answer, ServiceError>> {
        let budget = resolve_budget(self.config.workers);
        run_budgeted_jobs(budget, queries.len(), |index, allowance| {
            match queries.get(index) {
                Some(query) => self.answer_with(query, SolverParallelism::threads(allowance)),
                // Unreachable: the scheduler only hands out indices < len.
                None => Err(ServiceError::Config {
                    name: "batch",
                    constraint: "job index out of range",
                }),
            }
        })
    }

    /// [`Service::answer`] with an explicit intra-solve thread allowance —
    /// the entry point batch workers use. The allowance never affects the
    /// answer's bits.
    ///
    /// # Errors
    ///
    /// See [`Service::answer`].
    pub fn answer_with(
        &self,
        query: &Query,
        parallelism: SolverParallelism,
    ) -> Result<Answer, ServiceError> {
        let resolved = self.resolve(query)?;
        let (slot, curve) = self.entries(&resolved);
        let family = self.family(&slot, &resolved)?;

        // Acquire the curve. A blocked acquisition means another request is
        // working this curve right now — if it produces our answer, the
        // request was coalesced.
        let (mut state, waited) = match curve.try_lock() {
            Ok(guard) => (guard, false),
            Err(TryLockError::Poisoned(poisoned)) => (poisoned.into_inner(), false),
            Err(TryLockError::WouldBlock) => (lock(&curve), true),
        };

        StatsCells::bump(&self.stats.queries);
        if let Some(entry) = state.memo.get(&resolved.p_units) {
            StatsCells::bump(&self.stats.cache_hits);
            if waited {
                StatsCells::bump(&self.stats.coalesced);
            }
            return Ok(Answer {
                interval: entry.interval.clone(),
                cached: true,
                coalesced: waited,
                anchors_advanced: 0,
            });
        }
        let chain_len = state.anchors.len() as u64;
        if resolved.exact_anchor && resolved.anchor_index < chain_len {
            // Memo-evicted anchor point: the chain still holds it.
            if let Some(record) = anchor_record(&state, resolved.anchor_index) {
                let interval = record.interval.clone();
                self.memoize(&mut state, resolved.p_units, interval.clone());
                StatsCells::bump(&self.stats.cache_hits);
                return Ok(Answer {
                    interval,
                    cached: true,
                    coalesced: waited,
                    anchors_advanced: 0,
                });
            }
        }

        let (interval, advanced) = self.compute(&mut state, &family, &resolved, parallelism)?;
        self.memoize(&mut state, resolved.p_units, interval.clone());
        Ok(Answer {
            interval,
            cached: false,
            coalesced: waited,
            anchors_advanced: advanced,
        })
    }

    /// Validates and quantizes a query. Every rejected parameter surfaces
    /// as the same typed [`SelfishMiningError::InvalidParameter`] the batch
    /// sweep uses, before any cache entry is touched.
    fn resolve(&self, query: &Query) -> Result<Resolved, ServiceError> {
        validate_share("p", query.p)?;
        validate_share("gamma", query.gamma)?;
        validate_epsilon(query.epsilon)?;
        let p_units = quantize(query.p, self.config.share_quantum);
        let gamma_units = quantize(query.gamma, self.config.share_quantum);
        let epsilon_units = quantize(query.epsilon, self.config.epsilon_quantum);
        if epsilon_units == 0 {
            return Err(ServiceError::Analysis(
                SelfishMiningError::InvalidParameter {
                    name: "epsilon",
                    constraint: "must be at least one epsilon quantum",
                },
            ));
        }
        let p = dequantize(p_units, self.config.share_quantum).clamp(0.0, 1.0);
        let gamma = dequantize(gamma_units, self.config.share_quantum).clamp(0.0, 1.0);
        let epsilon = dequantize(epsilon_units, self.config.epsilon_quantum);
        // Structural validation (d, f, l ≥ 1) through the shared params type.
        AttackParams::new(
            p,
            gamma,
            query.depth,
            query.forks_per_block,
            query.max_fork_length,
        )?;
        let topology: TopologyKey = (
            query.scenario.label(),
            query.depth,
            query.forks_per_block,
            query.max_fork_length,
        );
        Ok(Resolved {
            key: (topology, query.backend.label(), gamma_units, epsilon_units),
            scenario: query.scenario,
            backend: query.backend,
            depth: query.depth,
            forks_per_block: query.forks_per_block,
            max_fork_length: query.max_fork_length,
            p_units,
            p,
            gamma,
            epsilon,
            anchor_index: p_units / self.anchor_quanta,
            exact_anchor: p_units % self.anchor_quanta == 0,
        })
    }

    /// Looks up (or creates) the query's arena slot and curve under the
    /// registry lock, refreshing LRU stamps and evicting over-cap entries.
    fn entries(&self, resolved: &Resolved) -> (Arc<Mutex<ArenaSlot>>, Arc<Mutex<CurveState>>) {
        let mut registry = lock(&self.registry);
        registry.stamp += 1;
        let stamp = registry.stamp;
        let topology = &resolved.key.0;

        let slot = match registry.arenas.get_mut(topology) {
            Some(entry) => {
                entry.stamp = stamp;
                Arc::clone(&entry.slot)
            }
            None => {
                let slot = Arc::new(Mutex::new(ArenaSlot { family: None }));
                registry.arenas.insert(
                    topology.clone(),
                    ArenaEntry {
                        slot: Arc::clone(&slot),
                        stamp,
                    },
                );
                slot
            }
        };
        let curve = match registry.curves.get_mut(&resolved.key) {
            Some(entry) => {
                entry.stamp = stamp;
                Arc::clone(&entry.state)
            }
            None => {
                let state = Arc::new(Mutex::new(CurveState::default()));
                registry.curves.insert(
                    resolved.key.clone(),
                    CurveEntry {
                        state: Arc::clone(&state),
                        stamp,
                    },
                );
                state
            }
        };

        // LRU eviction, never evicting the entry this request is about to
        // use. In-flight requests on an evicted entry keep it alive through
        // their Arc and finish normally; a later request simply rebuilds —
        // with bit-identical answers, since answers are pure functions of
        // the rounded query.
        while registry.curves.len() > self.config.max_curves {
            let victim = registry
                .curves
                .iter()
                .filter(|(key, _)| **key != resolved.key)
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(key, _)| key.clone());
            match victim {
                Some(key) => {
                    registry.curves.remove(&key);
                    StatsCells::bump(&self.stats.curve_evictions);
                }
                None => break,
            }
        }
        while registry.arenas.len() > self.config.max_arenas {
            let victim = registry
                .arenas
                .iter()
                .filter(|(key, _)| *key != topology)
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(key, _)| key.clone());
            match victim {
                Some(key) => {
                    registry.arenas.remove(&key);
                    StatsCells::bump(&self.stats.arena_evictions);
                }
                None => break,
            }
        }
        (slot, curve)
    }

    /// Returns the slot's shared arena, building it on first touch.
    /// Concurrent first touches of the same topology coalesce on the slot
    /// lock: one builds, the rest wait and share.
    fn family(
        &self,
        slot: &Mutex<ArenaSlot>,
        resolved: &Resolved,
    ) -> Result<Arc<ParametricModel>, ServiceError> {
        let mut slot = lock(slot);
        if let Some(family) = slot.family.as_ref() {
            StatsCells::bump(&self.stats.arena_hits);
            return Ok(Arc::clone(family));
        }
        let built = ParametricModel::build_scenario(
            resolved.scenario,
            resolved.depth,
            resolved.forks_per_block,
            resolved.max_fork_length,
        )?;
        StatsCells::bump(&self.stats.arena_builds);
        let family = Arc::new(built);
        slot.family = Some(Arc::clone(&family));
        Ok(family)
    }

    /// Advances the curve's canonical chain up to the query's anchor and
    /// answers the query (anchor value or warm probe). Runs under the
    /// curve lock.
    fn compute(
        &self,
        state: &mut CurveState,
        family: &ParametricModel,
        resolved: &Resolved,
        parallelism: SolverParallelism,
    ) -> Result<(CertifiedInterval, usize), ServiceError> {
        let analysis = AnalysisConfig::with_epsilon(resolved.epsilon).with_parallelism(parallelism);
        let mut tracker = CurveTracker::new(family, resolved.gamma, true, analysis)
            .with_arena(state.arena.take());
        if let Some(last) = state.anchors.last() {
            tracker.restore(&last.carry);
        }
        let mut advanced = 0usize;
        while (state.anchors.len() as u64) <= resolved.anchor_index {
            let index = state.anchors.len() as u64;
            let anchor_p = self.anchor_p(index);
            let solve = match tracker.advance(anchor_p) {
                Ok(solve) => solve,
                Err(err) => {
                    state.arena = tracker.into_arena();
                    return Err(err.into());
                }
            };
            advanced += 1;
            StatsCells::bump(&self.stats.solves);
            StatsCells::bump(&self.stats.anchor_advances);
            let interval = CertifiedInterval::from_solve(&solve, resolved.backend);
            self.memoize(state, index * self.anchor_quanta, interval.clone());
            state.anchors.push(AnchorRecord {
                interval,
                carry: tracker.snapshot(),
            });
        }
        let interval = if resolved.exact_anchor {
            match anchor_record(state, resolved.anchor_index) {
                Some(record) => record.interval.clone(),
                None => {
                    state.arena = tracker.into_arena();
                    return Err(ServiceError::Analysis(
                        SelfishMiningError::InvalidParameter {
                            name: "p",
                            constraint: "anchor index must fit the chain",
                        },
                    ));
                }
            }
        } else {
            match anchor_record(state, resolved.anchor_index) {
                Some(record) => tracker.restore(&record.carry),
                None => {
                    state.arena = tracker.into_arena();
                    return Err(ServiceError::Analysis(
                        SelfishMiningError::InvalidParameter {
                            name: "p",
                            constraint: "anchor index must fit the chain",
                        },
                    ));
                }
            }
            let solve = match tracker.probe(resolved.p) {
                Ok(solve) => solve,
                Err(err) => {
                    state.arena = tracker.into_arena();
                    return Err(err.into());
                }
            };
            StatsCells::bump(&self.stats.solves);
            StatsCells::bump(&self.stats.probes);
            CertifiedInterval::from_solve(&solve, resolved.backend)
        };
        state.arena = tracker.into_arena();
        Ok((interval, advanced))
    }

    /// The `p` value of canonical anchor `index`.
    fn anchor_p(&self, index: u64) -> f64 {
        dequantize(index * self.anchor_quanta, self.config.share_quantum).clamp(0.0, 1.0)
    }

    /// Inserts an answer into the curve's memo, LRU-evicting over the cap
    /// (the just-inserted entry is never the victim).
    fn memoize(&self, state: &mut CurveState, p_units: u64, interval: CertifiedInterval) {
        state.memo_stamp += 1;
        let stamp = state.memo_stamp;
        state.memo.insert(p_units, MemoEntry { interval, stamp });
        while state.memo.len() > self.config.max_memo_points {
            let victim = state
                .memo
                .iter()
                .filter(|(key, _)| **key != p_units)
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(key, _)| *key);
            match victim {
                Some(key) => {
                    state.memo.remove(&key);
                    StatsCells::bump(&self.stats.memo_evictions);
                }
                None => break,
            }
        }
    }
}

fn anchor_record(state: &CurveState, index: u64) -> Option<&AnchorRecord> {
    usize::try_from(index)
        .ok()
        .and_then(|index| state.anchors.get(index))
}

/// Rounds a non-negative finite value to the nearest multiple of `quantum`,
/// in units. Saturates (deterministically) far outside any meaningful range.
fn quantize(value: f64, quantum: f64) -> u64 {
    (value / quantum).round() as u64
}

/// The value a unit count stands for.
fn dequantize(units: u64, quantum: f64) -> f64 {
    units as f64 * quantum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_query(p: f64) -> Query {
        Query {
            depth: 1,
            forks_per_block: 1,
            epsilon: 5e-3,
            p,
            ..Query::default()
        }
    }

    fn service() -> Service {
        Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("default config is valid")
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        let bad = |config: ServiceConfig| {
            assert!(matches!(
                Service::new(config),
                Err(ServiceError::Config { .. })
            ));
        };
        bad(ServiceConfig {
            anchor_step: 0.0,
            ..ServiceConfig::default()
        });
        bad(ServiceConfig {
            anchor_step: f64::NAN,
            ..ServiceConfig::default()
        });
        bad(ServiceConfig {
            anchor_step: 1.5,
            ..ServiceConfig::default()
        });
        bad(ServiceConfig {
            share_quantum: -1e-6,
            ..ServiceConfig::default()
        });
        bad(ServiceConfig {
            anchor_step: 1e-9,
            share_quantum: 1e-6,
            ..ServiceConfig::default()
        });
        bad(ServiceConfig {
            max_curves: 0,
            ..ServiceConfig::default()
        });
    }

    #[test]
    fn invalid_queries_are_rejected_before_any_cache_activity() {
        let service = service();
        for query in [
            Query {
                p: f64::NAN,
                ..tiny_query(0.1)
            },
            Query {
                gamma: 1.5,
                ..tiny_query(0.1)
            },
            Query {
                epsilon: 0.0,
                ..tiny_query(0.1)
            },
            Query {
                epsilon: f64::INFINITY,
                ..tiny_query(0.1)
            },
            Query {
                depth: 0,
                ..tiny_query(0.1)
            },
        ] {
            assert!(matches!(
                service.answer(&query),
                Err(ServiceError::Analysis(
                    SelfishMiningError::InvalidParameter { .. }
                ))
            ));
        }
        assert_eq!(service.cached_arenas(), 0);
        assert_eq!(service.cached_curves(), 0);
        assert_eq!(service.stats().queries, 0);
    }

    #[test]
    fn nearby_queries_coalesce_onto_one_rounded_point() {
        let service = service();
        let first = service.answer(&tiny_query(0.1)).expect("solves");
        let nudged = service
            .answer(&tiny_query(0.1 + 1e-9))
            .expect("rounds to the same point");
        assert!(!first.cached);
        assert!(nudged.cached);
        assert_eq!(first.interval, nudged.interval);
        assert_eq!(service.stats().cache_hits, 1);
    }

    #[test]
    fn a_second_backend_shares_the_arena_but_solves_its_own_curve() {
        let service = service();
        let bernoulli = service.answer(&tiny_query(0.1)).expect("solves");
        let postake = service
            .answer(&Query {
                backend: ConsensusBackend::PoStake,
                ..tiny_query(0.1)
            })
            .expect("solves on its own curve");
        // Separate curve: the second backend is a cache miss, not a memo hit.
        assert!(!bernoulli.cached);
        assert!(!postake.cached);
        assert_eq!(service.cached_curves(), 2);
        // Shared arena: same topology, so no second build.
        assert_eq!(service.stats().arena_builds, 1);
        assert!(service.stats().arena_hits >= 1);
        assert_eq!(service.cached_arenas(), 1);
        // The solve itself is backend-independent: identical bracket, only
        // the backend tag (and with it the certificate scope) differs.
        assert_eq!(bernoulli.interval.backend, ConsensusBackend::Bernoulli);
        assert_eq!(postake.interval.backend, ConsensusBackend::PoStake);
        assert_eq!(bernoulli.interval.beta_low, postake.interval.beta_low);
        assert_eq!(bernoulli.interval.beta_up, postake.interval.beta_up);
        assert_eq!(
            bernoulli.interval.certificate_scope(),
            CertificateScope::TwoSided
        );
        assert_eq!(
            postake.interval.certificate_scope(),
            CertificateScope::LowerBoundOnly
        );
        // Repeating the backend-tagged query is now a memo hit on its curve.
        let again = service
            .answer(&Query {
                backend: ConsensusBackend::PoStake,
                ..tiny_query(0.1)
            })
            .expect("memoized");
        assert!(again.cached);
        assert_eq!(again.interval, postake.interval);
    }

    #[test]
    fn certificates_bracket_revenue_at_the_requested_width() {
        let service = service();
        let answer = service.answer(&tiny_query(0.137)).expect("solves");
        let interval = &answer.interval;
        assert!((interval.p - 0.137).abs() < 1e-6 + 1e-9);
        assert!(interval.beta_low <= interval.strategy_revenue + 1e-12);
        assert!(interval.strategy_revenue <= interval.beta_up + 1e-12);
        assert!(interval.beta_up - interval.beta_low <= interval.epsilon + 1e-12);
        // 0.137 sits above anchor 0.10: anchors 0, 0.05, 0.10 + one probe.
        assert_eq!(answer.anchors_advanced, 3);
        assert_eq!(service.stats().probes, 1);
        assert_eq!(service.stats().solves, 4);
    }
}
