//! Line-delimited JSON front end for the query service.
//!
//! One request per input line, one response per output line, in input
//! order — the transport a daemon wrapper (see `examples/service.rs`) pipes
//! stdin/stdout through, and simple enough to replay from a committed
//! script and diff against a golden transcript in CI.
//!
//! Request lines are JSON objects:
//!
//! ```text
//! {"p": 0.33, "gamma": 0.5}
//! {"op": "query", "scenario": "lead-stubborn", "backend": "postake",
//!  "d": 2, "f": 2, "l": 4, "p": 0.2, "gamma": 0.25, "epsilon": 1e-3}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! Query fields default to [`Query::default`] (optimal scenario, Bernoulli
//! backend, `d = 2`, `f = 1`, `l = 4`, `γ = 0.5`, `ε = 10⁻³`); only `p` is
//! required. The optional `backend` field takes a consensus-backend label
//! (`selfish_mining::ConsensusBackend::from_label`); answers echo it
//! together with the resulting `certificate_scope`. Every
//! response carries `"status": "ok"` or `"status": "error"`; malformed
//! lines produce an error response and the loop continues. `shutdown`
//! acknowledges and ends the loop (as does end of input).

use crate::{Answer, Query, Service, ServiceError, ServiceStats};
use selfish_mining::{AttackScenario, ConsensusBackend};
use sm_audit::json::{parse_json, write_json, JsonValue};
use std::io::{BufRead, Write};

/// Serves JSONL requests from `input` until `shutdown` or end of input,
/// writing one response line per request to `output`.
///
/// Requests are processed strictly in order on the calling thread; the
/// configured worker budget still accelerates each solve internally
/// (intra-solve parallelism), so transcripts are deterministic.
///
/// # Errors
///
/// Propagates I/O errors of `input`/`output`; request-level problems are
/// reported in-band as `"status": "error"` lines instead.
pub fn serve<R: BufRead, W: Write>(
    service: &Service,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = respond(service, &line);
        let mut rendered = String::new();
        write_json(&response, &mut rendered);
        writeln!(output, "{rendered}")?;
        if shutdown {
            break;
        }
    }
    output.flush()
}

/// Computes the response object for one request line and whether the line
/// asked the loop to stop.
pub fn respond(service: &Service, line: &str) -> (JsonValue, bool) {
    let request = match parse_json(line) {
        Ok(value) => value,
        Err(message) => return (error_response(&format!("malformed JSON: {message}")), false),
    };
    let op = request
        .get("op")
        .and_then(JsonValue::as_str)
        .unwrap_or("query");
    match op {
        "query" => match parse_query(&request) {
            Ok(query) => match service.answer(&query) {
                Ok(answer) => (answer_response(&query, &answer), false),
                Err(err) => (error_response(&err.to_string()), false),
            },
            Err(message) => (error_response(&message), false),
        },
        "stats" => (stats_response(&service.stats()), false),
        "shutdown" => (
            JsonValue::Object(vec![
                ("status".to_string(), JsonValue::String("ok".to_string())),
                ("op".to_string(), JsonValue::String("shutdown".to_string())),
            ]),
            true,
        ),
        other => (error_response(&format!("unknown op {other:?}")), false),
    }
}

fn parse_query(request: &JsonValue) -> Result<Query, String> {
    let defaults = Query::default();
    let number = |key: &str, default: f64| -> Result<f64, String> {
        match request.get(key) {
            Some(value) => value
                .as_f64()
                .filter(|n| !n.is_nan())
                .ok_or_else(|| format!("field {key:?} must be a number")),
            None => Ok(default),
        }
    };
    let count = |key: &str, default: usize| -> Result<usize, String> {
        match request.get(key) {
            Some(value) => value
                .as_usize()
                .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
            None => Ok(default),
        }
    };
    let p = request
        .get("p")
        .ok_or("field \"p\" is required")?
        .as_f64()
        .filter(|n| !n.is_nan())
        .ok_or("field \"p\" must be a number")?;
    let scenario = match request.get("scenario") {
        Some(value) => {
            let label = value
                .as_str()
                .ok_or("field \"scenario\" must be a string label")?;
            AttackScenario::from_label(label)
                .ok_or_else(|| format!("unknown scenario label {label:?}"))?
        }
        None => defaults.scenario,
    };
    let backend = match request.get("backend") {
        Some(value) => {
            let label = value
                .as_str()
                .ok_or("field \"backend\" must be a string label")?;
            ConsensusBackend::from_label(label)
                .ok_or_else(|| format!("unknown backend label {label:?}"))?
        }
        None => defaults.backend,
    };
    Ok(Query {
        scenario,
        backend,
        depth: count("d", defaults.depth)?,
        forks_per_block: count("f", defaults.forks_per_block)?,
        max_fork_length: count("l", defaults.max_fork_length)?,
        p,
        gamma: number("gamma", defaults.gamma)?,
        epsilon: number("epsilon", defaults.epsilon)?,
    })
}

fn answer_response(query: &Query, answer: &Answer) -> JsonValue {
    let interval = &answer.interval;
    JsonValue::Object(vec![
        ("status".to_string(), JsonValue::String("ok".to_string())),
        (
            "scenario".to_string(),
            JsonValue::String(interval.scenario.label()),
        ),
        (
            "backend".to_string(),
            JsonValue::String(interval.backend.label()),
        ),
        (
            "certificate_scope".to_string(),
            JsonValue::String(interval.certificate_scope().label().to_string()),
        ),
        ("d".to_string(), JsonValue::Number(query.depth as f64)),
        (
            "f".to_string(),
            JsonValue::Number(query.forks_per_block as f64),
        ),
        (
            "l".to_string(),
            JsonValue::Number(query.max_fork_length as f64),
        ),
        ("p".to_string(), JsonValue::Number(interval.p)),
        ("gamma".to_string(), JsonValue::Number(interval.gamma)),
        ("epsilon".to_string(), JsonValue::Number(interval.epsilon)),
        ("beta_low".to_string(), JsonValue::Number(interval.beta_low)),
        ("beta_up".to_string(), JsonValue::Number(interval.beta_up)),
        (
            "strategy_revenue".to_string(),
            JsonValue::Number(interval.strategy_revenue),
        ),
        ("cached".to_string(), JsonValue::Bool(answer.cached)),
        (
            "anchors_advanced".to_string(),
            JsonValue::Number(answer.anchors_advanced as f64),
        ),
    ])
}

fn stats_response(stats: &ServiceStats) -> JsonValue {
    let n = |value: u64| JsonValue::Number(value as f64);
    JsonValue::Object(vec![
        ("status".to_string(), JsonValue::String("ok".to_string())),
        ("op".to_string(), JsonValue::String("stats".to_string())),
        ("queries".to_string(), n(stats.queries)),
        ("cache_hits".to_string(), n(stats.cache_hits)),
        ("coalesced".to_string(), n(stats.coalesced)),
        ("solves".to_string(), n(stats.solves)),
        ("anchor_advances".to_string(), n(stats.anchor_advances)),
        ("probes".to_string(), n(stats.probes)),
        ("arena_builds".to_string(), n(stats.arena_builds)),
        ("arena_hits".to_string(), n(stats.arena_hits)),
        ("curve_evictions".to_string(), n(stats.curve_evictions)),
        ("arena_evictions".to_string(), n(stats.arena_evictions)),
        ("memo_evictions".to_string(), n(stats.memo_evictions)),
    ])
}

fn error_response(message: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("status".to_string(), JsonValue::String("error".to_string())),
        ("error".to_string(), JsonValue::String(message.to_string())),
    ])
}

/// Renders a [`ServiceError`] the way [`serve`] reports it — exposed so the
/// example driver can reuse the exact wording for pre-loop failures.
pub fn render_error(err: &ServiceError) -> String {
    let mut rendered = String::new();
    write_json(&error_response(&err.to_string()), &mut rendered);
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    fn service() -> Service {
        Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("valid config")
    }

    #[test]
    fn serves_a_scripted_session_in_order() {
        let service = service();
        let script = concat!(
            "{\"p\": 0.1, \"d\": 1, \"f\": 1, \"epsilon\": 0.005}\n",
            "\n",
            "{\"p\": 0.1, \"d\": 1, \"f\": 1, \"epsilon\": 0.005}\n",
            "{\"p\": 0.1, \"d\": 1, \"f\": 1, \"epsilon\": 0.005, \"backend\": \"vdf\"}\n",
            "not json\n",
            "{\"op\":\"stats\"}\n",
            "{\"op\":\"shutdown\"}\n",
            "{\"p\": 0.2, \"d\": 1, \"f\": 1}\n",
        );
        let mut output = Vec::new();
        serve(&service, script.as_bytes(), &mut output).expect("io never fails on memory buffers");
        let lines: Vec<&str> = std::str::from_utf8(&output)
            .expect("responses are utf-8")
            .lines()
            .collect();
        // Line after shutdown is never processed.
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[0].contains("\"cached\":false"));
        assert!(lines[0].contains("\"backend\":\"bernoulli\""));
        assert!(lines[0].contains("\"certificate_scope\":\"two-sided\""));
        assert!(lines[1].contains("\"cached\":true"));
        // Same rounded point under another backend: its own curve (cache
        // miss), predictable schedule narrows the certificate scope.
        assert!(lines[2].contains("\"cached\":false"));
        assert!(lines[2].contains("\"backend\":\"vdf\""));
        assert!(lines[2].contains("\"certificate_scope\":\"lower-bound-only\""));
        assert!(lines[3].contains("\"status\":\"error\""));
        assert!(lines[4].contains("\"op\":\"stats\""));
        assert!(lines[5].contains("\"op\":\"shutdown\""));
    }

    #[test]
    fn query_parsing_reports_field_level_problems() {
        let service = service();
        for (line, needle) in [
            ("{}", "is required"),
            ("{\"p\": \"high\"}", "must be a number"),
            ("{\"p\": 0.1, \"d\": 1.5}", "non-negative integer"),
            ("{\"p\": 0.1, \"scenario\": \"evil\"}", "unknown scenario"),
            ("{\"p\": 0.1, \"scenario\": 3}", "string label"),
            ("{\"p\": 0.1, \"backend\": \"quantum\"}", "unknown backend"),
            ("{\"p\": 0.1, \"backend\": 7}", "string label"),
            ("{\"p\": 0.1, \"backend\": \"post(0)\"}", "unknown backend"),
            ("{\"op\": \"dance\"}", "unknown op"),
            ("{\"p\": 2.0, \"d\": 1, \"f\": 1}", "[0, 1]"),
        ] {
            let (response, shutdown) = respond(&service, line);
            let mut rendered = String::new();
            write_json(&response, &mut rendered);
            assert!(!shutdown);
            assert!(
                rendered.contains("\"status\":\"error\"") && rendered.contains(needle),
                "{line} -> {rendered}"
            );
        }
    }
}
