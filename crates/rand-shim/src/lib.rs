//! A minimal, dependency-free stand-in for the [`rand`] crate, so that the
//! workspace compiles and runs in offline environments (this container has no
//! access to crates.io).
//!
//! The shim implements exactly the API surface the workspace uses —
//! [`Rng::gen_range`] over `f64` and integer ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — on top of a
//! xoshiro256++ generator seeded via SplitMix64. The statistical quality is
//! far beyond what the Monte-Carlo cross-validation tests need; swapping in
//! the real `rand` later requires only a manifest change (seeded streams will
//! differ, so loosen any seed-pinned expectations when doing so).
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high - low) as u128;
                // Modulo draw; the bias over a 64-bit source is ≤ span/2^64,
                // irrelevant for the simulation workloads served here.
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// The subset of the `rand` RNG interface the workspace uses.
pub trait Rng {
    /// The raw 64-bit source all derived draws are built from.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `probability`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    fn gen_bool(&mut self, probability: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must lie in [0, 1]"
        );
        if probability >= 1.0 {
            return true;
        }
        f64::sample_range(self, 0.0, 1.0) < probability
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator (the shim's stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_is_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1000 {
            let x = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
