//! Selfish mining in efficient proof systems blockchains: the MDP model and
//! the fully automated analysis of
//! *"Fully Automated Selfish Mining Analysis in Efficient Proof Systems
//! Blockchains"* (Chatterjee, Ebrahimzadeh, Karrabi, Pietrzak, Yeo, Žikelić —
//! PODC 2024).
//!
//! # What this crate provides
//!
//! * [`AttackParams`] — the system-model and attack parameters
//!   `(p, γ, d, f, l)` of Section 3.2.
//! * [`SmState`], [`SmAction`], [`available_actions`], [`successors`] — the
//!   structured state space, action space and probabilistic transition
//!   function of the selfish-mining MDP.
//! * [`SelfishMiningModel`] — reachable-state exploration and construction of
//!   the finite MDP together with the reward structures `r_A` and `r_H` of
//!   Section 3.3.
//! * [`AnalysisProcedure`] — Algorithm 1: an `ε`-tight lower bound on the
//!   optimal expected relative revenue plus an `ε`-optimal strategy, computed
//!   by binary search over the mean-payoff reward family `r_β` (and a
//!   Dinkelbach-accelerated variant).
//! * [`AttackScenario`] — pluggable restricted-action attack scenarios
//!   (the stubborn-mining family plus an honest sanity scenario) carried
//!   end-to-end through the solve → export → simulate → certify pipeline.
//! * [`baselines`] — the two baselines of the experimental evaluation
//!   (honest mining and the single-tree selfish-mining attack) and the
//!   Eyal–Sirer proof-of-work closed form used as a sanity anchor.
//! * [`experiments`] — drivers that regenerate the data behind Table 1 and
//!   Figure 2 of the paper.
//!
//! # Quickstart
//!
//! ```
//! use selfish_mining::{AnalysisProcedure, AttackParams, SelfishMiningModel};
//!
//! # fn main() -> Result<(), selfish_mining::SelfishMiningError> {
//! // d = 2, f = 1, l = 4 — the smallest configuration in which the attack
//! // beats both baselines in the paper.
//! let params = AttackParams::new(0.3, 0.5, 2, 1, 4)?;
//! let model = SelfishMiningModel::build(&params)?;
//! let result = AnalysisProcedure::with_epsilon(1e-2).solve(&model)?;
//! assert!(result.strategy_revenue >= 0.3); // at least the honest share
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod analysis;
pub mod baselines;
mod error;
pub mod experiments;
mod export;
mod model;
mod parametric;
mod params;
mod scenario;
mod state;
mod transition;

pub use action::SmAction;
pub use analysis::{
    AnalysisConfig, AnalysisProcedure, AnalysisResult, DinkelbachWarmStart, SolveStep,
};
pub use error::SelfishMiningError;
pub use export::StrategyExport;
pub use model::{SelfishMiningModel, DEFAULT_STATE_LIMIT};
pub use parametric::{ParametricModel, RewardAtom};
pub use params::{validate_epsilon, validate_share, AttackParams};
pub use scenario::{AttackScenario, CertificateScope};
pub use state::{Owner, Phase, SmState};

// The consensus-backend axis, re-exported from the chain layer so crates
// above the model (sweep, service) reach it without a direct `sm-chain`
// dependency — the same role the `AttackScenario` re-export plays for the
// scenario axis.
pub use sm_chain::{ChallengeVisibility, ConsensusBackend};

// Intra-solve parallelism and sweep-kernel knobs, shared across the solver
// stack (`sm-markov` chain sweeps, `sm-mdp` value iteration, the analysis
// procedure here).
pub use sm_mdp::{SolverParallelism, SweepKernel};
pub use transition::{
    available_actions, available_actions_in, successors, successors_in, symbolic_successors,
    symbolic_successors_in, BlockRewards, Outcome, ProbTerm, SymbolicOutcome,
};
