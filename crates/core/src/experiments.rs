//! Experiment drivers regenerating the data behind the paper's evaluation
//! (Section 4): the runtime table (Table 1) and the expected-relative-revenue
//! curves (Figure 2).
//!
//! The functions here compute *data rows*; the `sm-bench` crate turns them
//! into printed tables/series and Criterion benchmarks, and `EXPERIMENTS.md`
//! records the measured outputs next to the paper's reported values.

use crate::baselines::{honest_relative_revenue, SingleTreeAttack};
use crate::{
    AnalysisConfig, AnalysisProcedure, DinkelbachWarmStart, ParametricModel, SelfishMiningError,
    SelfishMiningModel,
};
use sm_mdp::{PositionalStrategy, SolverParallelism};
use std::time::{Duration, Instant};

/// The `(d, f)` grid evaluated in the paper (with `l = 4` throughout).
pub const PAPER_ATTACK_GRID: [(usize, usize); 5] = [(1, 1), (2, 1), (2, 2), (3, 2), (4, 2)];

/// The switching probabilities evaluated in the paper's Figure 2.
pub const PAPER_GAMMA_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One point of a Figure 2 curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Point {
    /// Adversarial resource share `p`.
    pub p: f64,
    /// Switching probability `γ`.
    pub gamma: f64,
    /// Expected relative revenue of our attack for each `(d, f)` in
    /// [`Figure2Sweep::attack_grid`], in the same order.
    pub attack_revenue: Vec<f64>,
    /// Expected relative revenue of the honest baseline (= `p`).
    pub honest_revenue: f64,
    /// Expected relative revenue of the single-tree baseline.
    pub single_tree_revenue: f64,
}

/// Configuration of a Figure 2 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Sweep {
    /// The `(d, f)` configurations of our attack to evaluate.
    pub attack_grid: Vec<(usize, usize)>,
    /// Maximal private fork length `l`.
    pub max_fork_length: usize,
    /// Precision `ε` of the analysis.
    pub epsilon: f64,
    /// Single-tree baseline tree width.
    pub single_tree_width: usize,
    /// Single-tree baseline tree depth.
    pub single_tree_depth: usize,
}

impl Default for Figure2Sweep {
    fn default() -> Self {
        Figure2Sweep {
            attack_grid: vec![(1, 1), (2, 1), (2, 2)],
            max_fork_length: 4,
            epsilon: 1e-3,
            single_tree_width: 5,
            single_tree_depth: 4,
        }
    }
}

impl Figure2Sweep {
    /// The full grid used by the paper. The `(3, 2)` and `(4, 2)`
    /// configurations are expensive (minutes to hours); prefer
    /// [`Figure2Sweep::default`] for interactive use.
    pub fn paper_grid() -> Self {
        Figure2Sweep {
            attack_grid: PAPER_ATTACK_GRID.to_vec(),
            ..Figure2Sweep::default()
        }
    }

    /// Computes one Figure 2 point: our attack on every `(d, f)` of the grid
    /// plus both baselines, at the given `p` and `γ`. Implemented as a
    /// one-point [`Figure2Sweep::curve`], so it runs on the parametric arena
    /// like the full sweep.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and solver errors.
    pub fn point(&self, p: f64, gamma: f64) -> Result<Figure2Point, SelfishMiningError> {
        let mut points = self.curve(gamma, &[p])?;
        Ok(points.pop().expect("curve over one p yields one point"))
    }

    /// Computes a whole curve (one Figure 2 panel) for the given `γ` over the
    /// given values of `p`.
    ///
    /// Each `(d, f)` configuration of the grid builds its
    /// [`ParametricModel`] **once** and re-instantiates it per `p` in place;
    /// consecutive points warm-start each other through
    /// [`attack_curve`]. For the paper's ascending `p` grids this is several
    /// times faster than the historical rebuild-per-point path (see
    /// `EXPERIMENTS.md` for measurements).
    ///
    /// # Errors
    ///
    /// Propagates model-construction and solver errors.
    pub fn curve(&self, gamma: f64, ps: &[f64]) -> Result<Vec<Figure2Point>, SelfishMiningError> {
        let mut attack: Vec<Vec<f64>> = Vec::with_capacity(self.attack_grid.len());
        for &(depth, forks) in &self.attack_grid {
            let family = ParametricModel::build(depth, forks, self.max_fork_length)?;
            attack.push(attack_curve(&family, gamma, ps, self.epsilon, true)?);
        }
        ps.iter()
            .enumerate()
            .map(|(i, &p)| {
                let single_tree = SingleTreeAttack {
                    p,
                    gamma,
                    max_depth: self.single_tree_depth,
                    max_width: self.single_tree_width,
                }
                .analyse()?;
                Ok(Figure2Point {
                    p,
                    gamma,
                    attack_revenue: attack.iter().map(|curve| curve[i]).collect(),
                    honest_revenue: honest_relative_revenue(p)?,
                    single_tree_revenue: single_tree.relative_revenue,
                })
            })
            .collect()
    }
}

/// Solves one attack curve — `ERRev` of a single `(d, f, l)` family at fixed
/// `γ` over the given `p` values — on a shared parametric arena.
///
/// The family is instantiated once and refilled in place per point
/// ([`ParametricModel::instantiate_into`]); with `warm_start` set, each
/// point's Dinkelbach iteration is seeded with a `β` *extrapolated* from the
/// two previous points of the curve (falling back to the neighbour's value
/// for the second point) and with the neighbour's final bias vector for its
/// first relative-value-iteration solve. A good seed collapses the analysis
/// to a single inner solve plus one revenue evaluation per grid point; a bad
/// seed merely costs extra iterations — over- and undershoots alike preserve
/// the `ε` guarantee (see [`DinkelbachWarmStart`]).
///
/// This is the sequential building block the `sm-sweep` worker pool
/// parallelizes across `(d, f) × γ` jobs.
///
/// # Errors
///
/// Propagates instantiation and solver errors.
pub fn attack_curve(
    family: &ParametricModel,
    gamma: f64,
    ps: &[f64],
    epsilon: f64,
    warm_start: bool,
) -> Result<Vec<f64>, SelfishMiningError> {
    attack_curve_with(
        family,
        gamma,
        ps,
        epsilon,
        warm_start,
        SolverParallelism::serial(),
    )
}

/// [`attack_curve`] with intra-solve parallelism: every inner
/// relative-value-iteration solve and revenue evaluation along the curve may
/// fan its sweeps over `parallelism` threads. Results are bit-identical for
/// any setting; this is the knob the `sm-sweep` engine uses to soak up
/// left-over budget when it has fewer curve jobs than worker threads.
///
/// # Errors
///
/// Propagates instantiation and solver errors.
pub fn attack_curve_with(
    family: &ParametricModel,
    gamma: f64,
    ps: &[f64],
    epsilon: f64,
    warm_start: bool,
    parallelism: SolverParallelism,
) -> Result<Vec<f64>, SelfishMiningError> {
    Ok(
        attack_curve_certified_with(family, gamma, ps, epsilon, warm_start, parallelism)?
            .into_iter()
            .map(|solve| solve.strategy_revenue)
            .collect(),
    )
}

/// One certified point of an attack curve: the ε-certificate on `ERRev*`
/// together with the ε-optimal strategy achieving it — everything the
/// statistical-conformance subsystem needs to independently witness the
/// solve with a Monte-Carlo replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedSolve {
    /// The attack scenario the point was solved under (the family's
    /// scenario; [`crate::AttackScenario::Optimal`] for the paper's model).
    pub scenario: crate::AttackScenario,
    /// Adversarial resource share of the point.
    pub p: f64,
    /// Switching probability of the point.
    pub gamma: f64,
    /// Certified lower end of the revenue bracket (`ERRev* − ε ≤ β_low ≤
    /// ERRev*`).
    pub beta_low: f64,
    /// Certified upper end of the revenue bracket (`ERRev* ≤ β_up`).
    pub beta_up: f64,
    /// Exact expected relative revenue of `strategy`, which also lies inside
    /// `[β_low, β_up]`.
    pub strategy_revenue: f64,
    /// The ε-optimal positional strategy of the point.
    pub strategy: PositionalStrategy,
    /// Precision `ε` the point was certified at (`β_up − β_low ≤ ε` up to
    /// the clamping of both ends into `[0, 1]`).
    pub epsilon: f64,
    /// Final bias vector of the certifying solve — the witness an
    /// independent checker (the `sm-audit` crate) replays single
    /// Bellman-residual passes against to re-validate `[β_low, β_up]`
    /// without re-running the solver. Empty when the inner solver carries
    /// no bias (exact methods).
    pub bias: Vec<f64>,
}

/// [`attack_curve`] returning the full per-point certificates instead of the
/// bare revenues: same shared arena, same in-place re-instantiation, same
/// warm-start schedule — [`attack_curve`] is this function with everything
/// but `strategy_revenue` dropped.
///
/// # Errors
///
/// Propagates instantiation and solver errors.
pub fn attack_curve_certified(
    family: &ParametricModel,
    gamma: f64,
    ps: &[f64],
    epsilon: f64,
    warm_start: bool,
) -> Result<Vec<CertifiedSolve>, SelfishMiningError> {
    attack_curve_certified_with(
        family,
        gamma,
        ps,
        epsilon,
        warm_start,
        SolverParallelism::serial(),
    )
}

/// [`attack_curve_certified`] with intra-solve parallelism (see
/// [`attack_curve_with`]); bit-identical certificates for any thread count.
///
/// # Errors
///
/// Propagates instantiation and solver errors.
pub fn attack_curve_certified_with(
    family: &ParametricModel,
    gamma: f64,
    ps: &[f64],
    epsilon: f64,
    warm_start: bool,
    parallelism: SolverParallelism,
) -> Result<Vec<CertifiedSolve>, SelfishMiningError> {
    attack_curve_certified_config(
        family,
        gamma,
        ps,
        warm_start,
        AnalysisConfig::with_epsilon(epsilon).with_parallelism(parallelism),
    )
}

/// [`attack_curve_certified`] under a full [`AnalysisConfig`] — the entry
/// point for configuring the sweep kernel on top of thread count. Certified
/// β bounds, strategies and revenues are bit-identical for any kernel and
/// any thread count: the certificates only ever come from full Jacobi
/// sweeps, the kernels accelerate the interleaved evaluation sweeps.
///
/// # Errors
///
/// Propagates instantiation and solver errors.
pub fn attack_curve_certified_config(
    family: &ParametricModel,
    gamma: f64,
    ps: &[f64],
    warm_start: bool,
    config: AnalysisConfig,
) -> Result<Vec<CertifiedSolve>, SelfishMiningError> {
    let mut tracker = CurveTracker::new(family, gamma, warm_start, config);
    ps.iter().map(|&p| tracker.advance(p)).collect()
}

/// Incremental warm-start state of one attack curve: the reusable arena, the
/// Dinkelbach carry (`β` seed + bias vectors) and the `(p, β_low)` history
/// driving the quadratic `β` extrapolation.
///
/// [`attack_curve_certified_config`] is a thin loop over
/// [`CurveTracker::advance`]; the query service holds trackers *open* across
/// requests instead, so a cached curve keeps warm-starting new points for as
/// long as it stays resident. The certificate produced for a point is a pure
/// function of the family, `γ`, the analysis config and the sequence of
/// `advance`d points before it — never of thread counts ([`CurveTracker::
/// set_parallelism`]) — which is what lets a caching layer replay the same
/// canonical sequence and answer bit-identically in any cache state.
///
/// ```
/// use selfish_mining::experiments::CurveTracker;
/// use selfish_mining::{AnalysisConfig, ParametricModel};
///
/// # fn main() -> Result<(), selfish_mining::SelfishMiningError> {
/// let family = ParametricModel::build(2, 1, 4)?;
/// let config = AnalysisConfig::with_epsilon(1e-2);
///
/// // Walk a curve in ascending p; each solve warm-starts from the last.
/// let mut tracker = CurveTracker::new(&family, 0.5, true, config.clone());
/// let mut brackets = Vec::new();
/// for p in [0.1, 0.2, 0.3] {
///     let solve = tracker.advance(p)?;
///     assert!(solve.beta_low <= solve.strategy_revenue);
///     assert!(solve.strategy_revenue <= solve.beta_up);
///     brackets.push((solve.beta_low, solve.beta_up));
/// }
///
/// // Purity: a fresh tracker replaying the same prefix reproduces the
/// // certificate bit for bit — the contract crash/resume orchestration
/// // (the `sm-grid` crate) is built on.
/// let mut replay = CurveTracker::new(&family, 0.5, true, config);
/// replay.advance(0.1)?;
/// replay.advance(0.2)?;
/// let again = replay.advance(0.3)?;
/// assert_eq!(again.beta_low.to_bits(), brackets[2].0.to_bits());
/// assert_eq!(again.beta_up.to_bits(), brackets[2].1.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CurveTracker<'a> {
    family: &'a ParametricModel,
    gamma: f64,
    warm_start: bool,
    config: AnalysisConfig,
    model: Option<SelfishMiningModel>,
    warm: Option<DinkelbachWarmStart>,
    // The most recent (p, certified β_low) points, newest last, for the β
    // extrapolation.
    history: Vec<(f64, f64)>,
}

impl<'a> CurveTracker<'a> {
    /// Opens a tracker over `family` at switching probability `gamma`.
    /// `warm_start = false` solves every point cold (the sweep engine's
    /// ablation knob) while still reusing the arena.
    pub fn new(
        family: &'a ParametricModel,
        gamma: f64,
        warm_start: bool,
        config: AnalysisConfig,
    ) -> Self {
        CurveTracker {
            family,
            gamma,
            warm_start,
            config,
            model: None,
            warm: None,
            history: Vec::new(),
        }
    }

    /// The curve's switching probability.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The last `advance`d `p`, if any — a caching layer uses this as the
    /// curve's warm frontier.
    pub fn frontier(&self) -> Option<f64> {
        self.history.last().map(|&(p, _)| p)
    }

    /// Re-targets the intra-solve thread allowance for subsequent solves.
    /// Certificates are bit-identical for any setting, so a scheduler may
    /// re-shape this freely between calls (e.g. per-request allowances).
    pub fn set_parallelism(&mut self, parallelism: SolverParallelism) {
        self.config = self.config.clone().with_parallelism(parallelism);
    }

    /// Solves the point `p` warm from the tracker's state and advances the
    /// state (carry, extrapolation history) past it — the sweep engine's
    /// per-curve schedule.
    ///
    /// # Errors
    ///
    /// Propagates instantiation and solver errors; the tracker state is
    /// unchanged on error.
    pub fn advance(&mut self, p: f64) -> Result<CertifiedSolve, SelfishMiningError> {
        let (solve, carry) = self.solve(p)?;
        self.warm = if self.warm_start { Some(carry) } else { None };
        if self.history.len() == 3 {
            self.history.remove(0);
        }
        self.history.push((p, solve.beta_low));
        Ok(solve)
    }

    /// Solves the point `p` warm from the tracker's state **without**
    /// advancing it: the carry and extrapolation history are left exactly as
    /// before, so later `advance`/`probe` calls are unaffected by the probe.
    /// This is how the query service answers off-lattice points — the result
    /// is a pure function of the canonical lattice prefix and `p`, never of
    /// which other queries happened to be probed in between.
    ///
    /// # Errors
    ///
    /// Propagates instantiation and solver errors.
    pub fn probe(&mut self, p: f64) -> Result<CertifiedSolve, SelfishMiningError> {
        self.solve(p).map(|(solve, _)| solve)
    }

    /// Snapshots the detachable warm-start state — the Dinkelbach carry and
    /// the `(p, β_low)` extrapolation history, *not* the arena buffer. A
    /// caching layer stores one snapshot per canonical chain position and
    /// [`CurveTracker::restore`]s it into a fresh tracker to continue (or
    /// probe off) that exact position later, with bit-identical results.
    pub fn snapshot(&self) -> CurveCarry {
        CurveCarry {
            warm: self.warm.clone(),
            history: self.history.clone(),
        }
    }

    /// Restores a [`CurveTracker::snapshot`]. The tracker behaves exactly as
    /// the one the snapshot was taken from (the arena is refilled per solve,
    /// so its contents never leak across positions).
    pub fn restore(&mut self, carry: &CurveCarry) {
        self.warm.clone_from(&carry.warm);
        self.history.clone_from(&carry.history);
    }

    /// Releases the instantiated arena buffer for external reuse (e.g. a
    /// cache keeping one buffer per curve instead of one per solve).
    pub fn into_arena(self) -> Option<SelfishMiningModel> {
        self.model
    }

    /// Seeds the tracker with a previously [`CurveTracker::into_arena`]-
    /// released buffer, saving the first solve's allocation. Buffers are
    /// interchangeable within a family: every solve refills the arena for
    /// its own `(p, γ)` before reading it.
    pub fn with_arena(mut self, arena: Option<SelfishMiningModel>) -> Self {
        self.model = arena;
        self
    }

    /// One warm solve at `p` from the current state; returns the certificate
    /// and the Dinkelbach carry without touching the tracker's own carry or
    /// history. Only the arena is (re)filled in place, which is invisible:
    /// every solve refills it for its own `p` first.
    fn solve(
        &mut self,
        p: f64,
    ) -> Result<(CertifiedSolve, DinkelbachWarmStart), SelfishMiningError> {
        let instance = match self.model.as_mut() {
            Some(instance) => {
                self.family.instantiate_into(instance, p, self.gamma)?;
                instance
            }
            None => self.model.insert(self.family.instantiate(p, self.gamma)?),
        };
        let mut seeded;
        let warm = match self.warm.as_ref() {
            Some(w) => {
                seeded = w.clone();
                seeded.beta = extrapolate_beta(p, &self.history);
                Some(&seeded)
            }
            None => None,
        };
        let procedure = AnalysisProcedure::new(self.config.clone());
        let (result, carry) = procedure.solve_dinkelbach_warm(instance, warm)?;
        let solve = CertifiedSolve {
            scenario: self.family.scenario(),
            p,
            gamma: self.gamma,
            beta_low: result.beta_low,
            beta_up: result.beta_up,
            strategy_revenue: result.strategy_revenue,
            strategy: result.strategy,
            epsilon: self.config.epsilon,
            bias: result.bias,
        };
        Ok((solve, carry))
    }
}

/// Detached warm-start state of a [`CurveTracker`]: the Dinkelbach carry
/// (`β` seed + bias vectors) and the `(p, β_low)` extrapolation history at
/// one chain position. [`Default`] is the cold state a fresh tracker starts
/// from. See [`CurveTracker::snapshot`]/[`CurveTracker::restore`].
#[derive(Debug, Clone, Default)]
pub struct CurveCarry {
    warm: Option<DinkelbachWarmStart>,
    history: Vec<(f64, f64)>,
}

impl CurveCarry {
    /// The chain position's last certified `p`, if the carry is warm.
    pub fn frontier(&self) -> Option<f64> {
        self.history.last().map(|&(p, _)| p)
    }
}

/// Extrapolation of the revenue curve to seed the next point's Dinkelbach
/// iteration: quadratic (Newton's divided differences) through the last
/// three `(p, β_low)` points when available — the ERRev curves are smooth
/// and convex enough that this usually lands within the analysis `ε`,
/// collapsing the point to a single inner solve — degrading to linear, to
/// the neighbouring value, and to a cold `0` as history shrinks. Clamped to
/// `[0, 1]`; any seeding error is recovered by the iteration itself.
fn extrapolate_beta(p: f64, history: &[(f64, f64)]) -> f64 {
    let distinct = |a: f64, b: f64| (a - b).abs() > f64::EPSILON;
    let estimate = match *history {
        [(p0, r0), (p1, r1), (p2, r2)]
            if distinct(p0, p1) && distinct(p1, p2) && distinct(p0, p2) =>
        {
            let d01 = (r1 - r0) / (p1 - p0);
            let d12 = (r2 - r1) / (p2 - p1);
            let d012 = (d12 - d01) / (p2 - p0);
            r2 + d12 * (p - p2) + d012 * (p - p2) * (p - p1)
        }
        [.., (p1, r1), (p2, r2)] if distinct(p1, p2) => r2 + (r2 - r1) / (p2 - p1) * (p - p2),
        [.., (_, r2)] => r2,
        [] => 0.0,
    };
    estimate.clamp(0.0, 1.0)
}

/// The values of `p` used by the paper (0 to 0.3 in steps of 0.01).
pub fn paper_p_grid() -> Vec<f64> {
    (0..=30).map(|i| i as f64 / 100.0).collect()
}

/// A coarser `p` grid (steps of 0.05) used by the default benchmark harness to
/// keep wall-clock times reasonable; the curves' shape is unchanged.
pub fn coarse_p_grid() -> Vec<f64> {
    (0..=6).map(|i| i as f64 * 0.05).collect()
}

/// One row of the runtime table (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Human-readable attack label ("our attack" or "single-tree").
    pub attack: String,
    /// Attack depth `d` (0 for the single-tree baseline).
    pub depth: usize,
    /// Forking number `f` (tree width for the single-tree baseline).
    pub forks: usize,
    /// Number of states of the constructed model.
    pub num_states: usize,
    /// Wall-clock time of model construction plus analysis, in seconds.
    pub seconds: f64,
    /// The expected relative revenue obtained (not reported in the paper's
    /// table but useful for cross-checking).
    pub revenue: f64,
}

/// Measures one Table 1 row for our attack at `(d, f)` with the given
/// parameters. The model is constructed through the production path —
/// parametric arena plus instantiation — so the timing reflects the stack
/// the sweep engine runs on.
///
/// # Errors
///
/// Propagates model and solver errors.
pub fn table1_row(
    p: f64,
    gamma: f64,
    depth: usize,
    forks: usize,
    max_fork_length: usize,
    epsilon: f64,
) -> Result<Table1Row, SelfishMiningError> {
    let start = Instant::now();
    let family = ParametricModel::build(depth, forks, max_fork_length)?;
    let model = family.instantiate(p, gamma)?;
    let result = AnalysisProcedure::with_epsilon(epsilon).solve(&model)?;
    let elapsed: Duration = start.elapsed();
    Ok(Table1Row {
        attack: "our attack".to_string(),
        depth,
        forks,
        num_states: model.num_states(),
        seconds: elapsed.as_secs_f64(),
        revenue: result.strategy_revenue,
    })
}

/// Measures the single-tree baseline row of Table 1.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn table1_single_tree_row(
    p: f64,
    gamma: f64,
    max_depth: usize,
    max_width: usize,
) -> Result<Table1Row, SelfishMiningError> {
    let start = Instant::now();
    let result = SingleTreeAttack {
        p,
        gamma,
        max_depth,
        max_width,
    }
    .analyse()?;
    let elapsed = start.elapsed();
    Ok(Table1Row {
        attack: "single-tree selfish mining".to_string(),
        depth: max_depth,
        forks: max_width,
        num_states: result.num_states,
        seconds: elapsed.as_secs_f64(),
        revenue: result.relative_revenue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_point_orders_attack_above_baselines_for_d2() {
        let sweep = Figure2Sweep {
            attack_grid: vec![(2, 1)],
            epsilon: 5e-3,
            ..Figure2Sweep::default()
        };
        let point = sweep.point(0.3, 0.5).unwrap();
        assert_eq!(point.attack_revenue.len(), 1);
        assert!(
            point.attack_revenue[0] >= point.honest_revenue - 5e-3,
            "attack {} vs honest {}",
            point.attack_revenue[0],
            point.honest_revenue
        );
        assert!((0.0..1.0).contains(&point.single_tree_revenue));
    }

    #[test]
    fn curve_is_monotone_in_p_for_small_config() {
        let sweep = Figure2Sweep {
            attack_grid: vec![(1, 1)],
            epsilon: 1e-2,
            ..Figure2Sweep::default()
        };
        let curve = sweep.curve(0.5, &[0.0, 0.15, 0.3]).unwrap();
        assert_eq!(curve.len(), 3);
        assert!(curve[0].attack_revenue[0] <= curve[1].attack_revenue[0] + 1e-2);
        assert!(curve[1].attack_revenue[0] <= curve[2].attack_revenue[0] + 1e-2);
    }

    #[test]
    fn table1_rows_record_positive_times_and_states() {
        let row = table1_row(0.3, 0.5, 1, 1, 4, 1e-2).unwrap();
        assert!(row.num_states > 0);
        assert!(row.seconds >= 0.0);
        assert!((0.0..1.0).contains(&row.revenue));
        let tree = table1_single_tree_row(0.3, 0.5, 4, 5).unwrap();
        assert!(tree.num_states > 0);
        assert_eq!(tree.attack, "single-tree selfish mining");
    }

    #[test]
    fn certified_curve_brackets_its_own_revenue() {
        let family = ParametricModel::build(2, 1, 4).unwrap();
        let ps = [0.1, 0.2, 0.3];
        let epsilon = 5e-3;
        let solves = attack_curve_certified(&family, 0.5, &ps, epsilon, true).unwrap();
        let revenues = attack_curve(&family, 0.5, &ps, epsilon, true).unwrap();
        assert_eq!(solves.len(), ps.len());
        for (solve, (&p, &revenue)) in solves.iter().zip(ps.iter().zip(&revenues)) {
            assert_eq!(solve.p, p);
            assert_eq!(solve.gamma, 0.5);
            // attack_curve is the projection of the certified curve.
            assert_eq!(solve.strategy_revenue, revenue);
            assert!(
                solve.beta_low <= solve.strategy_revenue + 1e-12
                    && solve.strategy_revenue <= solve.beta_up + 1e-12,
                "revenue {} outside certificate [{}, {}]",
                solve.strategy_revenue,
                solve.beta_low,
                solve.beta_up
            );
            assert!(solve.beta_up - solve.beta_low <= epsilon + 1e-12);
            assert_eq!(solve.strategy.num_states(), family.num_states());
        }
    }

    #[test]
    fn tracker_probe_is_invisible_to_the_chain() {
        // Two trackers advance the same prefix; one additionally probes an
        // off-grid point in between. The probe must not perturb any later
        // certificate — that invariance is what lets the query service
        // answer arbitrary points from a canonical lattice bit-identically.
        let family = ParametricModel::build(2, 1, 4).unwrap();
        let config = AnalysisConfig::with_epsilon(5e-3);
        let mut plain = CurveTracker::new(&family, 0.5, true, config.clone());
        let mut probed = CurveTracker::new(&family, 0.5, true, config.clone());
        let mut plain_solves = Vec::new();
        let mut probed_solves = Vec::new();
        for &p in &[0.1, 0.2, 0.3] {
            plain_solves.push(plain.advance(p).unwrap());
            let before = probed.probe(p + 0.025).unwrap();
            probed_solves.push(probed.advance(p).unwrap());
            let after = probed.probe(p + 0.025).unwrap();
            // The probe answer moves only when the chain advances under it.
            assert_eq!(before.p, after.p);
            assert!(before.beta_up - before.beta_low <= 5e-3 + 1e-12);
            assert!(after.beta_up - after.beta_low <= 5e-3 + 1e-12);
        }
        assert_eq!(plain_solves, probed_solves);
        assert_eq!(plain.frontier(), Some(0.3));
        // Probing from identical chain state is reproducible bit for bit.
        assert_eq!(plain.probe(0.25).unwrap(), probed.probe(0.25).unwrap());
        // And the legacy curve entry point is exactly a fold over advance.
        let wrapped =
            attack_curve_certified_config(&family, 0.5, &[0.1, 0.2, 0.3], true, config).unwrap();
        assert_eq!(wrapped, plain_solves);
    }

    #[test]
    fn p_grids_have_expected_shape() {
        let fine = paper_p_grid();
        assert_eq!(fine.len(), 31);
        assert_eq!(fine[0], 0.0);
        assert!((fine[30] - 0.3).abs() < 1e-12);
        let coarse = coarse_p_grid();
        assert_eq!(coarse.len(), 7);
        assert!((coarse[6] - 0.3).abs() < 1e-12);
    }
}
