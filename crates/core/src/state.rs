//! The selfish-mining MDP state `(C, O, type)` of Section 3.2.

use crate::AttackParams;
use std::fmt;

/// Owner of a block on the main chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The block was mined by honest miners.
    Honest,
    /// The block was mined by the adversarial coalition.
    Adversary,
}

/// The paper's `type` component of a state: whether a proof is still being
/// computed or a party just produced one.
///
/// The reproduction uses the *pre-incorporation* convention for honest blocks:
/// in [`Phase::HonestFound`] the freshly found honest block is pending and has
/// not yet been linked into the depth indexing of `C` and `O`. This matches
/// the attack narrative (the adversary reveals a fork "together with the
/// occurrence of a freshly mined honest block", racing against it) and is what
/// makes the `d = f = 1` configuration exhibit the switching-probability
/// dependence reported in the paper's Figure 2; see DESIGN.md for a discussion
/// of this modelling choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// All parties are mining (`type = mining`).
    Mining,
    /// Honest miners just found a block; it is pending incorporation
    /// (`type = honest`).
    HonestFound,
    /// The adversary just extended one of its private forks
    /// (`type = adversary`).
    AdversaryFound,
}

/// A state of the selfish-mining MDP.
///
/// * `forks[(i-1) * f + (j-1)]` is the paper's `C[i, j]`: the length of the
///   `j`-th private fork rooted at the main-chain block at depth `i`
///   (depth 1 = tip of the accepted public chain).
/// * `owners[i-1]` is the paper's `O[i]`: the owner of the main-chain block at
///   depth `i`, for `i = 1..d−1`.
/// * `phase` is the paper's `type`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmState {
    /// Private-fork lengths, row-major by depth: `d × f` entries in `0..=l`.
    pub forks: Vec<u8>,
    /// Owners of the main-chain blocks at depths `1..d−1` (`d − 1` entries).
    pub owners: Vec<Owner>,
    /// Mining phase.
    pub phase: Phase,
}

impl SmState {
    /// The initial state `s₀`: no private forks, all tracked blocks honest,
    /// everyone mining.
    pub fn initial(params: &AttackParams) -> Self {
        SmState {
            forks: vec![0; params.depth * params.forks_per_block],
            owners: vec![Owner::Honest; params.depth - 1],
            phase: Phase::Mining,
        }
    }

    /// The paper's `C[depth, fork]` with 1-based indices.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range for the parameters this state
    /// was built with.
    pub fn fork_length(&self, params: &AttackParams, depth: usize, fork: usize) -> u8 {
        assert!(
            (1..=params.depth).contains(&depth) && (1..=params.forks_per_block).contains(&fork),
            "fork index ({depth}, {fork}) out of range"
        );
        self.forks[(depth - 1) * params.forks_per_block + (fork - 1)]
    }

    /// Mutable access to `C[depth, fork]` with 1-based indices.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fork_length_mut(&mut self, params: &AttackParams, depth: usize, fork: usize) -> &mut u8 {
        assert!(
            (1..=params.depth).contains(&depth) && (1..=params.forks_per_block).contains(&fork),
            "fork index ({depth}, {fork}) out of range"
        );
        &mut self.forks[(depth - 1) * params.forks_per_block + (fork - 1)]
    }

    /// Owner of the main-chain block at `depth` (1-based, `depth < d`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is out of range.
    pub fn owner(&self, depth: usize) -> Owner {
        self.owners[depth - 1]
    }

    /// The number of block positions the adversary mines on (the paper's `σ`):
    /// every non-empty private fork is extended, and at every depth with at
    /// least one empty fork slot a new fork can be started.
    pub fn mining_slots(&self, params: &AttackParams) -> usize {
        (1..=params.depth)
            .map(|depth| self.mining_slots_at_depth(params, depth))
            .sum()
    }

    /// The mining positions rooted at `depth` (1-based): the non-empty forks
    /// there plus one fresh fork if an empty slot remains. This is the
    /// single home of the slot-counting rule — [`SmState::mining_slots`] and
    /// the scenario-filtered `σ` of restricted attack scenarios both sum it.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is out of range for the parameters this state was
    /// built with.
    pub fn mining_slots_at_depth(&self, params: &AttackParams, depth: usize) -> usize {
        let f = params.forks_per_block;
        let row = &self.forks[(depth - 1) * f..depth * f];
        row.iter().filter(|&&len| len > 0).count() + usize::from(row.contains(&0))
    }

    /// The lowest-index empty fork slot at the given depth (1-based), if any.
    pub fn first_empty_fork(&self, params: &AttackParams, depth: usize) -> Option<usize> {
        (1..=params.forks_per_block).find(|&j| self.fork_length(params, depth, j) == 0)
    }

    /// Total number of withheld (private, unpublished) adversary blocks.
    pub fn total_private_blocks(&self) -> usize {
        self.forks.iter().map(|&len| len as usize).sum()
    }

    /// Whether the state is structurally consistent with the parameters.
    pub fn is_consistent(&self, params: &AttackParams) -> bool {
        self.forks.len() == params.depth * params.forks_per_block
            && self.owners.len() == params.depth - 1
            && self
                .forks
                .iter()
                .all(|&len| (len as usize) <= params.max_fork_length)
    }
}

impl fmt::Display for SmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C={:?} O=[", self.forks)?;
        for (i, owner) in self.owners.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(
                f,
                "{}",
                match owner {
                    Owner::Honest => "H",
                    Owner::Adversary => "A",
                }
            )?;
        }
        write!(
            f,
            "] phase={}",
            match self.phase {
                Phase::Mining => "mining",
                Phase::HonestFound => "honest",
                Phase::AdversaryFound => "adversary",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(d: usize, f: usize, l: usize) -> AttackParams {
        AttackParams::new(0.3, 0.5, d, f, l).unwrap()
    }

    #[test]
    fn initial_state_shape() {
        let p = params(3, 2, 4);
        let s = SmState::initial(&p);
        assert_eq!(s.forks.len(), 6);
        assert_eq!(s.owners.len(), 2);
        assert_eq!(s.phase, Phase::Mining);
        assert!(s.is_consistent(&p));
        assert_eq!(s.total_private_blocks(), 0);
    }

    #[test]
    fn fork_indexing_is_one_based_row_major() {
        let p = params(2, 3, 4);
        let mut s = SmState::initial(&p);
        *s.fork_length_mut(&p, 2, 3) = 4;
        assert_eq!(s.fork_length(&p, 2, 3), 4);
        assert_eq!(s.forks[5], 4);
        assert_eq!(s.fork_length(&p, 1, 1), 0);
    }

    #[test]
    fn mining_slots_counts_nonempty_forks_and_open_depths() {
        let p = params(2, 2, 4);
        let mut s = SmState::initial(&p);
        // All slots empty: one "start a fork" slot per depth.
        assert_eq!(s.mining_slots(&p), 2);
        // One fork at depth 1: that fork + the empty slot at depth 1 + depth 2 slot.
        *s.fork_length_mut(&p, 1, 1) = 2;
        assert_eq!(s.mining_slots(&p), 3);
        // Fill both forks at depth 1: two forks + depth 2 slot.
        *s.fork_length_mut(&p, 1, 2) = 1;
        assert_eq!(s.mining_slots(&p), 3);
        // Fill everything: 4 forks, no empty slots.
        *s.fork_length_mut(&p, 2, 1) = 1;
        *s.fork_length_mut(&p, 2, 2) = 3;
        assert_eq!(s.mining_slots(&p), 4);
    }

    #[test]
    fn first_empty_fork_finds_lowest_index() {
        let p = params(1, 3, 4);
        let mut s = SmState::initial(&p);
        assert_eq!(s.first_empty_fork(&p, 1), Some(1));
        *s.fork_length_mut(&p, 1, 1) = 1;
        assert_eq!(s.first_empty_fork(&p, 1), Some(2));
        *s.fork_length_mut(&p, 1, 2) = 2;
        *s.fork_length_mut(&p, 1, 3) = 1;
        assert_eq!(s.first_empty_fork(&p, 1), None);
    }

    #[test]
    fn consistency_detects_overlong_forks() {
        let p = params(1, 1, 2);
        let mut s = SmState::initial(&p);
        assert!(s.is_consistent(&p));
        s.forks[0] = 3;
        assert!(!s.is_consistent(&p));
    }

    #[test]
    fn display_is_compact() {
        let p = params(2, 1, 4);
        let s = SmState::initial(&p);
        let rendered = format!("{s}");
        assert!(rendered.contains("phase=mining"));
        assert!(rendered.contains("O=[H]"));
    }
}
