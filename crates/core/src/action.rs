//! Adversary actions of the selfish-mining MDP.

use std::fmt;

/// An action of the adversary (Section 3.2, "Actions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmAction {
    /// Keep mining: do not publish anything.
    Mine,
    /// Publish the first `length` blocks of the `fork`-th private fork rooted
    /// at the main-chain block at `depth` (the paper's `release_{i,j,k}`).
    Release {
        /// Depth `i` of the fork's root block on the main chain (1 = tip).
        depth: usize,
        /// Index `j` of the fork among the slots at that depth (1-based).
        fork: usize,
        /// Number of blocks `k` to publish from the front of the fork.
        length: usize,
    },
}

impl SmAction {
    /// Whether this is a release (publish) action.
    pub fn is_release(&self) -> bool {
        matches!(self, SmAction::Release { .. })
    }

    /// A stable, human-readable name used as the MDP action label.
    pub fn name(&self) -> String {
        match self {
            SmAction::Mine => "mine".to_string(),
            SmAction::Release {
                depth,
                fork,
                length,
            } => {
                format!("release({depth},{fork},{length})")
            }
        }
    }
}

impl fmt::Display for SmAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let mine = SmAction::Mine;
        let release = SmAction::Release {
            depth: 2,
            fork: 1,
            length: 3,
        };
        assert_eq!(mine.name(), "mine");
        assert_eq!(release.name(), "release(2,1,3)");
        assert_ne!(mine, release);
        assert!(!mine.is_release());
        assert!(release.is_release());
    }

    #[test]
    fn display_matches_name() {
        let a = SmAction::Release {
            depth: 1,
            fork: 2,
            length: 1,
        };
        assert_eq!(format!("{a}"), a.name());
    }
}
