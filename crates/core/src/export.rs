//! Export of computed MDP strategies into the chain simulator's vocabulary.
//!
//! The analysis and the simulator are deliberately independent
//! implementations of the same system model; the bridge between them is the
//! translation of an ε-optimal [`PositionalStrategy`] over MDP state indices
//! into an [`sm_chain::TableStrategy`] over simulator views. That
//! translation used to live in a test helper; [`StrategyExport`] promotes it
//! to a library API so the conformance subsystem, the examples and the tests
//! all share one definition — with an explicit [`UnknownViewPolicy`] instead
//! of the historical silent wait-fallback for views the MDP never reaches.

use crate::{
    Owner, ParametricModel, Phase, SelfishMiningError, SelfishMiningModel, SmAction, SmState,
};
use sm_chain::{AdversaryAction, AdversaryView, MinerClass, TableStrategy, UnknownViewPolicy};
use sm_mdp::PositionalStrategy;

/// Compiles positional MDP strategies into simulator table strategies.
///
/// The translation only depends on the model's *structure* — the discovered
/// states, their action lists and the `(d, f)` shape — never on the
/// instantiated probabilities, so an export handle can be built either from
/// an instantiated model ([`StrategyExport::new`]) or directly from the
/// shared family skeleton ([`StrategyExport::from_family`], no per-`(p, γ)`
/// buffers touched at all); one handle serves every grid point of its
/// family. Restricted-scenario families (see [`crate::AttackScenario`])
/// export the same way: their state/action tables already are the
/// scenario's sub-model, so the compiled table enforces the restriction by
/// construction.
///
/// # Example
///
/// ```
/// use selfish_mining::{AnalysisProcedure, AttackParams, SelfishMiningModel, StrategyExport};
/// use sm_chain::UnknownViewPolicy;
///
/// # fn main() -> Result<(), selfish_mining::SelfishMiningError> {
/// let params = AttackParams::new(0.3, 0.5, 2, 1, 4)?;
/// let model = SelfishMiningModel::build(&params)?;
/// let result = AnalysisProcedure::with_epsilon(1e-2).solve_dinkelbach(&model)?;
/// let table = StrategyExport::new(&model).table(&result.strategy, UnknownViewPolicy::Wait)?;
/// assert!(!table.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StrategyExport<'a> {
    depth: usize,
    forks_per_block: usize,
    max_fork_length: usize,
    states: &'a [SmState],
    actions: &'a [Vec<SmAction>],
}

impl<'a> StrategyExport<'a> {
    /// Creates an exporter over an instantiated model.
    pub fn new(model: &'a SelfishMiningModel) -> Self {
        let params = model.params();
        StrategyExport {
            depth: params.depth,
            forks_per_block: params.forks_per_block,
            max_fork_length: params.max_fork_length,
            states: model.states_slice(),
            actions: model.actions_slice(),
        }
    }

    /// Creates an exporter over a parametric family's shared skeleton — the
    /// same translation as [`StrategyExport::new`] without instantiating any
    /// probability or reward buffers.
    pub fn from_family(family: &'a ParametricModel) -> Self {
        StrategyExport {
            depth: family.depth(),
            forks_per_block: family.forks_per_block(),
            max_fork_length: family.max_fork_length(),
            states: family.states_slice(),
            actions: family.actions_slice(),
        }
    }

    /// Attack depth `d` of the exported family.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Forking number `f` of the exported family.
    pub fn forks_per_block(&self) -> usize {
        self.forks_per_block
    }

    /// Maximal private fork length `l` of the exported family.
    pub fn max_fork_length(&self) -> usize {
        self.max_fork_length
    }

    /// Number of states the exported strategies must cover.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The simulator view corresponding to an MDP state, or `None` for
    /// mining-phase states (the simulator only consults the strategy at
    /// decision points, i.e. right after a block was found).
    ///
    /// # Panics
    ///
    /// Panics if `state_index` is out of bounds.
    pub fn view(&self, state_index: usize) -> Option<AdversaryView> {
        let state = &self.states[state_index];
        if state.phase == Phase::Mining {
            return None;
        }
        let f = self.forks_per_block;
        Some(AdversaryView {
            // The paper's row-major `C[depth, fork]` layout of `SmState`.
            fork_lengths: (0..self.depth)
                .map(|depth| {
                    state.forks[depth * f..(depth + 1) * f]
                        .iter()
                        .map(|&len| len as usize)
                        .collect()
                })
                .collect(),
            owners: (1..self.depth)
                .map(|depth| match state.owner(depth) {
                    Owner::Honest => MinerClass::Honest,
                    Owner::Adversary => MinerClass::Adversary,
                })
                .collect(),
            pending_honest_block: state.phase == Phase::HonestFound,
            just_mined: state.phase == Phase::AdversaryFound,
        })
    }

    /// Compiles `strategy` into a simulator table named `"mdp-optimal"`.
    ///
    /// Every non-mining MDP state contributes one table entry (the state →
    /// view translation is injective, so entries never collide); views the
    /// MDP never reaches are handled by `policy` at simulation time.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] if the strategy does
    /// not cover every model state or selects an out-of-range action index.
    pub fn table(
        &self,
        strategy: &PositionalStrategy,
        policy: UnknownViewPolicy,
    ) -> Result<TableStrategy, SelfishMiningError> {
        self.table_named(strategy, policy, "mdp-optimal")
    }

    /// [`StrategyExport::table`] with an explicit strategy name for reports.
    ///
    /// # Errors
    ///
    /// See [`StrategyExport::table`].
    pub fn table_named(
        &self,
        strategy: &PositionalStrategy,
        policy: UnknownViewPolicy,
        name: impl Into<String>,
    ) -> Result<TableStrategy, SelfishMiningError> {
        if strategy.num_states() != self.states.len() {
            return Err(SelfishMiningError::InvalidParameter {
                name: "strategy",
                constraint: "must cover every state of the model it is exported from",
            });
        }
        let mut table = TableStrategy::with_policy(name, policy);
        for state_index in 0..self.states.len() {
            let Some(view) = self.view(state_index) else {
                continue;
            };
            let choice = strategy.action(state_index);
            let Some(action) = self.actions[state_index].get(choice) else {
                return Err(SelfishMiningError::InvalidParameter {
                    name: "strategy",
                    constraint: "selects an action index outside the state's action list",
                });
            };
            let table_action = match action {
                SmAction::Mine => AdversaryAction::Wait,
                SmAction::Release {
                    depth,
                    fork,
                    length,
                } => AdversaryAction::Release {
                    depth: *depth,
                    fork: *fork,
                    length: *length,
                },
            };
            table.insert(view, table_action);
        }
        // Enforce the injectivity invariant instead of assuming it: a view
        // collision would silently overwrite an earlier state's action and
        // certify against a strategy that is not the solver's.
        if table.len() != self.decision_states() {
            return Err(SelfishMiningError::InvalidParameter {
                name: "strategy",
                constraint: "export collided two model states on one simulator view",
            });
        }
        Ok(table)
    }

    /// Number of table entries an export will produce: the model's non-mining
    /// (decision-point) states.
    pub fn decision_states(&self) -> usize {
        self.states
            .iter()
            .filter(|state| state.phase != Phase::Mining)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisProcedure, AttackParams};

    fn model() -> SelfishMiningModel {
        let params = AttackParams::new(0.3, 0.5, 2, 1, 3).unwrap();
        SelfishMiningModel::build(&params).unwrap()
    }

    #[test]
    fn export_covers_every_decision_state_exactly_once() {
        let model = model();
        let export = StrategyExport::new(&model);
        let strategy = sm_mdp::PositionalStrategy::uniform_first_action(model.num_states());
        let table = export
            .table(&strategy, UnknownViewPolicy::Wait)
            .expect("export succeeds");
        assert_eq!(table.len(), export.decision_states());
        assert!(!table.is_empty());
        // Mining states produce no view; decision states always do.
        for s in 0..model.num_states() {
            assert_eq!(
                export.view(s).is_some(),
                model.state(s).phase != Phase::Mining
            );
        }
    }

    #[test]
    fn export_rejects_misshapen_strategies() {
        let model = model();
        let export = StrategyExport::new(&model);
        let short = sm_mdp::PositionalStrategy::uniform_first_action(model.num_states() - 1);
        assert!(matches!(
            export.table(&short, UnknownViewPolicy::Wait),
            Err(SelfishMiningError::InvalidParameter {
                name: "strategy",
                ..
            })
        ));
        let mut out_of_range = sm_mdp::PositionalStrategy::uniform_first_action(model.num_states());
        let decision_state = (0..model.num_states())
            .find(|&s| model.state(s).phase != Phase::Mining)
            .expect("model has decision states");
        out_of_range.set_action(decision_state, 999);
        assert!(matches!(
            export.table(&out_of_range, UnknownViewPolicy::Wait),
            Err(SelfishMiningError::InvalidParameter {
                name: "strategy",
                ..
            })
        ));
    }

    #[test]
    fn optimal_export_contains_releases() {
        let model = model();
        let result = AnalysisProcedure::with_epsilon(1e-2)
            .solve_dinkelbach(&model)
            .unwrap();
        let table = StrategyExport::new(&model)
            .table_named(&result.strategy, UnknownViewPolicy::Panic, "optimal")
            .unwrap();
        assert_eq!(sm_chain::AdversaryStrategy::name(&table), "optimal");
        assert_eq!(table.policy(), UnknownViewPolicy::Panic);
        assert!(!table.is_empty());
    }
}
