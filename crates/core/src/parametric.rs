//! The parameterized transition arena: explore a `(d, f, l)` topology once,
//! instantiate it for any `(p, γ)` in one linear pass.
//!
//! The reachable state space, the action lists and the whole CSR skeleton
//! (`row_ptr` / `action_ptr` / `col`) of the selfish-mining MDP depend only
//! on the structural parameters `(d, f, l)` — the numeric parameters `(p, γ)`
//! only scale transition probabilities and, through them, the expected
//! per-action block counts. [`ParametricModel`] exploits that: the
//! breadth-first exploration runs once over the *symbolic* transition
//! function ([`crate::symbolic_successors`]) and records, per arena
//! transition, a small list of [`ProbTerm`] atoms;
//! [`ParametricModel::instantiate`] then evaluates the atoms at concrete
//! `(p, γ)` and fills the probability and reward buffers with no hashing and
//! no BFS. Re-instantiating an existing model in place
//! ([`ParametricModel::instantiate_into`]) performs zero allocations beyond
//! the buffers already held by the model.
//!
//! Masked branches are kept *structurally*: at `γ = 0` the race-win outcome
//! of a tie release still occupies its arena slot with probability 0 (and
//! likewise the adversary split at `p = 0`), so one layout serves the entire
//! parameter square. The induced-chain extraction and the recurrence
//! classification ignore zero-probability entries, and
//! `tests/parametric_equivalence.rs` pins the instantiation to the directly
//! built model: bit-for-bit identical for interior parameters, identical
//! solver results for the masked edges.

use crate::{
    available_actions_in, symbolic_successors_in, AttackParams, AttackScenario, ProbTerm,
    SelfishMiningError, SelfishMiningModel, SmAction, SmState, DEFAULT_STATE_LIMIT,
};
use sm_mdp::{CsrLayout, CsrMdp, Mdp, TransitionRewards};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::Arc;

/// One *distinct* symbolic outcome: its probability term (as an id into the
/// interned term pool) and the block counts it finalizes. The per-pair atom
/// buffer stores `u32` ids into a pool of these — a `(d, f, l)` topology only
/// ever produces a handful of distinct outcomes, so the per-transition
/// working set shrinks to one small integer per atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RewardAtom {
    /// Id of the probability term in the interned term pool.
    pub term: u32,
    /// Adversarial blocks finalized by the outcome.
    pub adversary: u32,
    /// Honest blocks finalized by the outcome.
    pub honest: u32,
}

/// Interns `value` into `pool`, returning its stable `u32` id.
fn intern<T: Copy + Eq + Hash>(pool: &mut Vec<T>, ids: &mut HashMap<T, u32>, value: T) -> u32 {
    *ids.entry(value).or_insert_with(|| {
        let id = u32::try_from(pool.len()).expect("pool size fits u32");
        pool.push(value);
        id
    })
}

/// The `(d, f, l)` family of selfish-mining MDPs: one shared CSR skeleton
/// plus symbolic probability/reward terms, instantiable at any `(p, γ)`.
///
/// # Example
///
/// ```
/// use selfish_mining::ParametricModel;
///
/// # fn main() -> Result<(), selfish_mining::SelfishMiningError> {
/// let family = ParametricModel::build(2, 1, 4)?;
/// let a = family.instantiate(0.30, 0.5)?;
/// let mut b = family.instantiate(0.10, 0.0)?;
/// assert_eq!(a.num_states(), b.num_states()); // same skeleton
/// family.instantiate_into(&mut b, 0.25, 1.0)?; // refill in place, no rebuild
/// assert_eq!(b.params().p, 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParametricModel {
    depth: usize,
    forks_per_block: usize,
    max_fork_length: usize,
    scenario: AttackScenario,
    states: Arc<Vec<SmState>>,
    actions: Arc<Vec<Vec<SmAction>>>,
    layout: Arc<CsrLayout>,
    names: Vec<String>,
    name_of_pair: Vec<u32>,
    /// Per arena transition, the range of its probability atoms in
    /// `prob_atoms` (duplicate successors of one action merge into one slot
    /// whose probability is the sum of the merged atoms). Length
    /// `num_transitions + 1`.
    prob_atom_ptr: Vec<u32>,
    /// Probability atom ids (into `term_pool`) in arena (successor-sorted)
    /// order.
    prob_atoms: Vec<u32>,
    /// Per state-action pair, the range of its outcomes in `reward_atoms`.
    /// Length `num_pairs + 1`.
    reward_ptr: Vec<u32>,
    /// Outcome atom ids (into `atom_pool`) in discovery order, for the
    /// expected-reward sums.
    reward_atoms: Vec<u32>,
    /// Distinct probability terms of the topology, in first-seen order.
    /// Instantiation evaluates each term once into a table and the linear
    /// fill pass only gathers from it.
    term_pool: Vec<ProbTerm>,
    /// Distinct symbolic outcomes of the topology, in first-seen order.
    atom_pool: Vec<RewardAtom>,
}

impl ParametricModel {
    /// Explores the `(depth, forks_per_block, max_fork_length)` topology with
    /// the default state-space limit.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] for zero structural
    /// parameters and [`SelfishMiningError::StateSpaceTooLarge`] if the
    /// reachable state space exceeds the limit.
    pub fn build(
        depth: usize,
        forks_per_block: usize,
        max_fork_length: usize,
    ) -> Result<Self, SelfishMiningError> {
        Self::build_with_limit(depth, forks_per_block, max_fork_length, DEFAULT_STATE_LIMIT)
    }

    /// Like [`ParametricModel::build`] with an explicit state-space limit.
    ///
    /// # Errors
    ///
    /// See [`ParametricModel::build`].
    pub fn build_with_limit(
        depth: usize,
        forks_per_block: usize,
        max_fork_length: usize,
        state_limit: usize,
    ) -> Result<Self, SelfishMiningError> {
        Self::build_scenario_with_limit(
            AttackScenario::Optimal,
            depth,
            forks_per_block,
            max_fork_length,
            state_limit,
        )
    }

    /// Explores the topology of a restricted attack scenario: the symbolic
    /// BFS runs over the scenario's admissible actions and filtered mining
    /// split, so the shared skeleton *is* the scenario's sub-arena.
    /// [`AttackScenario::Optimal`] reproduces [`ParametricModel::build`]
    /// exactly.
    ///
    /// # Example
    ///
    /// ```
    /// use selfish_mining::{AttackScenario, ParametricModel};
    ///
    /// # fn main() -> Result<(), selfish_mining::SelfishMiningError> {
    /// let optimal = ParametricModel::build(2, 1, 4)?;
    /// let stubborn =
    ///     ParametricModel::build_scenario(AttackScenario::LeadStubborn, 2, 1, 4)?;
    /// assert!(stubborn.num_pairs() < optimal.num_pairs());
    /// assert_eq!(stubborn.scenario(), AttackScenario::LeadStubborn);
    /// let model = stubborn.instantiate(0.3, 0.5)?;
    /// assert_eq!(model.scenario(), AttackScenario::LeadStubborn);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// See [`ParametricModel::build`].
    pub fn build_scenario(
        scenario: AttackScenario,
        depth: usize,
        forks_per_block: usize,
        max_fork_length: usize,
    ) -> Result<Self, SelfishMiningError> {
        Self::build_scenario_with_limit(
            scenario,
            depth,
            forks_per_block,
            max_fork_length,
            DEFAULT_STATE_LIMIT,
        )
    }

    /// [`ParametricModel::build_scenario`] with an explicit state-space
    /// limit.
    ///
    /// # Errors
    ///
    /// See [`ParametricModel::build`].
    pub fn build_scenario_with_limit(
        scenario: AttackScenario,
        depth: usize,
        forks_per_block: usize,
        max_fork_length: usize,
        state_limit: usize,
    ) -> Result<Self, SelfishMiningError> {
        // The symbolic transition function reads only the structural fields;
        // interior placeholders make the parameter set pass validation.
        let params = AttackParams::new(0.5, 0.5, depth, forks_per_block, max_fork_length)?;
        let initial = SmState::initial(&params);

        let mut index_of: HashMap<SmState, usize> = HashMap::new();
        let mut states: Vec<SmState> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        index_of.insert(initial.clone(), 0);
        states.push(initial);
        queue.push_back(0);

        // The BFS mirrors `SelfishMiningModel::build_with_limit` exactly —
        // same discovery order, same successor sorting — so that an interior
        // instantiation reproduces the directly built arena bit for bit.
        let mut row_ptr: Vec<usize> = vec![0];
        let mut action_ptr: Vec<usize> = vec![0];
        let mut col: Vec<usize> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut name_ids: HashMap<String, u32> = HashMap::new();
        let mut name_of_pair: Vec<u32> = Vec::new();
        let mut prob_atom_ptr: Vec<u32> = Vec::new();
        let mut prob_atoms: Vec<u32> = Vec::new();
        let mut reward_ptr: Vec<u32> = vec![0];
        let mut reward_atoms: Vec<u32> = Vec::new();
        let mut term_pool: Vec<ProbTerm> = Vec::new();
        let mut term_ids: HashMap<ProbTerm, u32> = HashMap::new();
        let mut atom_pool: Vec<RewardAtom> = Vec::new();
        let mut atom_ids: HashMap<RewardAtom, u32> = HashMap::new();
        let mut actions: Vec<Vec<SmAction>> = Vec::new();
        let mut scratch: Vec<(usize, u32)> = Vec::new();

        while let Some(index) = queue.pop_front() {
            let state = states[index].clone();
            let state_actions = available_actions_in(&scenario, &params, &state);
            for action in &state_actions {
                let outcomes = symbolic_successors_in(&scenario, &params, &state, action)?;
                scratch.clear();
                for outcome in outcomes {
                    let target = match index_of.get(&outcome.state) {
                        Some(&existing) => existing,
                        None => {
                            let new_index = states.len();
                            if new_index >= state_limit {
                                return Err(SelfishMiningError::StateSpaceTooLarge {
                                    discovered: new_index + 1,
                                    limit: state_limit,
                                });
                            }
                            index_of.insert(outcome.state.clone(), new_index);
                            states.push(outcome.state);
                            queue.push_back(new_index);
                            new_index
                        }
                    };
                    let term_id = intern(&mut term_pool, &mut term_ids, outcome.term);
                    let atom = RewardAtom {
                        term: term_id,
                        adversary: outcome.rewards.adversary,
                        honest: outcome.rewards.honest,
                    };
                    reward_atoms.push(intern(&mut atom_pool, &mut atom_ids, atom));
                    scratch.push((target, term_id));
                }
                reward_ptr.push(u32::try_from(reward_atoms.len()).expect("atom count fits u32"));

                // Arena row: successors sorted, duplicates merged into one
                // slot whose probability is the (ordered) sum of its atoms.
                scratch.sort_by_key(|&(target, _)| target);
                let action_start = col.len();
                for &(target, term_id) in &scratch {
                    if col.len() == action_start || *col.last().expect("non-empty row") != target {
                        col.push(target);
                        prob_atom_ptr
                            .push(u32::try_from(prob_atoms.len()).expect("atom count fits u32"));
                    }
                    prob_atoms.push(term_id);
                }
                action_ptr.push(col.len());

                let name = action.name();
                let name_id = match name_ids.get(&name) {
                    Some(&id) => id,
                    None => {
                        let id = u32::try_from(names.len()).expect("name count fits u32");
                        names.push(name.clone());
                        name_ids.insert(name, id);
                        id
                    }
                };
                name_of_pair.push(name_id);
            }
            actions.push(state_actions);
            row_ptr.push(name_of_pair.len());
        }
        prob_atom_ptr.push(u32::try_from(prob_atoms.len()).expect("atom count fits u32"));

        let layout = CsrLayout::from_raw_parts(row_ptr, action_ptr, col)?;
        Ok(ParametricModel {
            depth,
            forks_per_block,
            max_fork_length,
            scenario,
            states: Arc::new(states),
            actions: Arc::new(actions),
            layout: Arc::new(layout),
            names,
            name_of_pair,
            prob_atom_ptr,
            prob_atoms,
            reward_ptr,
            reward_atoms,
            term_pool,
            atom_pool,
        })
    }

    /// Attack depth `d` of the family.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Forking number `f` of the family.
    pub fn forks_per_block(&self) -> usize {
        self.forks_per_block
    }

    /// Maximal private fork length `l` of the family.
    pub fn max_fork_length(&self) -> usize {
        self.max_fork_length
    }

    /// The attack scenario the family was explored for
    /// ([`AttackScenario::Optimal`] for the plain builders).
    pub fn scenario(&self) -> AttackScenario {
        self.scenario
    }

    /// Number of reachable states of the (parameter-independent) topology.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of state-action pairs of the shared arena.
    pub fn num_pairs(&self) -> usize {
        self.layout.num_pairs()
    }

    /// Number of transitions of the shared arena.
    pub fn num_transitions(&self) -> usize {
        self.layout.num_transitions()
    }

    /// The structured state at a given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn state(&self, index: usize) -> &SmState {
        &self.states[index]
    }

    /// The action list of a state, in the arena's action-index order.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn actions_of(&self, state: usize) -> &[SmAction] {
        &self.actions[state]
    }

    /// The full structured state table, in arena index order.
    pub(crate) fn states_slice(&self) -> &[SmState] {
        &self.states
    }

    /// The full per-state action table, in arena index order.
    pub(crate) fn actions_slice(&self) -> &[Vec<SmAction>] {
        &self.actions
    }

    /// Instantiates the family at `(p, gamma)`: one linear pass filling fresh
    /// probability and reward buffers over the shared skeleton.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] if `p` or `gamma` lie
    /// outside `[0, 1]`.
    pub fn instantiate(
        &self,
        p: f64,
        gamma: f64,
    ) -> Result<SelfishMiningModel, SelfishMiningError> {
        let params = AttackParams::new(
            p,
            gamma,
            self.depth,
            self.forks_per_block,
            self.max_fork_length,
        )?;
        let term_values = self.term_values(p, gamma);
        let mut prob = vec![0.0; self.layout.num_transitions()];
        for (slot, value) in prob.iter_mut().enumerate() {
            *value = self.slot_probability(slot, &term_values);
        }
        let csr = CsrMdp::from_raw_parts(
            Arc::clone(&self.layout),
            prob,
            self.names.clone(),
            self.name_of_pair.clone(),
            0,
        )?;
        let mdp = Mdp::from(csr);

        let transitions = self.layout.num_transitions();
        let mut adversary = Vec::with_capacity(transitions);
        let mut honest = Vec::with_capacity(transitions);
        for pair in 0..self.layout.num_pairs() {
            let (adv, hon) = self.pair_rewards(pair, &term_values);
            let len = self.layout.transition_range(pair).len();
            adversary.resize(adversary.len() + len, adv);
            honest.resize(honest.len() + len, hon);
        }
        let adversary_rewards = TransitionRewards::from_transition_values(&mdp, adversary)?;
        let honest_rewards = TransitionRewards::from_transition_values(&mdp, honest)?;

        Ok(SelfishMiningModel {
            params,
            scenario: self.scenario,
            mdp,
            states: Arc::clone(&self.states),
            actions: Arc::clone(&self.actions),
            adversary_rewards,
            honest_rewards,
        })
    }

    /// Re-instantiates an existing model of this family at new `(p, gamma)`
    /// values *in place*: the probability and reward buffers are rewritten
    /// through [`sm_mdp::CsrMdp::reweight_in_place`] and
    /// [`sm_mdp::TransitionRewards::values_mut`] with no hashing, no BFS and
    /// no allocation beyond one term-value table the size of the (tiny)
    /// interned term pool. This is the per-worker hot path of the sweep
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] for out-of-range
    /// `p` / `gamma`, or a shape error if `model` was not produced by this
    /// family (its arena must share this family's layout).
    pub fn instantiate_into(
        &self,
        model: &mut SelfishMiningModel,
        p: f64,
        gamma: f64,
    ) -> Result<(), SelfishMiningError> {
        let params = AttackParams::new(
            p,
            gamma,
            self.depth,
            self.forks_per_block,
            self.max_fork_length,
        )?;
        if !Arc::ptr_eq(&model.mdp.csr().layout_arc(), &self.layout) {
            return Err(SelfishMiningError::Mdp(
                sm_mdp::MdpError::RewardShapeMismatch {
                    detail: "model was not instantiated from this parametric family".to_string(),
                },
            ));
        }
        model.params = params;
        model.scenario = self.scenario;
        let term_values = self.term_values(p, gamma);
        model
            .mdp
            .csr_mut()
            .reweight_in_place(|slot| self.slot_probability(slot, &term_values));
        // Per-pair expected block counts, replicated over each pair's
        // transition range exactly like the fresh construction does; one
        // atom walk per pair fills both reward buffers.
        let adversary = model.adversary_rewards.values_mut();
        let honest = model.honest_rewards.values_mut();
        for pair in 0..self.layout.num_pairs() {
            let (adv, hon) = self.pair_rewards(pair, &term_values);
            let range = self.layout.transition_range(pair);
            adversary[range.clone()].fill(adv);
            honest[range].fill(hon);
        }
        // `reweight_in_place` already re-validated the arena under
        // deep-checks; this additionally covers the reward buffers.
        #[cfg(feature = "deep-checks")]
        debug_assert!(
            model
                .adversary_rewards
                .values()
                .iter()
                .all(|r| r.is_finite() && *r >= 0.0)
                && model
                    .honest_rewards
                    .values()
                    .iter()
                    .all(|r| r.is_finite() && *r >= 0.0),
            "deep-checks: re-instantiation produced an invalid reward buffer"
        );
        Ok(())
    }

    /// Resident bytes of the symbolic term tables: the per-transition and
    /// per-pair id buffers plus the interned pools. This is the part of the
    /// family's footprint that scales with the arena (the state and action
    /// tables are reported separately by callers that hold them).
    pub fn term_table_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.prob_atom_ptr.len()
            + self.prob_atoms.len()
            + self.reward_ptr.len()
            + self.reward_atoms.len())
            * size_of::<u32>()
            + self.term_pool.len() * size_of::<ProbTerm>()
            + self.atom_pool.len() * size_of::<RewardAtom>()
    }

    /// Bytes the same term tables would occupy in the un-interned
    /// representation this layout replaced: one 8-byte `ProbTerm` per
    /// probability atom, one 16-byte outcome record per reward atom and
    /// `usize` offset tables. The denominator for the memory reduction the
    /// CI `mem_footprint` gate tracks.
    pub fn term_table_bytes_uncompressed(&self) -> usize {
        use std::mem::size_of;
        (self.prob_atom_ptr.len() + self.reward_ptr.len()) * size_of::<usize>()
            + self.prob_atoms.len() * size_of::<ProbTerm>()
            + self.reward_atoms.len() * (size_of::<ProbTerm>() + 2 * size_of::<u32>())
    }

    /// Resident bytes of the shared CSR skeleton (`row_ptr` / `action_ptr` /
    /// `col`, all `u32`).
    pub fn layout_bytes(&self) -> usize {
        self.layout.resident_bytes()
    }

    /// Number of distinct probability terms of the topology (the interned
    /// term-pool size — a handful, independent of the arena size).
    pub fn distinct_terms(&self) -> usize {
        self.term_pool.len()
    }

    /// Number of distinct symbolic outcomes of the topology (the interned
    /// outcome-pool size).
    pub fn distinct_outcomes(&self) -> usize {
        self.atom_pool.len()
    }

    /// Read-only view of the interned probability-term pool, in stable
    /// first-seen order. The ids in [`Self::prob_atoms`] and the `term`
    /// fields of [`Self::atom_pool`] index into this slice. Exposed for
    /// external static analysis (the `sm-audit` crate) — the solver paths
    /// never need it.
    pub fn term_pool(&self) -> &[ProbTerm] {
        &self.term_pool
    }

    /// Read-only view of the interned outcome pool, in stable first-seen
    /// order. The ids in [`Self::reward_atoms`] index into this slice.
    pub fn atom_pool(&self) -> &[RewardAtom] {
        &self.atom_pool
    }

    /// Per arena transition, the offset of its probability atoms in
    /// [`Self::prob_atoms`]; length [`Self::num_transitions`]` + 1`,
    /// monotone non-decreasing.
    pub fn prob_atom_ptr(&self) -> &[u32] {
        &self.prob_atom_ptr
    }

    /// Probability-atom term ids (into [`Self::term_pool`]) in arena order.
    pub fn prob_atoms(&self) -> &[u32] {
        &self.prob_atoms
    }

    /// Per state-action pair, the offset of its outcomes in
    /// [`Self::reward_atoms`]; length [`Self::num_pairs`]` + 1`, monotone
    /// non-decreasing.
    pub fn reward_ptr(&self) -> &[u32] {
        &self.reward_ptr
    }

    /// Outcome-atom ids (into [`Self::atom_pool`]) in discovery order.
    pub fn reward_atoms(&self) -> &[u32] {
        &self.reward_atoms
    }

    /// Evaluates every pooled term once at `(p, gamma)`. The fill passes
    /// gather from this table by id, so each term's floating-point value is
    /// computed exactly once per instantiation — and is bit-identical to
    /// evaluating the term at every use site, which is what keeps
    /// instantiation reproducing the directly built model bit for bit.
    #[inline]
    fn term_values(&self, p: f64, gamma: f64) -> Vec<f64> {
        self.term_pool.iter().map(|t| t.eval(p, gamma)).collect()
    }

    /// Probability of arena transition `slot`: the ordered sum of its atoms'
    /// term values (one atom per merged duplicate successor, summed in the
    /// same order the streaming builder merges them).
    #[inline]
    fn slot_probability(&self, slot: usize, term_values: &[f64]) -> f64 {
        let range = self.prob_atom_ptr[slot] as usize..self.prob_atom_ptr[slot + 1] as usize;
        self.prob_atoms[range]
            .iter()
            .fold(0.0, |acc, &id| acc + term_values[id as usize])
    }

    /// Expected `(adversary, honest)` block counts of state-action pair
    /// `pair`, accumulated over the outcomes in discovery order — the same
    /// order (and therefore the same floating-point result) as the fresh
    /// model construction.
    #[inline]
    fn pair_rewards(&self, pair: usize, term_values: &[f64]) -> (f64, f64) {
        let range = self.reward_ptr[pair] as usize..self.reward_ptr[pair + 1] as usize;
        let mut adversary = 0.0;
        let mut honest = 0.0;
        for &id in &self.reward_atoms[range] {
            let atom = self.atom_pool[id as usize];
            let probability = term_values[atom.term as usize];
            adversary += probability * f64::from(atom.adversary);
            honest += probability * f64::from(atom.honest);
        }
        (adversary, honest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    #[test]
    fn family_matches_fresh_build_on_interior_parameters() {
        let family = ParametricModel::build(2, 1, 3).unwrap();
        let params = AttackParams::new(0.3, 0.5, 2, 1, 3).unwrap();
        let fresh = SelfishMiningModel::build(&params).unwrap();
        let inst = family.instantiate(0.3, 0.5).unwrap();
        assert_eq!(inst.num_states(), fresh.num_states());
        for s in 0..fresh.num_states() {
            assert_eq!(inst.state(s), fresh.state(s));
            assert_eq!(inst.actions_of(s), fresh.actions_of(s));
        }
        assert_eq!(inst.mdp(), fresh.mdp());
        assert_eq!(
            inst.adversary_rewards().values(),
            fresh.adversary_rewards().values()
        );
        assert_eq!(
            inst.honest_rewards().values(),
            fresh.honest_rewards().values()
        );
        assert_eq!(inst.params(), fresh.params());
    }

    #[test]
    fn masked_branches_are_kept_structurally() {
        let family = ParametricModel::build(1, 1, 2).unwrap();
        let masked = family.instantiate(0.3, 0.0).unwrap();
        let params = AttackParams::new(0.3, 0.0, 1, 1, 2).unwrap();
        let fresh = SelfishMiningModel::build(&params).unwrap();
        // The γ = 0 topology prunes the race-win branch, the parametric
        // arena keeps it with probability 0 — so the masked model has at
        // least as many states/transitions and still validates.
        assert!(masked.num_states() >= fresh.num_states());
        masked.mdp().validate().unwrap();
        assert!(masked.mdp().csr().probabilities().contains(&0.0));
    }

    #[test]
    fn instantiate_into_matches_direct_instantiation() {
        let family = ParametricModel::build(2, 2, 3).unwrap();
        let mut reused = family.instantiate(0.4, 0.25).unwrap();
        for &(p, gamma) in &[(0.2, 0.75), (0.0, 0.5), (0.3, 0.0), (0.35, 1.0)] {
            family.instantiate_into(&mut reused, p, gamma).unwrap();
            let direct = family.instantiate(p, gamma).unwrap();
            assert_eq!(reused.mdp(), direct.mdp());
            assert_eq!(
                reused.adversary_rewards().values(),
                direct.adversary_rewards().values()
            );
            assert_eq!(
                reused.honest_rewards().values(),
                direct.honest_rewards().values()
            );
            assert_eq!(reused.params(), direct.params());
        }
    }

    #[test]
    fn instantiate_into_rejects_foreign_models() {
        let family = ParametricModel::build(1, 1, 2).unwrap();
        let other = ParametricModel::build(1, 1, 2).unwrap();
        let mut model = other.instantiate(0.3, 0.5).unwrap();
        assert!(family.instantiate_into(&mut model, 0.3, 0.5).is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ParametricModel::build(0, 1, 2).is_err());
        let family = ParametricModel::build(1, 1, 2).unwrap();
        assert!(family.instantiate(1.5, 0.5).is_err());
        assert!(family.instantiate(0.5, -0.1).is_err());
    }

    #[test]
    fn state_limit_is_enforced() {
        assert!(matches!(
            ParametricModel::build_with_limit(2, 2, 4, 10),
            Err(SelfishMiningError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn scenario_family_matches_the_scenario_direct_build() {
        // The per-scenario parametric arena must reproduce the per-scenario
        // direct build bit for bit, exactly as the optimal arena does.
        for scenario in AttackScenario::default_family() {
            let family = ParametricModel::build_scenario(scenario, 2, 1, 3).unwrap();
            assert_eq!(family.scenario(), scenario);
            let params = AttackParams::new(0.3, 0.5, 2, 1, 3).unwrap();
            let fresh = SelfishMiningModel::build_scenario(&params, scenario).unwrap();
            let inst = family.instantiate(0.3, 0.5).unwrap();
            assert_eq!(inst.scenario(), scenario);
            assert_eq!(inst.num_states(), fresh.num_states(), "{scenario}");
            for s in 0..fresh.num_states() {
                assert_eq!(inst.state(s), fresh.state(s));
                assert_eq!(inst.actions_of(s), fresh.actions_of(s));
            }
            assert_eq!(inst.mdp(), fresh.mdp(), "{scenario}");
            assert_eq!(
                inst.adversary_rewards().values(),
                fresh.adversary_rewards().values()
            );
            assert_eq!(
                inst.honest_rewards().values(),
                fresh.honest_rewards().values()
            );
        }
    }

    #[test]
    fn trail_stubborn_with_full_lag_is_the_optimal_arena() {
        let optimal = ParametricModel::build(2, 1, 3).unwrap();
        let full_lag =
            ParametricModel::build_scenario(AttackScenario::TrailStubborn { lag: 1 }, 2, 1, 3)
                .unwrap();
        assert_eq!(optimal.num_states(), full_lag.num_states());
        assert_eq!(optimal.num_pairs(), full_lag.num_pairs());
        let a = optimal.instantiate(0.3, 0.25).unwrap();
        let b = full_lag.instantiate(0.3, 0.25).unwrap();
        assert_eq!(a.mdp(), b.mdp());
    }

    #[test]
    fn term_pools_are_interned_and_tiny() {
        let family = ParametricModel::build(2, 2, 3).unwrap();
        // The whole topology is generated by five term shapes over a bounded
        // slot count, so the pools stay minuscule however large the arena is.
        assert!(family.distinct_terms() <= 16, "{}", family.distinct_terms());
        assert!(
            family.distinct_outcomes() < family.num_transitions() / 10,
            "{} outcomes vs {} transitions",
            family.distinct_outcomes(),
            family.num_transitions()
        );
        // The id buffers cost 4 bytes per atom; the pools are a rounding
        // error on top.
        let atoms = family.prob_atoms.len() + family.reward_atoms.len();
        let ptrs = family.prob_atom_ptr.len() + family.reward_ptr.len();
        let pools = family.term_pool.len() * std::mem::size_of::<ProbTerm>()
            + family.atom_pool.len() * std::mem::size_of::<RewardAtom>();
        assert_eq!(family.term_table_bytes(), (atoms + ptrs) * 4 + pools);
        assert!(family.layout_bytes() > 0);
    }

    #[test]
    fn topology_reaches_every_phase() {
        let family = ParametricModel::build(2, 1, 3).unwrap();
        let mut phases = std::collections::HashSet::new();
        for s in 0..family.num_states() {
            phases.insert(family.state(s).phase);
        }
        assert_eq!(phases.len(), 3);
        assert!(phases.contains(&Phase::AdversaryFound));
    }
}
