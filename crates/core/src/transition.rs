//! The probabilistic transition function of the selfish-mining MDP
//! (Section 3.2, "Transition Function") together with the block-finalization
//! accounting that drives the reward functions of Section 3.3.
//!
//! # Modelling conventions
//!
//! The reproduction uses the *pre-incorporation* convention for honest blocks
//! (see [`crate::Phase`]): in a [`Phase::HonestFound`] state the freshly found
//! honest block is pending and the depth indexing of `C` and `O` still refers
//! to the accepted public chain without it. A `release(i, j, k)` therefore
//! competes against the accepted chain *plus the pending block*:
//!
//! * `k > i` — the published fork is strictly longer; honest miners switch
//!   with probability 1.
//! * `k = i` — the published fork ties with the public chain including the
//!   pending block; a race happens and honest miners switch with the
//!   switching probability `γ`.
//! * `k < i` — the fork is shorter; the action is dominated and not offered.
//!
//! In a [`Phase::AdversaryFound`] state there is no pending honest block, so a
//! release needs `k ≥ i` (strictly longer than the `i − 1` blocks it orphans)
//! and is accepted with probability 1, as in the paper.
//!
//! A block is *final* once it sits at depth ≥ `d` of the accepted chain: no
//! private fork (which is rooted at depth ≤ `d` and therefore orphans accepted
//! blocks at depths ≤ `d − 1` only) can ever remove it. The reward functions
//! `r_A` / `r_H` count adversarial / honest blocks at the moment they cross
//! that boundary, which matches the paper's "accepted at depth greater than
//! `d`" accounting up to a constant shift of one step that does not affect any
//! long-run average.

use crate::{AttackParams, AttackScenario, Owner, Phase, SelfishMiningError, SmAction, SmState};

/// Blocks finalized by one MDP transition, split by owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockRewards {
    /// Number of adversary-owned blocks that became final.
    pub adversary: u32,
    /// Number of honest-owned blocks that became final.
    pub honest: u32,
}

impl BlockRewards {
    /// No blocks finalized.
    pub const ZERO: BlockRewards = BlockRewards {
        adversary: 0,
        honest: 0,
    };
}

/// A single probabilistic outcome of applying an action in a state.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Successor state.
    pub state: SmState,
    /// Probability of this outcome (outcomes of one action sum to 1).
    pub probability: f64,
    /// Blocks finalized on this outcome.
    pub rewards: BlockRewards,
}

/// A *parametric* transition probability: the probability of one outcome as a
/// symbolic term over the numeric attack parameters `(p, γ)`, closed over the
/// structural data (the state's mining-slot count `σ`) that the transition
/// function derives from `(d, f, l)` alone.
///
/// Every outcome of the selfish-mining transition function is one of these
/// five atoms; a whole `(d, f, l)` topology can therefore be explored once
/// and re-instantiated for any `(p, γ)` by evaluating the atoms
/// ([`ProbTerm::eval`]) — this is what [`crate::ParametricModel`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbTerm {
    /// Probability 1 — a deterministic outcome.
    One,
    /// `p / ((1 − p) + p·σ)` — the adversary extends one of its `σ` mining
    /// positions (Section 3.2's `(p, k)`-mining split).
    AdversaryShare {
        /// The state's number of mining slots `σ`.
        slots: u32,
    },
    /// `(1 − p) / ((1 − p) + p·σ)` — honest miners find the next proof.
    HonestShare {
        /// The state's number of mining slots `σ`.
        slots: u32,
    },
    /// `γ` — honest miners switch to the revealed fork after a tie release.
    Gamma,
    /// `1 − γ` — honest miners keep the public chain after a tie release.
    OneMinusGamma,
}

impl ProbTerm {
    /// Evaluates the term at concrete parameter values.
    ///
    /// The arithmetic mirrors the numeric transition function expression for
    /// expression, so instantiating a parametric topology reproduces the
    /// directly-built model bit for bit.
    #[inline]
    pub fn eval(self, p: f64, gamma: f64) -> f64 {
        match self {
            ProbTerm::One => 1.0,
            ProbTerm::AdversaryShare { slots } => {
                let sigma = slots as f64;
                p / ((1.0 - p) + p * sigma)
            }
            ProbTerm::HonestShare { slots } => {
                let sigma = slots as f64;
                (1.0 - p) / ((1.0 - p) + p * sigma)
            }
            ProbTerm::Gamma => gamma,
            ProbTerm::OneMinusGamma => 1.0 - gamma,
        }
    }
}

/// A single outcome of the *parametric* transition function: like
/// [`Outcome`], but with the probability as a symbolic [`ProbTerm`] instead
/// of a number, and with every branch present regardless of whether the
/// numeric parameters would mask it (e.g. the race-win branch at `γ = 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicOutcome {
    /// Successor state.
    pub state: SmState,
    /// Parametric probability of this outcome (the terms of one action
    /// evaluate to a distribution summing to 1 for every valid `(p, γ)`).
    pub term: ProbTerm,
    /// Blocks finalized on this outcome.
    pub rewards: BlockRewards,
}

/// The set of actions available in `state` (the paper's `A(s)`).
///
/// Dominated releases (forks strictly shorter than the public chain they
/// compete against) are not offered; removing them does not change the optimal
/// expected relative revenue and keeps the MDP smaller.
pub fn available_actions(params: &AttackParams, state: &SmState) -> Vec<SmAction> {
    let mut actions = vec![SmAction::Mine];
    if state.phase == Phase::Mining {
        return actions;
    }
    for depth in 1..=params.depth {
        for fork in 1..=params.forks_per_block {
            let fork_len = state.fork_length(params, depth, fork) as usize;
            // Minimal useful release length: ties are only possible against a
            // pending honest block.
            let min_len = depth;
            for length in min_len..=fork_len {
                // In an AdversaryFound state a tie cannot be won (the paper's
                // "race cannot happen" case), so `length == depth` is only
                // offered when an honest block is pending... except that for
                // AdversaryFound the tie would be against the accepted chain
                // of the same height, where `length == depth` already means
                // strictly longer by one (no pending block), so it stays.
                actions.push(SmAction::Release {
                    depth,
                    fork,
                    length,
                });
            }
        }
    }
    actions
}

/// The admissible action set of `state` under `scenario` — the paper's
/// `A(s)` filtered by the scenario's restriction
/// ([`AttackScenario::admits`]). For [`AttackScenario::Optimal`] this is
/// exactly [`available_actions`].
pub fn available_actions_in(
    scenario: &AttackScenario,
    params: &AttackParams,
    state: &SmState,
) -> Vec<SmAction> {
    scenario.admissible_actions(params, state)
}

/// Applies `action` in `state` and returns all probabilistic outcomes with
/// positive probability at the parameters' `(p, γ)`.
///
/// This is the numeric view of [`symbolic_successors`]: the symbolic terms
/// are evaluated at `(params.p, params.gamma)` and masked (zero-probability)
/// branches are dropped, exactly as the pre-parametric transition function
/// did.
///
/// # Errors
///
/// Returns [`SelfishMiningError::UnavailableAction`] if the action is not
/// available in the state (e.g. a release in a `Mining`-phase state or a
/// release longer than the fork).
pub fn successors(
    params: &AttackParams,
    state: &SmState,
    action: &SmAction,
) -> Result<Vec<Outcome>, SelfishMiningError> {
    successors_in(&AttackScenario::Optimal, params, state, action)
}

/// [`successors`] under an attack scenario: the scenario's transition filter
/// applies (for [`AttackScenario::HonestMining`] the mining split runs over
/// the tip positions only) and actions the scenario does not admit are
/// rejected.
///
/// # Errors
///
/// Returns [`SelfishMiningError::UnavailableAction`] if the action is
/// unavailable in the state *or* not admitted by the scenario.
pub fn successors_in(
    scenario: &AttackScenario,
    params: &AttackParams,
    state: &SmState,
    action: &SmAction,
) -> Result<Vec<Outcome>, SelfishMiningError> {
    let symbolic = symbolic_successors_in(scenario, params, state, action)?;
    Ok(symbolic
        .into_iter()
        .filter_map(|outcome| {
            let probability = outcome.term.eval(params.p, params.gamma);
            (probability > 0.0).then_some(Outcome {
                state: outcome.state,
                probability,
                rewards: outcome.rewards,
            })
        })
        .collect())
}

/// Applies `action` in `state` and returns all *parametric* outcomes: the
/// full branch structure of the transition function, with probabilities as
/// symbolic [`ProbTerm`]s over `(p, γ)`.
///
/// Unlike [`successors`], the result depends only on the structural
/// parameters `(d, f, l)` — `params.p` and `params.gamma` are never read —
/// and zero-probability branches (the adversary split at `p = 0`, the race
/// branches at `γ ∈ {0, 1}`) are kept. This is the exploration primitive of
/// [`crate::ParametricModel`].
///
/// # Errors
///
/// Same as [`successors`].
pub fn symbolic_successors(
    params: &AttackParams,
    state: &SmState,
    action: &SmAction,
) -> Result<Vec<SymbolicOutcome>, SelfishMiningError> {
    symbolic_successors_in(&AttackScenario::Optimal, params, state, action)
}

/// [`symbolic_successors`] under an attack scenario: the exploration
/// primitive of the per-scenario [`crate::ParametricModel`] arenas. The only
/// scenario-dependent branch structure is the `mine` split, whose slot set
/// (and therefore `σ`) is filtered through
/// [`AttackScenario::admits_mining_depth`]; every other action's outcomes
/// are scenario-independent.
///
/// # Errors
///
/// Returns [`SelfishMiningError::UnavailableAction`] if the action is
/// unavailable in the state or not admitted by the scenario.
pub fn symbolic_successors_in(
    scenario: &AttackScenario,
    params: &AttackParams,
    state: &SmState,
    action: &SmAction,
) -> Result<Vec<SymbolicOutcome>, SelfishMiningError> {
    if !scenario.admits(params, state, action) {
        return Err(unavailable(state, action));
    }
    match (state.phase, action) {
        (Phase::Mining, SmAction::Mine) => Ok(mining_outcomes(scenario, params, state)),
        (Phase::Mining, SmAction::Release { .. }) => Err(unavailable(state, action)),
        (Phase::AdversaryFound, SmAction::Mine) => {
            let mut next = state.clone();
            next.phase = Phase::Mining;
            Ok(vec![SymbolicOutcome {
                state: next,
                term: ProbTerm::One,
                rewards: BlockRewards::ZERO,
            }])
        }
        (Phase::HonestFound, SmAction::Mine) => {
            let (next, rewards) = incorporate_pending_honest_block(params, state);
            Ok(vec![SymbolicOutcome {
                state: next,
                term: ProbTerm::One,
                rewards,
            }])
        }
        (
            phase,
            SmAction::Release {
                depth,
                fork,
                length,
            },
        ) => release_outcomes(params, state, phase, *depth, *fork, *length),
    }
}

fn unavailable(state: &SmState, action: &SmAction) -> SelfishMiningError {
    SelfishMiningError::UnavailableAction {
        state: state.to_string(),
        action: action.to_string(),
    }
}

/// Outcomes of the `mine` action in a `Mining`-phase state: nature decides who
/// finds the next proof. The split is parametric — `σ` adversary branches
/// weighing `p / ((1−p) + p·σ)` each plus one honest branch — so the function
/// emits symbolic terms; `p = 1` is well defined because every admitted depth
/// offers at least one mining slot (`σ ≥ 1`: depth 1 is admitted by every
/// scenario), keeping the denominator positive for every `p ∈ [0, 1]`.
///
/// The scenario's transition filter applies here: depths it does not admit
/// ([`AttackScenario::admits_mining_depth`]) contribute neither branches nor
/// slots to `σ`. For [`AttackScenario::Optimal`] the split is exactly the
/// paper's, with `σ = `[`SmState::mining_slots`].
fn mining_outcomes(
    scenario: &AttackScenario,
    params: &AttackParams,
    state: &SmState,
) -> Vec<SymbolicOutcome> {
    let slots = u32::try_from(scenario.mining_slots(params, state))
        .expect("mining slots bounded by d·(f+1)");
    let mut outcomes = Vec::new();

    for depth in 1..=params.depth {
        if !scenario.admits_mining_depth(depth) {
            continue;
        }
        // Extend every non-empty fork.
        for fork in 1..=params.forks_per_block {
            let len = state.fork_length(params, depth, fork);
            if len == 0 {
                continue;
            }
            let mut next = state.clone();
            *next.fork_length_mut(params, depth, fork) =
                len.saturating_add(1).min(params.max_fork_length as u8);
            next.phase = Phase::AdversaryFound;
            outcomes.push(SymbolicOutcome {
                state: next,
                term: ProbTerm::AdversaryShare { slots },
                rewards: BlockRewards::ZERO,
            });
        }
        // Start one new fork in the lowest-index empty slot, if any.
        if let Some(fork) = state.first_empty_fork(params, depth) {
            let mut next = state.clone();
            *next.fork_length_mut(params, depth, fork) = 1;
            next.phase = Phase::AdversaryFound;
            outcomes.push(SymbolicOutcome {
                state: next,
                term: ProbTerm::AdversaryShare { slots },
                rewards: BlockRewards::ZERO,
            });
        }
    }

    let mut next = state.clone();
    next.phase = Phase::HonestFound;
    outcomes.push(SymbolicOutcome {
        state: next,
        term: ProbTerm::HonestShare { slots },
        rewards: BlockRewards::ZERO,
    });
    outcomes
}

/// Incorporates the pending honest block into the accepted chain: depth
/// indices shift by one, forks rooted beyond depth `d` are abandoned, and the
/// block pushed past the finality boundary is rewarded.
fn incorporate_pending_honest_block(
    params: &AttackParams,
    state: &SmState,
) -> (SmState, BlockRewards) {
    let d = params.depth;
    let f = params.forks_per_block;
    let mut rewards = BlockRewards::ZERO;

    // Finalization: the block leaving the tracked window becomes final. For
    // d = 1 the pending honest block itself lands at depth d and is final
    // immediately.
    if d == 1 {
        rewards.honest += 1;
    } else {
        match state.owners[d - 2] {
            Owner::Honest => rewards.honest += 1,
            Owner::Adversary => rewards.adversary += 1,
        }
    }

    // Shift owners: the pending honest block enters at depth 1.
    let mut owners = Vec::with_capacity(d.saturating_sub(1));
    if d >= 2 {
        owners.push(Owner::Honest);
        owners.extend_from_slice(&state.owners[..d - 2]);
    }

    // Shift forks: fresh empty row at depth 1, previous rows move one deeper,
    // the row previously at depth d is dropped.
    let mut forks = vec![0u8; d * f];
    for depth in 2..=d {
        let src = (depth - 2) * f;
        let dst = (depth - 1) * f;
        forks[dst..dst + f].copy_from_slice(&state.forks[src..src + f]);
    }

    (
        SmState {
            forks,
            owners,
            phase: Phase::Mining,
        },
        rewards,
    )
}

/// Outcomes of a `release(i, j, k)` action.
fn release_outcomes(
    params: &AttackParams,
    state: &SmState,
    phase: Phase,
    depth: usize,
    fork: usize,
    length: usize,
) -> Result<Vec<SymbolicOutcome>, SelfishMiningError> {
    let action = SmAction::Release {
        depth,
        fork,
        length,
    };
    if phase == Phase::Mining
        || depth == 0
        || depth > params.depth
        || fork == 0
        || fork > params.forks_per_block
        || length == 0
        || length > state.fork_length(params, depth, fork) as usize
        || length < depth
    {
        return Err(unavailable(state, &action));
    }

    let (accepted, accept_rewards) = accept_release(params, state, depth, fork, length);

    match phase {
        Phase::AdversaryFound => {
            // No pending honest block: `length ≥ depth` means the published
            // chain is strictly longer than the public one, so it is adopted
            // with probability 1.
            Ok(vec![SymbolicOutcome {
                state: accepted,
                term: ProbTerm::One,
                rewards: accept_rewards,
            }])
        }
        Phase::HonestFound => {
            if length > depth {
                // Strictly longer than the public chain including the pending
                // honest block: adopted with probability 1, the pending block
                // is orphaned.
                return Ok(vec![SymbolicOutcome {
                    state: accepted,
                    term: ProbTerm::One,
                    rewards: accept_rewards,
                }]);
            }
            // Tie (`length == depth`): a race decided by the switching
            // probability γ. On rejection the pending honest block is
            // incorporated and the adversary keeps its (shifted) forks.
            let (rejected, reject_rewards) = incorporate_pending_honest_block(params, state);
            Ok(vec![
                SymbolicOutcome {
                    state: accepted,
                    term: ProbTerm::Gamma,
                    rewards: accept_rewards,
                },
                SymbolicOutcome {
                    state: rejected,
                    term: ProbTerm::OneMinusGamma,
                    rewards: reject_rewards,
                },
            ])
        }
        Phase::Mining => unreachable!("handled above"),
    }
}

/// Applies an accepted release of the first `length` blocks of fork
/// `(depth, fork)`: the accepted chain loses its top `depth − 1` blocks,
/// gains `length` adversary blocks, forks re-anchor to their (possibly
/// deeper) root positions, and every block crossing the finality boundary is
/// rewarded.
fn accept_release(
    params: &AttackParams,
    state: &SmState,
    depth: usize,
    fork: usize,
    length: usize,
) -> (SmState, BlockRewards) {
    let d = params.depth;
    let f = params.forks_per_block;
    // Net growth of the accepted chain.
    let delta = length - (depth - 1);
    let mut rewards = BlockRewards::ZERO;

    // Newly published adversary blocks that are already final (new depth ≥ d):
    // the published blocks occupy new depths 1..=length.
    if length >= d {
        rewards.adversary += (length - d + 1) as u32;
    }
    // Previously accepted blocks pushed past the finality boundary: old depth
    // m ∈ [depth, d−1] with new depth m + delta ≥ d.
    if d >= 2 {
        let lowest_finalized = d.saturating_sub(delta).max(depth);
        for m in lowest_finalized..=(d - 1) {
            match state.owners[m - 1] {
                Owner::Honest => rewards.honest += 1,
                Owner::Adversary => rewards.adversary += 1,
            }
        }
    }

    // New owner vector.
    let mut owners = vec![Owner::Adversary; d.saturating_sub(1)];
    for (idx, owner) in owners.iter_mut().enumerate() {
        let q = idx + 1; // new depth
        if q <= length {
            *owner = Owner::Adversary;
        } else {
            // Old block at depth q − delta (guaranteed ≥ `depth` and ≤ d − 2).
            let m = q - delta;
            *owner = state.owners[m - 1];
        }
    }

    // New fork matrix.
    let mut forks = vec![0u8; d * f];
    // Remainder of the released fork re-anchors on the new tip.
    let remainder = state.fork_length(params, depth, fork) as usize - length;
    forks[0] = remainder as u8;
    // Forks rooted at surviving old blocks move `delta` deeper.
    for old_depth in depth..=d {
        let new_depth = old_depth + delta;
        if new_depth > d {
            break;
        }
        let src = (old_depth - 1) * f;
        let dst = (new_depth - 1) * f;
        forks[dst..dst + f].copy_from_slice(&state.forks[src..src + f]);
        if old_depth == depth {
            // The released fork's slot restarts empty at its root's new depth.
            forks[dst + (fork - 1)] = 0;
        }
    }

    (
        SmState {
            forks,
            owners,
            phase: Phase::Mining,
        },
        rewards,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p: f64, gamma: f64, d: usize, f: usize, l: usize) -> AttackParams {
        AttackParams::new(p, gamma, d, f, l).unwrap()
    }

    fn probabilities_sum_to_one(outcomes: &[Outcome]) {
        let sum: f64 = outcomes.iter().map(|o| o.probability).sum();
        assert!((sum - 1.0).abs() < 1e-12, "probabilities sum to {sum}");
    }

    #[test]
    fn mining_state_offers_only_mine() {
        let p = params(0.3, 0.5, 2, 2, 4);
        let s = SmState::initial(&p);
        assert_eq!(available_actions(&p, &s), vec![SmAction::Mine]);
    }

    #[test]
    fn mining_outcomes_split_between_parties() {
        let p = params(0.3, 0.5, 2, 1, 4);
        let s = SmState::initial(&p);
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        // Two depths with empty slots + one honest outcome.
        assert_eq!(outs.len(), 3);
        probabilities_sum_to_one(&outs);
        // σ = 2, so each adversarial outcome has probability p / (1 − p + 2p).
        let expected = 0.3 / (0.7 + 0.6);
        assert!(outs
            .iter()
            .filter(|o| o.state.phase == Phase::AdversaryFound)
            .all(|o| (o.probability - expected).abs() < 1e-12));
        let honest = outs
            .iter()
            .find(|o| o.state.phase == Phase::HonestFound)
            .unwrap();
        assert!((honest.probability - 0.7 / 1.3).abs() < 1e-12);
        // The adversarial outcomes start forks of length 1.
        assert!(outs
            .iter()
            .filter(|o| o.state.phase == Phase::AdversaryFound)
            .all(|o| o.state.total_private_blocks() == 1));
    }

    #[test]
    fn fork_length_is_capped_at_l() {
        let p = params(0.5, 0.5, 1, 1, 2);
        let mut s = SmState::initial(&p);
        *s.fork_length_mut(&p, 1, 1) = 2;
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        probabilities_sum_to_one(&outs);
        for o in &outs {
            assert!(o.state.fork_length(&p, 1, 1) <= 2);
        }
    }

    #[test]
    fn honest_mine_action_finalizes_deepest_tracked_block() {
        let p = params(0.3, 0.5, 3, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        s.owners = vec![Owner::Adversary, Owner::Adversary];
        *s.fork_length_mut(&p, 1, 1) = 2;
        *s.fork_length_mut(&p, 3, 1) = 1;
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        assert_eq!(outs.len(), 1);
        let out = &outs[0];
        // The block at depth d−1 = 2 (adversary) crossed the boundary.
        assert_eq!(
            out.rewards,
            BlockRewards {
                adversary: 1,
                honest: 0
            }
        );
        // Owners shifted with the new honest block on top.
        assert_eq!(out.state.owners, vec![Owner::Honest, Owner::Adversary]);
        // Forks shifted one deeper; the fork at depth 3 fell off.
        assert_eq!(out.state.fork_length(&p, 1, 1), 0);
        assert_eq!(out.state.fork_length(&p, 2, 1), 2);
        assert_eq!(out.state.fork_length(&p, 3, 1), 0);
        assert_eq!(out.state.phase, Phase::Mining);
    }

    #[test]
    fn honest_mine_action_with_depth_one_finalizes_the_pending_block() {
        let p = params(0.3, 0.5, 1, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        *s.fork_length_mut(&p, 1, 1) = 1;
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 0,
                honest: 1
            }
        );
        // The withheld fork is abandoned (its root moved beyond the window).
        assert_eq!(outs[0].state.total_private_blocks(), 0);
    }

    #[test]
    fn tie_release_races_with_switching_probability() {
        // Classic SM1 race at d = 1: one withheld block vs the pending honest
        // block.
        let p = params(0.3, 0.25, 1, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        *s.fork_length_mut(&p, 1, 1) = 1;
        let action = SmAction::Release {
            depth: 1,
            fork: 1,
            length: 1,
        };
        assert!(available_actions(&p, &s).contains(&action));
        let outs = successors(&p, &s, &action).unwrap();
        assert_eq!(outs.len(), 2);
        probabilities_sum_to_one(&outs);
        let accept = outs.iter().find(|o| o.probability == 0.25).unwrap();
        let reject = outs.iter().find(|o| o.probability == 0.75).unwrap();
        // Accepted: the adversary block is final (d = 1), honest pending block orphaned.
        assert_eq!(
            accept.rewards,
            BlockRewards {
                adversary: 1,
                honest: 0
            }
        );
        // Rejected: the pending honest block is final.
        assert_eq!(
            reject.rewards,
            BlockRewards {
                adversary: 0,
                honest: 1
            }
        );
    }

    #[test]
    fn strictly_longer_release_is_always_accepted() {
        let p = params(0.3, 0.0, 2, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        s.owners = vec![Owner::Honest];
        *s.fork_length_mut(&p, 2, 1) = 3;
        // Fork rooted at depth 2, releasing 3 > depth blocks: orphans the
        // block at depth 1 and the pending honest block, even though γ = 0.
        let action = SmAction::Release {
            depth: 2,
            fork: 1,
            length: 3,
        };
        let outs = successors(&p, &s, &action).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].probability, 1.0);
        // delta = 3 − 1 = 2. New adversary blocks at depths 1..3: those at
        // depth ≥ 2 are final → 2 adversary blocks. The orphaned honest block
        // at old depth 1 is never rewarded.
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 2,
                honest: 0
            }
        );
        // The new tracked owner (depth 1) is the adversary.
        assert_eq!(outs[0].state.owners, vec![Owner::Adversary]);
        assert_eq!(outs[0].state.phase, Phase::Mining);
    }

    #[test]
    fn adversary_found_release_needs_strictly_longer_fork() {
        let p = params(0.3, 0.5, 2, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::AdversaryFound;
        *s.fork_length_mut(&p, 2, 1) = 1;
        // length 1 < depth 2: dominated, not available.
        let actions = available_actions(&p, &s);
        assert!(!actions.contains(&SmAction::Release {
            depth: 2,
            fork: 1,
            length: 1
        }));
        // With a length-2 fork the release becomes available and wins surely.
        *s.fork_length_mut(&p, 2, 1) = 2;
        let action = SmAction::Release {
            depth: 2,
            fork: 1,
            length: 2,
        };
        assert!(available_actions(&p, &s).contains(&action));
        let outs = successors(&p, &s, &action).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].probability, 1.0);
    }

    #[test]
    fn release_remainder_reanchors_on_new_tip() {
        let p = params(0.3, 0.5, 2, 2, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::AdversaryFound;
        s.owners = vec![Owner::Honest];
        *s.fork_length_mut(&p, 1, 1) = 4;
        *s.fork_length_mut(&p, 1, 2) = 2;
        // Release 2 of the 4 blocks of fork (1,1): the remaining 2 blocks
        // re-anchor as a fork on the new tip.
        let action = SmAction::Release {
            depth: 1,
            fork: 1,
            length: 2,
        };
        let outs = successors(&p, &s, &action).unwrap();
        let next = &outs[0].state;
        assert_eq!(next.fork_length(&p, 1, 1), 2, "remainder fork");
        // delta = 2: the old depth-1 root would move to depth 3 > d, so the
        // sibling fork (1,2) is abandoned.
        assert_eq!(next.fork_length(&p, 2, 1), 0);
        assert_eq!(next.fork_length(&p, 2, 2), 0);
        // The new tracked block (depth 1) is an adversary block. Final blocks:
        // one released adversary block lands at depth ≥ d = 2, and the old
        // honest tip (the fork's root) is pushed to depth 3 ≥ d.
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 1,
                honest: 1
            }
        );
        assert_eq!(next.owners, vec![Owner::Adversary]);
    }

    #[test]
    fn release_with_unit_growth_keeps_sibling_forks() {
        let p = params(0.3, 0.5, 3, 2, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::AdversaryFound;
        s.owners = vec![Owner::Honest, Owner::Adversary];
        *s.fork_length_mut(&p, 2, 1) = 2;
        *s.fork_length_mut(&p, 2, 2) = 1;
        *s.fork_length_mut(&p, 3, 1) = 1;
        // Release both blocks of fork (2,1): delta = 1.
        let action = SmAction::Release {
            depth: 2,
            fork: 1,
            length: 2,
        };
        let outs = successors(&p, &s, &action).unwrap();
        let next = &outs[0].state;
        // Old depth-2 root moves to depth 3: sibling fork (2,2) survives there,
        // and the released slot restarts empty.
        assert_eq!(next.fork_length(&p, 3, 1), 0);
        assert_eq!(next.fork_length(&p, 3, 2), 1);
        // Old depth-3 fork would move to depth 4 > d: abandoned.
        // New depths 1..2 are the published blocks: remainder 0 at depth 1.
        assert_eq!(next.fork_length(&p, 1, 1), 0);
        assert_eq!(next.fork_length(&p, 2, 1), 0);
        // Owners: depths 1..2 adversary (published), delta = 1 so the old
        // depth-2 owner... is now at depth 3 which is ≥ d: it crossed the
        // boundary and was rewarded.
        assert_eq!(next.owners, vec![Owner::Adversary, Owner::Adversary]);
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 1,
                honest: 0
            }
        );
    }

    #[test]
    fn probabilities_sum_to_one_across_random_states() {
        // Deterministic sweep over a slice of the state space.
        let p = params(0.35, 0.4, 2, 2, 3);
        for a in 0..=3u8 {
            for b in 0..=3u8 {
                for c in 0..=3u8 {
                    for owner in [Owner::Honest, Owner::Adversary] {
                        for phase in [Phase::Mining, Phase::HonestFound, Phase::AdversaryFound] {
                            let s = SmState {
                                forks: vec![a, b, c, 0],
                                owners: vec![owner],
                                phase,
                            };
                            for action in available_actions(&p, &s) {
                                let outs = successors(&p, &s, &action).unwrap();
                                probabilities_sum_to_one(&outs);
                                for o in &outs {
                                    assert!(o.state.is_consistent(&p));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn symbolic_outcomes_evaluate_to_the_numeric_transition_function() {
        // Across a parameter sweep including the masked edges, evaluating the
        // symbolic outcomes and dropping zero-probability branches must
        // reproduce `successors` exactly (same order, same bits).
        let cases = [
            (0.3, 0.5),
            (0.0, 0.5),
            (1.0, 0.5),
            (0.3, 0.0),
            (0.3, 1.0),
            (0.7, 0.25),
        ];
        for &(pv, gamma) in &cases {
            let p = params(pv, gamma, 2, 2, 3);
            for a in 0..=3u8 {
                for b in 0..=3u8 {
                    for phase in [Phase::Mining, Phase::HonestFound, Phase::AdversaryFound] {
                        let s = SmState {
                            forks: vec![a, b, 0, 1],
                            owners: vec![Owner::Honest],
                            phase,
                        };
                        for action in available_actions(&p, &s) {
                            let numeric = successors(&p, &s, &action).unwrap();
                            let symbolic = symbolic_successors(&p, &s, &action).unwrap();
                            let evaluated: Vec<Outcome> = symbolic
                                .iter()
                                .filter_map(|o| {
                                    let probability = o.term.eval(pv, gamma);
                                    (probability > 0.0).then(|| Outcome {
                                        state: o.state.clone(),
                                        probability,
                                        rewards: o.rewards,
                                    })
                                })
                                .collect();
                            assert_eq!(numeric, evaluated);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn symbolic_outcomes_keep_masked_branches() {
        // γ = 0 numerically masks the race-win branch of a tie release; the
        // symbolic view must keep it.
        let p = params(0.3, 0.0, 1, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        *s.fork_length_mut(&p, 1, 1) = 1;
        let action = SmAction::Release {
            depth: 1,
            fork: 1,
            length: 1,
        };
        let symbolic = symbolic_successors(&p, &s, &action).unwrap();
        assert_eq!(symbolic.len(), 2);
        assert_eq!(symbolic[0].term, ProbTerm::Gamma);
        assert_eq!(symbolic[1].term, ProbTerm::OneMinusGamma);
        assert_eq!(successors(&p, &s, &action).unwrap().len(), 1);

        // p = 0 masks the adversary split of the mine action.
        let p0 = params(0.0, 0.5, 1, 1, 4);
        let mut s0 = SmState::initial(&p0);
        *s0.fork_length_mut(&p0, 1, 1) = 1;
        let symbolic = symbolic_successors(&p0, &s0, &SmAction::Mine).unwrap();
        assert!(symbolic
            .iter()
            .any(|o| matches!(o.term, ProbTerm::AdversaryShare { .. })));
        assert!(successors(&p0, &s0, &SmAction::Mine)
            .unwrap()
            .iter()
            .all(|o| o.state.phase == Phase::HonestFound));
    }

    #[test]
    fn prob_terms_form_a_distribution_for_every_parameter_choice() {
        let p = params(0.5, 0.5, 2, 2, 3);
        let mut s = SmState::initial(&p);
        *s.fork_length_mut(&p, 1, 1) = 2;
        for &(pv, gamma) in &[(0.0, 0.0), (1.0, 1.0), (0.3, 0.7), (1.0, 0.0)] {
            for action in available_actions(&p, &s) {
                let total: f64 = symbolic_successors(&p, &s, &action)
                    .unwrap()
                    .iter()
                    .map(|o| o.term.eval(pv, gamma))
                    .sum();
                assert!((total - 1.0).abs() < 1e-12, "sum {total} at ({pv},{gamma})");
            }
        }
    }

    #[test]
    fn release_actions_rejected_in_wrong_phase_or_length() {
        let p = params(0.3, 0.5, 2, 1, 4);
        let s = SmState::initial(&p);
        let release = SmAction::Release {
            depth: 1,
            fork: 1,
            length: 1,
        };
        assert!(successors(&p, &s, &release).is_err());
        let mut s2 = s.clone();
        s2.phase = Phase::AdversaryFound;
        // Fork is empty: length 1 exceeds it.
        assert!(successors(&p, &s2, &release).is_err());
    }
}
